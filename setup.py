"""Legacy setup shim: lets `pip install -e .` work without the `wheel`
package in this offline environment (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()

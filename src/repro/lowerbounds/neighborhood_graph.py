"""Linial's neighborhood graph: ring lower bounds by exact computation.

Linial's Ω(log* n) lower bound for coloring rings (the ancestor of
every bound in the paper, and the one Naor extended to RandLOCAL) has a
completely finite core: a t-round algorithm on a consistently oriented
ring with IDs from ``[m]`` is *exactly* a proper coloring of the
**neighborhood graph** ``B_t(m)`` —

- vertices: the possible views, i.e. (2t+1)-tuples of distinct IDs;
- edges: pairs of views that can occur at adjacent ring positions,
  ``(u_1, .., u_{2t+1}) ~ (u_2, .., u_{2t+2})``.

A t-round k-coloring algorithm exists **iff** ``χ(B_t(m)) <= k``; the
chain ``χ(B_t(m)) >= log^(2t) m`` then yields Ω(log* n).  For small m
and t the chromatic number is computable outright, so the lower bound
becomes a *certificate* rather than an argument:

>>> linial_ring_certificate(m=6, t=0, colors=3)   # doctest: +SKIP
True   # no 0-round algorithm 3-colors rings with IDs from [6]

Experiment usage: find the smallest ID space ``m`` for which no t-round
3-coloring algorithm exists, and cross-check that the library's
Cole–Vishkin implementation run with that ID space indeed uses more
than t rounds.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph


def neighborhood_graph(m: int, t: int) -> Graph:
    """``B_t(m)`` as a :class:`Graph` (views canonically indexed).

    The number of vertices is m·(m-1)·...·(m-2t); keep ``m`` and ``t``
    small (m <= 8, t <= 1 is plenty for the certificates used here).
    """
    if m < 2 * t + 2:
        raise ValueError(
            f"need m >= 2t+2 distinct IDs for (2t+1)-views, got m={m}, t={t}"
        )
    width = 2 * t + 1
    views: List[Tuple[int, ...]] = list(
        itertools.permutations(range(m), width)
    )
    index: Dict[Tuple[int, ...], int] = {v: i for i, v in enumerate(views)}
    edges = []
    for view in views:
        suffix = view[1:]
        for nxt in range(m):
            if nxt in view:
                continue
            other = suffix + (nxt,)
            a, b = index[view], index[other]
            if a < b:
                edges.append((a, b))
            elif b < a:
                edges.append((b, a))
    # Deduplicate (u ~ v can arise from both directions for t = 0).
    return Graph(len(views), sorted(set(edges)))


def is_k_colorable(
    graph: Graph, k: int, node_limit: int = 2_000_000
) -> Optional[bool]:
    """Exact k-colorability by backtracking (DSATUR-ordered).

    Returns True/False, or ``None`` if the search exceeds
    ``node_limit`` decisions (undecided).
    """
    n = graph.num_vertices
    if n == 0:
        return True
    colors: List[Optional[int]] = [None] * n
    budget = [node_limit]

    def saturation(v: int) -> int:
        return len(
            {colors[u] for u in graph.neighbors(v) if colors[u] is not None}
        )

    def pick() -> Optional[int]:
        best, best_key = None, None
        for v in range(n):
            if colors[v] is not None:
                continue
            key = (saturation(v), graph.degree(v))
            if best_key is None or key > best_key:
                best, best_key = v, key
        return best

    def backtrack() -> Optional[bool]:
        v = pick()
        if v is None:
            return True
        forbidden = {
            colors[u] for u in graph.neighbors(v) if colors[u] is not None
        }
        for c in range(k):
            if c in forbidden:
                continue
            budget[0] -= 1
            if budget[0] <= 0:
                return None
            colors[v] = c
            result = backtrack()
            if result:
                return True
            if result is None:
                colors[v] = None
                return None
            colors[v] = None
            # Symmetry breaking: trying a color never used before is
            # equivalent for all such colors.
            if c not in set(x for x in colors if x is not None):
                break
        return False

    return backtrack()


def ring_chromatic_lower_bound(m: int, t: int, colors: int) -> Optional[bool]:
    """Whether **no** t-round algorithm ``colors``-colors oriented rings
    whose IDs come from ``[m]`` — i.e. whether χ(B_t(m)) > colors.

    True = certified impossible; False = an algorithm exists (the
    coloring of B_t *is* the algorithm); None = search inconclusive.
    """
    graph = neighborhood_graph(m, t)
    colorable = is_k_colorable(graph, colors)
    if colorable is None:
        return None
    return not colorable


def linial_ring_certificate(
    m: int, t: int, colors: int
) -> Optional[bool]:
    """Alias of :func:`ring_chromatic_lower_bound` with the customary
    name, for discoverability."""
    return ring_chromatic_lower_bound(m, t, colors)


def smallest_hard_id_space(
    t: int, colors: int, m_max: int = 9
) -> Optional[int]:
    """The smallest m <= m_max for which no t-round ``colors``-coloring
    algorithm exists (None if every m <= m_max admits one)."""
    for m in range(2 * t + 2, m_max + 1):
        verdict = ring_chromatic_lower_bound(m, t, colors)
        if verdict:
            return m
    return None

"""Lower-bound machinery: bound formulas, the verified 0-round base
case, round-elimination arithmetic, and indistinguishability checks."""

from .bounds import (
    corollary2_rounds,
    gap_theorem_threshold,
    kmw_lower_bound,
    linial_lower_bound,
    theorem3_size_transfer,
    theorem4_rounds,
    theorem5_rounds,
)
from .indistinguishability import (
    all_views_are_trees,
    far_perturbation,
    matching_view_pairs,
    outputs_match_on_ball,
)
from .neighborhood_graph import (
    is_k_colorable,
    linial_ring_certificate,
    neighborhood_graph,
    ring_chromatic_lower_bound,
    smallest_hard_id_space,
)
from .roundeliminator import (
    BipartiteProblem,
    edge_grabbing_problem,
    is_fixed_point,
    perfect_matching_problem,
    problems_equivalent,
    round_eliminate,
    sinkless_orientation_problem,
    survives_elimination,
)
from .round_elimination import (
    amplification_chain,
    girth_requirement,
    lemma1_failure,
    lemma2_failure,
    max_eliminable_rounds,
    one_round_elimination,
    paper_amplified_failure,
)
from .zero_round import (
    closed_form_optimum,
    monochromatic_probability,
    optimal_zero_round_failure,
    port_aware_failure,
    worst_edge_failure,
)

__all__ = [
    "BipartiteProblem",
    "all_views_are_trees",
    "amplification_chain",
    "closed_form_optimum",
    "corollary2_rounds",
    "edge_grabbing_problem",
    "far_perturbation",
    "gap_theorem_threshold",
    "girth_requirement",
    "is_fixed_point",
    "is_k_colorable",
    "kmw_lower_bound",
    "lemma1_failure",
    "lemma2_failure",
    "linial_lower_bound",
    "linial_ring_certificate",
    "matching_view_pairs",
    "max_eliminable_rounds",
    "monochromatic_probability",
    "neighborhood_graph",
    "one_round_elimination",
    "perfect_matching_problem",
    "problems_equivalent",
    "ring_chromatic_lower_bound",
    "round_eliminate",
    "sinkless_orientation_problem",
    "smallest_hard_id_space",
    "survives_elimination",
    "optimal_zero_round_failure",
    "outputs_match_on_ball",
    "paper_amplified_failure",
    "port_aware_failure",
    "theorem3_size_transfer",
    "theorem4_rounds",
    "theorem5_rounds",
    "worst_edge_failure",
]

"""The base case of Theorem 4's round elimination, verified exactly.

The paper's argument bottoms out at: *any 0-round RandLOCAL algorithm
for Δ-sinkless coloring on a Δ-regular edge-colored graph produces a
forbidden configuration (monochromatic edge) with probability at least
1/Δ².*  A 0-round algorithm sees only the vertex's own ports and their
edge colors, and all vertices are undifferentiated, so it is exactly a
probability distribution over colors (one distribution per observable
port-coloring, but on the vertex-transitive hard instances every vertex
observes the same multiset {0..Δ-1}).

Here we make that statement checkable:

- :func:`monochromatic_probability` — exact failure probability of a
  given color distribution on an edge of each color;
- :func:`optimal_zero_round_failure` — the minimax value
  min over distributions of max over edge colors, computed both in
  closed form (uniform is optimal, value 1/Δ²) and numerically with
  scipy, so the claim is verified rather than asserted;
- :func:`port_aware_failure` — the refinement where the algorithm may
  condition on the port *order* of the colors: on edge-transitive
  instances the adversary can permute ports, and the guarantee again
  collapses to 1/Δ² (verified by randomized search in the tests).
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, List, Optional, Sequence


def monochromatic_probability(
    distribution: Sequence[float], edge_color: int
) -> float:
    """Probability that both endpoints of an edge of color ``edge_color``
    pick that color, under independent draws from ``distribution``."""
    p = distribution[edge_color]
    return p * p


def worst_edge_failure(distribution: Sequence[float]) -> float:
    """The adversary picks the worst edge color:
    ``max_c distribution[c]²``."""
    _validate(distribution)
    return max(p * p for p in distribution)


def closed_form_optimum(delta: int) -> float:
    """The paper's bound: the minimax failure is exactly 1/Δ²
    (uniform distribution; pigeonhole gives max_c p_c >= 1/Δ)."""
    if delta < 1:
        raise ValueError("Δ must be >= 1")
    return 1.0 / (delta * delta)


def optimal_zero_round_failure(
    delta: int, use_scipy: bool = True
) -> float:
    """Minimize ``max_c p_c²`` over the probability simplex.

    With scipy available the optimization is run numerically (SLSQP
    from several starts) and cross-checked against the closed form;
    without it the closed form is returned.
    """
    closed = closed_form_optimum(delta)
    if not use_scipy:
        return closed
    try:
        import numpy as np
        from scipy.optimize import minimize
    except ImportError:  # pragma: no cover - scipy is an install extra
        return closed

    def objective(p: "np.ndarray") -> float:
        return float(np.max(p * p))

    best = math.inf
    rng = np.random.default_rng(0)
    for attempt in range(5):
        if attempt == 0:
            start = np.full(delta, 1.0 / delta)
        else:
            start = rng.dirichlet(np.ones(delta))
        result = minimize(
            objective,
            start,
            method="SLSQP",
            bounds=[(0.0, 1.0)] * delta,
            constraints=[{"type": "eq", "fun": lambda p: p.sum() - 1.0}],
        )
        if result.success:
            best = min(best, float(result.fun))
    if not math.isfinite(best):
        return closed
    # The optimizer can only confirm the closed form (up to tolerance).
    if best < closed - 1e-6:
        raise AssertionError(
            f"numerical optimum {best} beat the closed form {closed} — "
            "the 1/Δ² base case would be falsified"
        )
    return min(best, closed + 1e-9)


def port_aware_failure(
    strategy: Callable[[Sequence[int]], Sequence[float]],
    delta: int,
    trials: Optional[int] = None,
) -> float:
    """Worst-case failure of a *port-aware* 0-round algorithm.

    ``strategy(port_colors)`` maps the observed port-color order to a
    color distribution.  The adversary chooses, independently for each
    endpoint, the port order and the edge's position in it — we check
    all (or ``trials`` random) pairs of orders and all edge colors and
    return the maximum monochromatic probability.  Theorem 4's base
    case says this is >= 1/Δ² for every strategy; the tests probe a
    family of strategies against this floor.
    """
    colors = list(range(delta))
    orders = list(itertools.permutations(colors)) if delta <= 5 else None
    if orders is None:
        import random as _random

        rng = _random.Random(12345)
        count = trials or 200
        orders = [
            tuple(rng.sample(colors, delta)) for _ in range(count)
        ]
    worst = 0.0
    for edge_color in colors:
        for order_u in orders:
            pu = strategy(list(order_u))
            _validate(pu)
            for order_v in orders:
                pv = strategy(list(order_v))
                prob = pu[edge_color] * pv[edge_color]
                worst = max(worst, prob)
    return worst


def _validate(distribution: Sequence[float]) -> None:
    if any(p < -1e-12 for p in distribution):
        raise ValueError("negative probability")
    total = sum(distribution)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"distribution sums to {total}, not 1")

"""The indistinguishability principle, made testable (experiment E12).

Linial's lower-bound template and Theorem 5's "these bounds also apply
to trees" step both rest on: *a t-round algorithm's output at v is a
function of the radius-t view of v alone*.  Hence on a graph of girth
> 2t + 1, where every view is a tree, any algorithm behaves exactly as
it would on a tree — so tree lower bounds transfer.

This module turns the principle into executable checks:

- :func:`all_views_are_trees` — certifies that a graph is t-locally
  tree-like (the premise);
- :func:`far_perturbation` — rewires a graph outside a ball, producing
  the indistinguishable sibling instance;
- :func:`outputs_match_on_ball` — runs an algorithm on both instances
  and compares the outputs inside the ball (the consequence: they must
  be identical for any honest <= t-round algorithm).
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple

from ..core.views import collect_view, tree_canonical_form
from ..graphs.graph import Graph


def all_views_are_trees(graph: Graph, radius: int) -> bool:
    """Whether every radius-``radius`` view in the graph is acyclic —
    i.e. girth > 2·radius + 1."""
    girth = graph.girth()
    return girth is None or girth > 2 * radius + 1


def matching_view_pairs(
    graph_a: Graph,
    graph_b: Graph,
    radius: int,
    labels_a: Optional[Sequence[Any]] = None,
    labels_b: Optional[Sequence[Any]] = None,
    up_to_ports: bool = False,
) -> List[Tuple[int, int]]:
    """All pairs (v_a, v_b) whose canonical radius views coincide —
    the vertices no t-round algorithm can treat differently.

    With ``up_to_ports`` the comparison uses the AHU tree canonical
    form (acyclic views only): indistinguishability for algorithms that
    get no promise about the port numbering.
    """

    def key(graph: Graph, v: int, labels) -> Any:
        view = collect_view(graph, v, radius, labels)
        if up_to_ports:
            return tree_canonical_form(view)
        return view

    views_b: dict = {}
    for v in graph_b.vertices():
        views_b.setdefault(key(graph_b, v, labels_b), []).append(v)
    pairs = []
    for v in graph_a.vertices():
        for u in views_b.get(key(graph_a, v, labels_a), []):
            pairs.append((v, u))
    return pairs


def far_perturbation(
    graph: Graph,
    center: int,
    radius: int,
    rng: random.Random,
    attempts: int = 200,
) -> Optional[Graph]:
    """A sibling graph differing from ``graph`` only at distance
    > ``radius`` from ``center`` (one double-edge swap among far
    edges), or ``None`` if no legal swap was found.

    Degrees are preserved, so the sibling stays in any degree-bounded
    class; every vertex within ``radius`` of ``center`` has an
    identical view, so a <= radius-round algorithm must answer
    identically there.
    """
    ball: Set[int] = set(graph.ball(center, radius + 1))
    far_edges = [
        (u, v)
        for u, v in graph.edges()
        if u not in ball and v not in ball
    ]
    if len(far_edges) < 2:
        return None
    edge_set = set(graph.edges())
    for _ in range(attempts):
        (a, b) = far_edges[rng.randrange(len(far_edges))]
        (c, d) = far_edges[rng.randrange(len(far_edges))]
        if len({a, b, c, d}) < 4:
            continue
        if rng.random() < 0.5:
            c, d = d, c
        new_1 = (min(a, c), max(a, c))
        new_2 = (min(b, d), max(b, d))
        if new_1 in edge_set or new_2 in edge_set:
            continue
        edges = [
            e
            for e in graph.edges()
            if e != (min(a, b), max(a, b)) and e != (min(c, d), max(c, d))
        ]
        edges.extend([new_1, new_2])
        return Graph(graph.num_vertices, edges)
    return None


def outputs_match_on_ball(
    run: Callable[[Graph], Sequence[Any]],
    graph_a: Graph,
    graph_b: Graph,
    center: int,
    radius: int,
) -> bool:
    """Run an algorithm wrapper on two instances that agree on the
    radius-``radius`` ball of ``center`` (same vertex numbering) and
    check the outputs agree on the *inner* ball.

    Note the port structure must agree too — :func:`far_perturbation`
    preserves it inside the ball by never touching incident edges.
    """
    out_a = run(graph_a)
    out_b = run(graph_b)
    inner = graph_a.ball(center, max(0, radius - 1))
    return all(out_a[v] == out_b[v] for v in inner)

"""Closed-form lower-bound calculators (Theorems 4 and 5, and the
survey bounds of Section I).

Lower bounds are proofs, not programs; what *is* executable is their
arithmetic.  Every function here returns the bound's value with its
constants exposed (the paper's "sufficiently small ε" becomes an
explicit parameter), and experiment E9 checks that every *measured*
upper bound in the suite sits above the corresponding calculated lower
bound — the consistency sandwich a reproduction can actually test.
"""

from __future__ import annotations

import math

from ..analysis.mathx import log_base, log_star


def theorem4_rounds(
    n: int, delta: int, failure_probability: float, epsilon: float = 1.0
) -> float:
    """Theorem 4: any RandLOCAL Δ-coloring algorithm with per-edge
    failure probability p needs at least
    ``min(ε·log_{3(Δ+1)} ln(1/p), ε·log_Δ n) − 1`` rounds."""
    if not 0 < failure_probability < 1:
        raise ValueError("failure probability must be in (0, 1)")
    ln_inv_p = math.log(1.0 / failure_probability)
    left = epsilon * log_base(max(ln_inv_p, 1.0), 3.0 * (delta + 1))
    right = epsilon * log_base(n, delta)
    return min(left, right) - 1.0


def corollary2_rounds(
    n: int, delta: int, poly_power: float = 1.0, epsilon: float = 1.0
) -> float:
    """Corollary 2: with global error 1/poly(n) (here p = n^-power),
    Δ-coloring needs Ω(log_Δ log n) rounds in RandLOCAL."""
    p = float(n) ** (-poly_power)
    p = min(max(p, 1e-300), 0.5)
    return theorem4_rounds(n, delta, p, epsilon)


def theorem5_rounds(n: int, delta: int, epsilon: float = 1.0) -> float:
    """Theorem 5: DetLOCAL Δ-coloring of degree-Δ trees (or high-girth
    degree-Δ graphs) needs Ω(log_Δ n) rounds."""
    return epsilon * log_base(n, delta) - 1.0


def linial_lower_bound(n: int) -> float:
    """Linial's Ω(log* n) for O(1)-coloring the ring (holds in
    RandLOCAL too, by Naor): (log* n)/2 − 1 with the classic constant
    omitted to 1/2."""
    return log_star(n) / 2.0 - 1.0


def kmw_lower_bound(n: int, delta: int) -> float:
    """Kuhn–Moscibroda–Wattenhofer: Ω(min(log Δ / log log Δ,
    √(log n / log log n))) for MIS, maximal matching, and O(1)-apx
    vertex cover."""
    log_d = math.log2(max(delta, 4))
    left = log_d / math.log2(max(log_d, 2.0))
    log_n = math.log2(max(n, 4))
    right = math.sqrt(log_n / math.log2(max(log_n, 2.0)))
    return min(left, right)


def theorem3_size_transfer(n: int) -> float:
    """Theorem 3 contrapositive scale: the RandLOCAL complexity at size
    n is at least the DetLOCAL complexity at size √(log n).  Returns
    that smaller size."""
    if n < 2:
        return 1.0
    return math.sqrt(math.log2(n))


def gap_theorem_threshold(n: int, delta: int) -> float:
    """Corollary 3's dichotomy threshold for constant Δ: any LCL on a
    hereditary class is either O(log* n) or Ω(log n); the returned value
    is the geometric midpoint ``sqrt(log* n · log n)`` — measured
    complexities should never land near it (they belong to one side)."""
    return math.sqrt(max(1, log_star(n)) * math.log2(max(n, 2)))

"""Round elimination as an executable operator on problem descriptions.

The Brandt et al. lower bound that powers Theorem 4 is, in modern
terms, a *round elimination* argument: sinkless orientation is a fixed
point of an operator ``re`` that turns any t-round solvable problem
into a (t-1)-round solvable one.  A nontrivial fixed point therefore
cannot be solved in any constant number of rounds, and the probability
bookkeeping of Lemmas 1-2 turns that into Ω(log log n) randomized /
Ω(log n) deterministic — the engine room of the paper's Section IV.

This module implements the operator concretely, in the standard
bipartite formalism (Brandt, "An Automatic Speedup Theorem", 2019):

- a :class:`BipartiteProblem` lives on Δ-regular bipartite 2-colored
  trees; *white* nodes (degree ``white_degree``) and *black* nodes
  (degree ``black_degree``) each constrain the multiset of labels on
  their incident half-edges.  For vertex problems on Δ-regular trees,
  white nodes are the vertices and black nodes are the edges (degree 2).
- :func:`round_eliminate` maps Π = (Σ, W, B) to
  re(Π) = (2^Σ∖{∅}, W', B') **with the roles swapped**:

  - the new *white* constraint (arity = old black degree) allows a
    tuple of sets iff **every** choice from them satisfies the old
    black constraint (the universal side);
  - the new *black* constraint (arity = old white degree) allows a
    tuple of sets iff **some** choice from them satisfies the old
    white constraint (the existential side);
  - non-maximal white configurations and unused labels are pruned.

  If Π is solvable in t rounds (white-centric), re(Π) is solvable in
  t-1; applying ``re`` twice returns to the original orientation, one
  full round cheaper.

- :func:`problems_equivalent` decides equivalence up to label
  renaming; :func:`survives_elimination` iterates the operator and
  checks the problem never becomes 0-round solvable or empty.

What the tests verify for sinkless orientation — the executable content
of the Brandt et al. bound behind Theorem 4:

1. ``re(SO_vertex) ≃ SO_edge`` exactly (the same problem seen from the
   edges), so one elimination step costs nothing;
2. iterating ``re`` keeps the problem nontrivial with a *bounded* label
   set (it relaxes to "sinkless orientation with unoriented edges
   allowed", which is still 0-round unsolvable).  A problem whose
   elimination sequence never trivializes cannot be solved in O(1)
   rounds — iterating the speedup would otherwise produce a 0-round
   algorithm, contradicting :meth:`BipartiteProblem.is_trivial`.

The implementation is exponential in the label-set size, as round
elimination inherently is; it is meant for the few-label problems the
paper's argument uses (|Σ| <= 4, degrees <= 5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: A configuration is a sorted tuple of labels (a multiset).
Configuration = Tuple[str, ...]


def _normalize(config: Iterable[str]) -> Configuration:
    return tuple(sorted(config))


@dataclass(frozen=True)
class BipartiteProblem:
    """A locally checkable problem on 2-colored regular trees."""

    name: str
    labels: FrozenSet[str]
    white_degree: int
    black_degree: int
    white: FrozenSet[Configuration]
    black: FrozenSet[Configuration]

    @staticmethod
    def make(
        name: str,
        white_degree: int,
        black_degree: int,
        white: Iterable[Iterable[str]],
        black: Iterable[Iterable[str]],
    ) -> "BipartiteProblem":
        white_set = frozenset(_normalize(c) for c in white)
        black_set = frozenset(_normalize(c) for c in black)
        labels = frozenset(
            label for c in white_set | black_set for label in c
        )
        for config in white_set:
            if len(config) != white_degree:
                raise ValueError(
                    f"white configuration {config} has arity "
                    f"{len(config)} != {white_degree}"
                )
        for config in black_set:
            if len(config) != black_degree:
                raise ValueError(
                    f"black configuration {config} has arity "
                    f"{len(config)} != {black_degree}"
                )
        return BipartiteProblem(
            name=name,
            labels=labels,
            white_degree=white_degree,
            black_degree=black_degree,
            white=white_set,
            black=black_set,
        )

    def is_trivial(self) -> bool:
        """0-round solvable: some single label fills both sides.

        A problem is trivially solvable iff there is a label ``a`` such
        that the all-``a`` configuration is allowed at both white and
        black nodes — every half-edge outputs ``a`` with no
        communication.
        """
        for a in sorted(self.labels):
            if (
                _normalize([a] * self.white_degree) in self.white
                and _normalize([a] * self.black_degree) in self.black
            ):
                return True
        return False

    def is_empty(self) -> bool:
        """Unsolvable on at least one side (no allowed configuration)."""
        return not self.white or not self.black


# ----------------------------------------------------------------------
# The operator
# ----------------------------------------------------------------------
def _set_label(subset: FrozenSet[str]) -> str:
    return "{" + ",".join(sorted(subset)) + "}"


def round_eliminate(
    problem: BipartiteProblem, prune: bool = True
) -> BipartiteProblem:
    """One application of the round-elimination operator (roles swap).

    With ``prune`` (default), dominated white configurations and unused
    labels are removed — semantically redundant, but note that the
    *syntactic* :meth:`BipartiteProblem.is_trivial` can then miss
    trivialities hidden behind domination; use ``prune=False`` when a
    complete triviality check on the image is needed (as
    :func:`survives_elimination` does)."""
    base_labels = sorted(problem.labels)
    subsets: List[FrozenSet[str]] = [
        frozenset(combo)
        for size in range(1, len(base_labels) + 1)
        for combo in itertools.combinations(base_labels, size)
    ]

    # New white side (arity = old black degree): universal.
    new_white: set = set()
    for sets in itertools.combinations_with_replacement(
        subsets, problem.black_degree
    ):
        if all(
            _normalize(choice) in problem.black
            for choice in itertools.product(*sets)
        ):
            new_white.add(_normalize(_set_label(s) for s in sets))
    if prune:
        new_white = _maximal_only(new_white, problem.black_degree)

    # New black side (arity = old white degree): existential.
    new_black: set = set()
    for sets in itertools.combinations_with_replacement(
        subsets, problem.white_degree
    ):
        if any(
            _normalize(choice) in problem.white
            for choice in itertools.product(*sets)
        ):
            new_black.add(_normalize(_set_label(s) for s in sets))

    # Restrict to labels that actually appear on the (possibly pruned)
    # white side; the black side is then restricted accordingly.
    used = {label for config in new_white for label in config}
    new_black = {
        config
        for config in new_black
        if all(label in used for label in config)
    }
    return BipartiteProblem(
        name=f"re({problem.name})",
        labels=frozenset(used),
        white_degree=problem.black_degree,
        black_degree=problem.white_degree,
        white=frozenset(new_white),
        black=frozenset(new_black),
    )


def _maximal_only(configs: set, arity: int) -> set:
    """Drop white configurations dominated by a pointwise-superset one.

    Set-labels are compared by containment of their underlying sets; a
    configuration is dominated if another allowed configuration can be
    aligned with it so that every position's set contains the
    corresponding set.  Dominated configurations are redundant for the
    algorithmic content of the problem.
    """

    def parse(label: str) -> FrozenSet[str]:
        return frozenset(x for x in label[1:-1].split(",") if x)

    def dominated(small: Configuration, big: Configuration) -> bool:
        if small == big:
            return False
        small_sets = [parse(x) for x in small]
        for perm in itertools.permutations([parse(x) for x in big]):
            if all(a <= b for a, b in zip(small_sets, perm)):
                return True
        return False

    return {
        c
        for c in configs
        if not any(dominated(c, other) for other in configs)
    }


# ----------------------------------------------------------------------
# Equivalence up to renaming
# ----------------------------------------------------------------------
def problems_equivalent(
    a: BipartiteProblem, b: BipartiteProblem
) -> Optional[Dict[str, str]]:
    """A label bijection turning ``a`` into ``b``, or ``None``.

    Exhaustive over bijections — fine for the <= 6-label problems round
    elimination is used on here.
    """
    if (
        a.white_degree != b.white_degree
        or a.black_degree != b.black_degree
        or len(a.labels) != len(b.labels)
        or len(a.white) != len(b.white)
        or len(a.black) != len(b.black)
    ):
        return None
    a_labels = sorted(a.labels)
    for perm in itertools.permutations(sorted(b.labels)):
        mapping = dict(zip(a_labels, perm))

        def rename(configs: FrozenSet[Configuration]) -> FrozenSet[Configuration]:
            return frozenset(
                _normalize(mapping[x] for x in config) for config in configs
            )

        if rename(a.white) == b.white and rename(a.black) == b.black:
            return mapping
    return None


def is_fixed_point(
    problem: BipartiteProblem, steps: int = 2
) -> bool:
    """Whether ``steps`` applications of re return the problem exactly
    (up to renaming).  Many problems are fixed points only after
    further semantic simplification; for lower-bound purposes
    :func:`survives_elimination` is the robust test."""
    current = problem
    for _ in range(steps):
        current = round_eliminate(current)
    return problems_equivalent(current, problem) is not None


def survives_elimination(
    problem: BipartiteProblem, steps: int = 4, max_labels: int = 8
) -> bool:
    """Iterate ``re`` and check the problem never trivializes, never
    empties, and keeps a bounded label alphabet.

    A problem solvable in t rounds yields, after t eliminations, a
    0-round-solvable problem; surviving ``steps`` eliminations
    therefore certifies the problem is not solvable in < ``steps``
    rounds *independently of n and of the algorithm* — the qualitative
    heart of the Ω(log log n) randomized bound once the Lemma 1-2
    probability bookkeeping is added.
    """
    current = problem
    for _ in range(steps):
        # Triviality must be judged on the *unpruned* image: pruning
        # removes dominated configurations, which can hide an all-one-
        # label solution from the syntactic check.
        full = round_eliminate(current, prune=False)
        if current.is_trivial() or current.is_empty() or full.is_trivial():
            return False
        current = round_eliminate(current)
        if len(current.labels) > max_labels:
            raise ValueError(
                f"label alphabet exploded to {len(current.labels)} — "
                "this problem is outside the module's intended scope"
            )
        if current.is_empty():
            return False
    return not current.is_trivial() and not round_eliminate(
        current, prune=False
    ).is_trivial() and not current.is_empty()


# ----------------------------------------------------------------------
# Canned problems
# ----------------------------------------------------------------------
def sinkless_orientation_problem(delta: int = 3) -> BipartiteProblem:
    """Sinkless orientation on Δ-regular trees, white = vertices
    (degree Δ), black = edges (degree 2).

    Labels: ``O`` (half-edge oriented outward from the vertex), ``I``
    (inward).  A vertex needs at least one ``O``; an edge needs exactly
    one ``O`` and one ``I`` (its two half-edges agree on a direction).
    """
    white = [
        ["O"] * k + ["I"] * (delta - k) for k in range(1, delta + 1)
    ]
    black = [["O", "I"]]
    return BipartiteProblem.make(
        f"sinkless-orientation-{delta}", delta, 2, white, black
    )


def edge_grabbing_problem(delta: int = 3) -> BipartiteProblem:
    """The trivial cousin: a vertex must mark >= 0 incident edges (all
    configurations allowed) — 0-round solvable; used as the negative
    control for fixed-point tests."""
    labels = ["A", "B"]
    white = [
        _normalize(c)
        for c in itertools.combinations_with_replacement(labels, delta)
    ]
    black = [
        _normalize(c)
        for c in itertools.combinations_with_replacement(labels, 2)
    ]
    return BipartiteProblem.make(
        f"free-marking-{delta}", delta, 2, white, black
    )


def perfect_matching_problem(delta: int = 3) -> BipartiteProblem:
    """Each vertex matches exactly one incident edge; an edge is
    matched iff both half-edges say so.  Labels: M / U."""
    white = [["M"] + ["U"] * (delta - 1)]
    black = [["M", "M"], ["U", "U"]]
    return BipartiteProblem.make(
        f"perfect-matching-{delta}", delta, 2, white, black
    )

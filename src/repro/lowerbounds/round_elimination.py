"""Lemmas 1–2 (Brandt et al.) as error-amplification arithmetic.

The Theorem 4 proof pipeline: a t-round Δ-sinkless-coloring algorithm
with per-edge failure p yields, via Lemma 1 then Lemma 2, a (t−1)-round
sinkless-coloring algorithm with failure < 7·p^{1/(3(Δ+1))}; iterating t
times yields a 0-round algorithm whose failure must still beat the 1/Δ²
base case (:mod:`repro.lowerbounds.zero_round`) — contradiction unless
t is large.

These are statements about *all* algorithms, so they cannot be run; but
their arithmetic can, and it is exactly what fixes the constants in
:func:`repro.lowerbounds.bounds.theorem4_rounds`.  This module exposes
the amplification chain so tests and benches can recompute the theorem's
round bound from first principles and compare it against the closed
form.
"""

from __future__ import annotations

import math
from typing import List


def lemma1_failure(p: float, delta: int) -> float:
    """Lemma 1: coloring failure p → orientation failure 2Δ·p^(1/3)."""
    _check_probability(p)
    return min(1.0, 2.0 * delta * p ** (1.0 / 3.0))


def lemma2_failure(p: float, delta: int) -> float:
    """Lemma 2: orientation failure p → coloring failure
    4·p^(1/(Δ+1)) (and one round cheaper)."""
    _check_probability(p)
    return min(1.0, 4.0 * p ** (1.0 / (delta + 1.0)))


def one_round_elimination(p: float, delta: int) -> float:
    """One full elimination step (Lemma 1 then Lemma 2):
    failure p → 4·(2Δ)^{1/(Δ+1)}·p^{1/(3(Δ+1))} < 7·p^{1/(3(Δ+1))}."""
    return lemma2_failure(lemma1_failure(p, delta), delta)


def amplification_chain(p: float, delta: int, t: int) -> List[float]:
    """Failure probabilities along t elimination steps, starting at p."""
    chain = [p]
    for _ in range(t):
        chain.append(one_round_elimination(chain[-1], delta))
    return chain


def paper_amplified_failure(p: float, delta: int, t: int) -> float:
    """The closed form the paper uses for the end of the chain:
    p^{(1/(3(Δ+1)))^t}, constants absorbed (valid once
    ε·log_{3(Δ+1)} ln(1/p) >= 1)."""
    _check_probability(p)
    exponent = (1.0 / (3.0 * (delta + 1.0))) ** t
    return p ** exponent


def max_eliminable_rounds(p: float, delta: int) -> int:
    """The largest t for which the amplified 0-round failure stays
    below the 1/Δ² base case — i.e. the round lower bound the chain
    certifies for failure probability p.

    Computed by walking the *actual* chain (with the lemmas' constants),
    not the simplified closed form, so the returned t is the honest
    consequence of Lemmas 1–2.
    """
    _check_probability(p)
    base_case = 1.0 / (delta * delta)
    t = 0
    failure = p
    while failure < base_case and t < 10_000:
        failure = one_round_elimination(failure, delta)
        t += 1
    return max(0, t - 1)


def girth_requirement(t: int) -> int:
    """Lemmas 1–2 need t < (g−1)/2: the smallest girth supporting t
    elimination steps."""
    return 2 * t + 2


def _check_probability(p: float) -> None:
    if not 0.0 < p <= 1.0:
        raise ValueError(f"probability must be in (0, 1], got {p}")

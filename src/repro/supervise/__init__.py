"""Supervised execution: a long run in a watched child process.

:mod:`repro.core.checkpoint` makes a killed run *resumable*; this
module supplies the thing that does the killing and the resuming.  A
:func:`supervise_run` call executes a workload callable in a forked
child process under an ambient checkpointing scope and watches it from
the parent:

- **heartbeats** — the child's :class:`~repro.core.checkpoint.CheckpointPolicy`
  heartbeat hook streams ``{"slot", "rounds", "saved"}`` records up a
  pipe; silence longer than ``watchdog`` seconds means the child hung
  and it is killed and retried from its last snapshot;
- **deadline** — a total wall-clock budget for all attempts together;
- **bounded retries with exponential backoff** — crashes, watchdog
  kills, and nonzero exits consume attempts; each retry resumes from
  the newest checkpoint, so progress is never lost, only the tail
  since the last snapshot is re-executed (byte-identically);
- **RSS ceiling with graceful degradation** — a child whose resident
  set exceeds ``max_rss_kb`` is killed and restarted one rung down a
  two-stage ladder: first ``REPRO_VECTOR_WORD_CAP`` shrinks the
  vectorized backend's per-vertex draw-budget buffers (results stay
  bit-identical, the run just regenerates more often), then the run
  falls back from the vectorized to the ``fast`` backend — which
  cannot consume vector-format snapshots, so the slots are discarded
  (recorded as a ``checkpoint_discarded`` event) and the run restarts
  fresh on the scalar engine.

Everything the supervisor observes is recorded as
:class:`SupervisorEvent` rows inside the returned :class:`RunOutcome`
(a structured audit record), and — when a ``sidecar`` with a
``record_event`` method is passed (duck-typed;
:class:`repro.obs.TimingSidecarObserver` qualifies) — mirrored into
the plane-2 timing sidecar as ``supervisor_*`` rows.

The child applies ``env`` overrides *after* the fork, so the parent's
environment is never mutated.  The module deliberately lives outside
the engine: the engine knows how to snapshot and resume; policy about
when to kill, retry, and degrade belongs up here.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.checkpoint import CheckpointPolicy, checkpointing

__all__ = [
    "RunOutcome",
    "SupervisorEvent",
    "supervise_run",
]

#: Stage-1 degradation: initial VectorMT buffer hint clamp (words per
#: vertex).  Small enough to matter at n = 10^6+, large enough that
#: typical kernels rarely regenerate.
DEGRADED_WORD_CAP = 8

#: Stage-2 degradation: the backend the retry is pinned to — the
#: serial per-node engine, the smallest-footprint implementation every
#: install carries (multi-process and vectorized backends both degrade
#: to it).  Must name a registered backend; the backend-surface
#: meta-test in ``tests/test_backends.py`` checks it against the
#: registry so a rename cannot silently break the ladder.
DEGRADATION_BACKEND = "fast"


@dataclass
class SupervisorEvent:
    """One thing the supervisor saw or did, with seconds-since-start."""

    kind: str
    attempt: int
    t: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "attempt": self.attempt,
            "t": round(self.t, 6),
            **self.detail,
        }


@dataclass
class RunOutcome:
    """Structured audit record of one supervised execution."""

    ok: bool
    result: Any
    error: Optional[str]
    attempts: int
    events: List[SupervisorEvent]
    env: Dict[str, str]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the result itself is left to the caller —
        it may be a RunResult or any workload-defined value)."""
        return {
            "ok": self.ok,
            "error": self.error,
            "attempts": self.attempts,
            "env": dict(self.env),
            "events": [event.to_dict() for event in self.events],
        }


def _child_entry(
    conn: Any,
    target: Callable[[], Any],
    policy: CheckpointPolicy,
    env: Dict[str, str],
) -> None:
    """Forked child: apply env overrides, run the workload under the
    checkpointing scope, ship the result (or the error) up the pipe."""
    os.environ.update(env)
    try:
        with checkpointing(policy) as scope:
            result = target()
        conn.send(("ok", {"result": result, "slots": scope.events}))
    except BaseException as exc:  # noqa: BLE001 — the parent decides
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def _rss_kb(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` in KiB via /proc (None elsewhere)."""
    try:
        with open(f"/proc/{pid}/statm") as fh:
            fields = fh.read().split()
        pages = int(fields[1])
    except (OSError, IndexError, ValueError):
        return None
    return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)


def _kill(proc: Any) -> None:
    """Hard-stop a child.  SIGKILL is safe by design: checkpoint files
    are atomically replaced, so the newest snapshot is always whole."""
    try:
        proc.kill()
    except Exception:
        pass
    proc.join(timeout=5.0)


def supervise_run(
    target: Callable[[], Any],
    *,
    checkpoint_dir: str,
    every_rounds: Optional[int] = 256,
    every_seconds: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.5,
    deadline: Optional[float] = None,
    watchdog: Optional[float] = None,
    max_rss_kb: Optional[int] = None,
    heartbeat_seconds: float = 0.5,
    sidecar: Any = None,
    poll_seconds: float = 0.05,
) -> RunOutcome:
    """Run ``target()`` in a supervised child process; see module doc.

    ``target`` must be a zero-argument callable returning a picklable
    value; every ``run_local`` call it makes is checkpointed into
    ``checkpoint_dir`` (one slot per call) and resumed on retry.  The
    fork start method keeps closures usable as targets.  Returns a
    :class:`RunOutcome`; never raises for child failures — inspect
    ``ok`` / ``error`` / ``events``.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    ctx = multiprocessing.get_context("fork")
    started = time.monotonic()
    events: List[SupervisorEvent] = []
    env: Dict[str, str] = {}
    degrade_stage = 0
    last_error: Optional[str] = None

    def emit(kind: str, attempt: int, **detail: Any) -> None:
        events.append(
            SupervisorEvent(
                kind=kind,
                attempt=attempt,
                t=time.monotonic() - started,
                detail=detail,
            )
        )
        if sidecar is not None:
            record = getattr(sidecar, "record_event", None)
            if record is not None:
                record(kind, attempt=attempt, **detail)

    def remaining() -> Optional[float]:
        if deadline is None:
            return None
        return deadline - (time.monotonic() - started)

    def discard_slots() -> List[str]:
        removed = []
        try:
            names = sorted(os.listdir(checkpoint_dir))
        except OSError:
            return removed
        for name in names:
            if name.endswith((".ckpt", ".done")):
                try:
                    os.unlink(os.path.join(checkpoint_dir, name))
                    removed.append(name)
                except OSError:
                    pass
        return removed

    attempt = 0
    attempts_made = 0
    while attempt <= retries:
        left = remaining()
        if left is not None and left <= 0:
            emit("deadline", attempt, budget=deadline)
            break
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        policy = CheckpointPolicy(
            path=checkpoint_dir,
            every_rounds=every_rounds,
            every_seconds=every_seconds,
            resume=True,
            heartbeat=lambda info: child_conn.send(("hb", info)),
            heartbeat_seconds=heartbeat_seconds,
        )
        proc = ctx.Process(
            target=_child_entry,
            args=(child_conn, target, policy, dict(env)),
        )
        proc.start()
        child_conn.close()
        attempts_made += 1
        emit("start", attempt, pid=proc.pid, env=dict(env))

        verdict: str = "died"
        payload: Any = None
        last_msg = time.monotonic()
        while True:
            if parent_conn.poll(poll_seconds):
                try:
                    kind, body = parent_conn.recv()
                except EOFError:
                    verdict = "died"
                    break
                last_msg = time.monotonic()
                if kind == "hb":
                    emit("heartbeat", attempt, **dict(body))
                    continue
                verdict, payload = kind, body
                break
            now = time.monotonic()
            if deadline is not None and now - started >= deadline:
                _kill(proc)
                verdict = "deadline"
                break
            if watchdog is not None and now - last_msg >= watchdog:
                _kill(proc)
                verdict = "watchdog"
                break
            if max_rss_kb is not None and proc.pid is not None:
                rss = _rss_kb(proc.pid)
                if rss is not None and rss > max_rss_kb:
                    _kill(proc)
                    verdict = "rss"
                    payload = rss
                    break
            if not proc.is_alive():
                # Drain anything that raced the exit before concluding
                # the child died silently.
                if parent_conn.poll(0):
                    continue
                verdict = "died"
                break
        _kill(proc)
        parent_conn.close()

        if verdict == "ok":
            emit("done", attempt, slots=payload["slots"])
            return RunOutcome(
                ok=True,
                result=payload["result"],
                error=None,
                attempts=attempts_made,
                events=events,
                env=dict(env),
            )
        if verdict == "deadline":
            emit("deadline", attempt, budget=deadline)
            last_error = last_error or f"deadline of {deadline}s exhausted"
            break
        if verdict == "err":
            last_error = str(payload)
            emit("error", attempt, error=last_error)
        elif verdict == "watchdog":
            last_error = f"no heartbeat for {watchdog}s (hung?)"
            emit("watchdog_kill", attempt, watchdog=watchdog)
        elif verdict == "rss":
            last_error = f"resident set {payload} KiB over ceiling {max_rss_kb}"
            emit("rss_kill", attempt, rss_kb=payload, max_rss_kb=max_rss_kb)
            if degrade_stage == 0:
                env["REPRO_VECTOR_WORD_CAP"] = str(DEGRADED_WORD_CAP)
                degrade_stage = 1
                emit(
                    "degrade",
                    attempt,
                    stage=1,
                    action=f"REPRO_VECTOR_WORD_CAP={DEGRADED_WORD_CAP}",
                )
            elif degrade_stage == 1:
                env["REPRO_BACKEND"] = DEGRADATION_BACKEND
                degrade_stage = 2
                removed = discard_slots()
                emit(
                    "degrade",
                    attempt,
                    stage=2,
                    action=f"REPRO_BACKEND={DEGRADATION_BACKEND}",
                )
                emit("checkpoint_discarded", attempt, files=removed)
        else:  # died
            last_error = last_error or "child exited without a result"
            emit("child_died", attempt, exitcode=proc.exitcode)

        attempt += 1
        if attempt <= retries:
            pause = backoff * (2 ** (attempt - 1))
            left = remaining()
            if left is not None:
                pause = min(pause, max(0.0, left))
            emit("retry", attempt, backoff=round(pause, 3))
            if pause > 0:
                time.sleep(pause)

    return RunOutcome(
        ok=False,
        result=None,
        error=last_error,
        attempts=attempts_made,
        events=events,
        env=dict(env),
    )

"""The Theorem 5 reduction: a DetLOCAL algorithm run under RandLOCAL.

Theorem 5's proof converts any t-round DetLOCAL algorithm A_Det into an
O(t)-round RandLOCAL algorithm A_Rand: every vertex draws a random n-bit
ID; one step of Linial's recoloring on the virtual graph
``G' = (V, {dist <= 2t+1})`` compresses those to O(log n)-bit IDs that
are still unique within any ball A_Det can see; then A_Det runs as if
IDs were globally unique.  The only failure mode is a collision among
the initial random IDs — probability < n²/2^n.

The lower bound then follows by feeding A_Rand to Theorem 4; *this
module* implements the constructive direction, which is executable:
:func:`randomized_from_deterministic` really runs the pipeline and
reports the O(t) round split.  Tests verify the outputs remain legal
solutions and that collision failures are detected, not silently
mislabeled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..algorithms.drivers import AlgorithmReport, PhaseLog
from ..algorithms.linial import choose_cover_free_params, cover_free_set
from ..core.errors import AlgorithmFailure
from ..graphs.graph import Graph

#: Same driver signature as the speedup transform.
Driver = Callable[[Graph, Sequence[int], int], AlgorithmReport]


@dataclass
class RandFromDetResult:
    """Outcome of the reduction."""

    report: AlgorithmReport
    raw_id_bits: int
    compressed_id_bits: int
    compression_rounds: int


def randomized_from_deterministic(
    driver: Driver,
    graph: Graph,
    t: int,
    seed: Optional[int] = None,
    raw_bits: Optional[int] = None,
) -> RandFromDetResult:
    """Run a t-round DetLOCAL driver as a RandLOCAL algorithm.

    Parameters
    ----------
    driver:
        The deterministic algorithm, ``driver(graph, ids, id_space)``.
    t:
        Its round bound on this instance (determines the virtual-graph
        radius 2t + 1).
    raw_bits:
        Length of the initial random IDs (default: n bits, as in the
        paper's proof; the default is truncated at 64 for practicality,
        which keeps the collision probability below n²/2^64).

    Raises
    ------
    AlgorithmFailure
        If the initial random IDs collide *within a ball of radius
        2t+1* (the event whose probability the theorem bounds).
    """
    n = graph.num_vertices
    if raw_bits is None:
        raw_bits = min(64, max(8, n))
    master = random.Random(seed)
    raw_ids = [master.getrandbits(raw_bits) for _ in range(n)]

    log = PhaseLog()
    # One step of Linial's recoloring on G' = G^{2t+1}, simulated in G
    # in O(t) rounds (collect the ball, recolor).  A collision of raw
    # IDs inside a ball makes the recoloring step ill-defined: fail.
    radius = 2 * t + 1
    power = graph.power_graph(radius)
    delta_prime = max(1, power.max_degree)
    k0 = 1 << raw_bits
    d, q = choose_cover_free_params(k0, delta_prime)
    compressed = []
    for v in power.vertices():
        neighbor_ids = [raw_ids[u] for u in power.neighbors(v)]
        if raw_ids[v] in neighbor_ids:
            raise AlgorithmFailure(
                "random IDs collided within the virtual neighborhood "
                f"(radius {radius}) of vertex {v}"
            )
        own = cover_free_set(raw_ids[v] % (q ** (d + 1)), d, q)
        covered = set()
        for other in neighbor_ids:
            covered |= cover_free_set(other % (q ** (d + 1)), d, q)
        free = sorted(own - covered)
        if not free:
            raise AlgorithmFailure(
                "cover-free sets collided after reduction modulo the "
                "palette (two raw IDs congruent within a ball)"
            )
        # Index the free set by the vertex's own raw randomness: any
        # rule works for the theorem; spreading the choice keeps the
        # compressed IDs globally distinct with high probability, which
        # the engine's configuration check insists on.
        compressed.append(free[raw_ids[v] % len(free)])
    compressed_space = q * q
    log.add_rounds("id-compression", radius, messages=2 * graph.num_edges)

    # The theorem only needs the compressed IDs to be unique within the
    # balls A_Det can inspect; our engine insists on global uniqueness
    # as a configuration sanity check, so the rare distant coincidence
    # is surfaced as a failure rather than silently renamed.
    if len(set(compressed)) != n:
        raise AlgorithmFailure(
            "compressed IDs coincide between far-apart vertices; "
            "re-run with a different seed (engine restriction — the "
            "reduction itself tolerates distant duplicates)"
        )
    base_report = driver(graph, compressed, compressed_space)
    for phase in base_report.log.phases:
        log.add_rounds(f"base-{phase.name}", phase.rounds, phase.messages)
    return RandFromDetResult(
        report=AlgorithmReport(base_report.labeling, log.total_rounds, log),
        raw_id_bits=raw_bits,
        compressed_id_bits=max(1, (compressed_space - 1).bit_length()),
        compression_rounds=radius,
    )

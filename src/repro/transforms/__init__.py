"""The paper's theorem-level transformations, as executable code."""

from .derandomize import (
    Derandomization,
    enumerate_family,
    family_size,
    find_good_seed_function,
)
from .order_invariance import (
    LocalMaximaFragment,
    RankWithinBall,
    check_order_invariance,
    order_preserving_remap,
)
from .rand_from_det import RandFromDetResult, randomized_from_deterministic
from .shattering import (
    ShatterOutcome,
    component_size_threshold,
    distance_k_sets_bound,
    shatter,
    solve_shattered,
    union_bound_failure,
)
from .speedup import (
    SpeedupResult,
    shortened_ids,
    speedup_transform,
    theorem8_budget,
)

__all__ = [
    "Derandomization",
    "LocalMaximaFragment",
    "RankWithinBall",
    "RandFromDetResult",
    "ShatterOutcome",
    "SpeedupResult",
    "check_order_invariance",
    "component_size_threshold",
    "distance_k_sets_bound",
    "enumerate_family",
    "family_size",
    "find_good_seed_function",
    "order_preserving_remap",
    "randomized_from_deterministic",
    "shatter",
    "shortened_ids",
    "solve_shattered",
    "speedup_transform",
    "theorem8_budget",
    "union_bound_failure",
]

"""The graph-shattering pattern, as a reusable framework.

Graph shattering (Section I, "Graph Shattering") is the structure of
every modern randomized symmetry-breaking algorithm: a randomized
phase fixes most of the output; the *unresolved* vertices form, with
high probability, connected components of size poly(Δ)·log n; a
deterministic algorithm finishes each component in parallel.  Theorem 3
proves the pattern is unavoidable — the deterministic finisher's
complexity on poly(log n)-size instances lower-bounds the whole
randomized algorithm.

This module provides the bookkeeping shared by the paper's two
algorithms (Theorems 10 and 11) and by experiment E5:

- :func:`shatter` — split a partial labeling into the fixed part and
  the residual components;
- :func:`solve_shattered` — run a deterministic finisher per component
  (one engine run on the disconnected residual graph = all components
  in parallel, the honest LOCAL cost);
- :func:`distance_k_sets_bound` — Lemma 3's counting bound, and
  :func:`component_size_threshold` — the union-bound threshold
  Δ⁴·log n it yields for distance-5 sets of bad vertices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from ..algorithms.drivers import AlgorithmReport
from ..graphs.graph import Graph


@dataclass
class ShatterOutcome:
    """The residual structure a randomized phase left behind."""

    #: Partial labeling (``unresolved`` sentinel where not fixed).
    partial: List[Any]
    #: Vertices still unresolved, ascending.
    residual: List[int]
    #: The residual induced subgraph and its vertex map.
    subgraph: Graph
    originals: List[int]
    #: Sizes of the residual connected components, ascending.
    component_sizes: List[int] = field(default_factory=list)

    @property
    def max_component(self) -> int:
        return self.component_sizes[-1] if self.component_sizes else 0

    @property
    def num_components(self) -> int:
        return len(self.component_sizes)


def shatter(
    graph: Graph, partial: Sequence[Any], unresolved: Any
) -> ShatterOutcome:
    """Decompose a partial labeling into fixed part + residual
    components."""
    residual = [
        v for v in graph.vertices() if partial[v] == unresolved
    ]
    subgraph, originals = graph.induced_subgraph(residual)
    sizes = sorted(len(c) for c in subgraph.connected_components())
    return ShatterOutcome(
        partial=list(partial),
        residual=residual,
        subgraph=subgraph,
        originals=originals,
        component_sizes=sizes,
    )


def solve_shattered(
    graph: Graph,
    outcome: ShatterOutcome,
    finisher: Callable[[Graph], AlgorithmReport],
    relabel: Optional[Callable[[Any], Any]] = None,
) -> tuple:
    """Complete a shattered instance.

    ``finisher`` runs on the residual subgraph (disconnected — all
    components in parallel, so its round count is the max over
    components, which is what the engine measures).  ``relabel`` maps
    the finisher's labels into the final alphabet (e.g. into the
    reserved colors).  Returns ``(full_labeling, finisher_report)``.
    """
    labeling = list(outcome.partial)
    if not outcome.residual:
        return labeling, None
    report = finisher(outcome.subgraph)
    for local_index, label in enumerate(report.labeling):
        value = relabel(label) if relabel else label
        labeling[outcome.originals[local_index]] = value
    return labeling, report


def distance_k_sets_bound(n: int, delta: int, k: int, t: int) -> float:
    """Lemma 3: the number of distance-k sets of size t is less than
    ``4^t · n · Δ^(k(t-1))``."""
    if t < 1:
        return 0.0
    return (4.0 ** t) * n * (float(delta) ** (k * (t - 1)))


def component_size_threshold(n: int, delta: int, c: float = 1.0) -> float:
    """The whp bound on residual component sizes from the Theorem 10
    analysis: ``Δ⁴ · log n`` (times a slack constant ``c``).

    Derivation: a residual component of size s·Δ⁴ contains a distance-5
    set of s bad vertices (greedily pick bad vertices pairwise at
    distance >= 5; each pick excludes < Δ⁴ others); Lemma 3 counts the
    candidate sets, the per-vertex bad probability exp(-poly(Δ)) beats
    the count once s >= log n.
    """
    return c * (float(delta) ** 4) * math.log(max(n, 2))


def union_bound_failure(
    n: int, delta: int, s: int, bad_probability: float, k: int = 5
) -> float:
    """The union-bound failure estimate from the Theorem 10 analysis:
    (number of distance-k sets of size s) × (probability all s vertices
    are bad, assuming the distance-k independence the paper proves)."""
    count = distance_k_sets_bound(n, delta, k, s)
    return count * (bad_probability ** s)

"""Theorem 3, executable: ``Det_P(n, Δ) <= Rand_P(2^(n²), Δ)``.

The proof converts any RandLOCAL algorithm A_rand with failure
probability 1/N (N = 2^(n²) >= |𝒢_{n,Δ}|) into a DetLOCAL algorithm: fix
a *seed function* φ mapping IDs to random strings; run A_rand with
vertex v's randomness replaced by φ(ID(v)).  A union bound over the
(finite!) family 𝒢_{n,Δ} shows a random φ is *good* — correct on every
member simultaneously — with positive probability, so a good φ exists,
and the deterministic algorithm hard-codes the lexicographically first
one.

The construction is doubly exponential by design; this module executes
it at toy scale:

- :func:`enumerate_family` — all graphs on vertex set {0..n-1} with max
  degree <= Δ (vertex labels double as the IDs, which is exactly the
  family 𝒢 with ID space {0..n-1});
- :func:`find_good_seed_function` — search candidate seed functions
  φ_s(id) = H(s, id) (indexed by a master seed s) until one passes
  *every* graph in the family, verifying with the problem's LCL checker.

The returned :class:`Derandomization` is a genuinely deterministic
algorithm: :meth:`Derandomization.run` replays A_rand with the fixed φ
on any member of the family, and never errs (that is what the search
certified).  Experiment E6 measures family sizes and the number of
candidate seeds needed as the per-graph failure probability varies.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..core.algorithm import SyncAlgorithm
from ..core.context import Model
from ..core.engine import RunResult, run_local
from ..graphs.graph import Graph
from ..lcl.problem import LCLProblem


def enumerate_family(n: int, max_degree: int) -> Iterator[Graph]:
    """All graphs on vertex set {0..n-1} with maximum degree <= Δ.

    The family 𝒢_{n,Δ} of Theorem 3 with the ID space scaled down to
    exactly {0..n-1}: enumerating labeled graphs covers every
    (topology, ID assignment) pair over that space.  Size grows as
    2^(n choose 2); keep n <= 5 or so.
    """
    if n > 7:
        raise ValueError(
            f"family for n={n} has up to 2^{n * (n - 1) // 2} members — "
            "enumerate_family is a toy-scale tool (n <= 7)"
        )
    pairs = list(itertools.combinations(range(n), 2))
    for mask in range(1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        degree = [0] * n
        ok = True
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
            if degree[u] > max_degree or degree[v] > max_degree:
                ok = False
                break
        if ok:
            yield Graph(n, edges)


def family_size(n: int, max_degree: int) -> int:
    """|𝒢_{n,Δ}| under the scaled-down ID convention."""
    return sum(1 for _ in enumerate_family(n, max_degree))


def _seed_function(master: int) -> Callable[[int], int]:
    """φ_s: ID -> 64-bit seed, via a splitmix-style hash of (s, ID)."""

    def phi(vertex_id: int) -> int:
        x = (master * 0x9E3779B97F4A7C15 + vertex_id + 1) & (2 ** 64 - 1)
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & (2 ** 64 - 1)
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & (2 ** 64 - 1)
        x ^= x >> 31
        return x

    return phi


@dataclass
class Derandomization:
    """A certified-good seed function for one algorithm on one family."""

    n: int
    max_degree: int
    master_seed: int
    candidates_tried: int
    family_checked: int
    algorithm_factory: Callable[[], SyncAlgorithm]
    problem: LCLProblem
    max_rounds: int = 10_000

    def run(self, graph: Graph, **run_kwargs) -> RunResult:
        """Execute the derived *deterministic* algorithm A_Det[φ]:
        A_rand with vertex randomness fixed to Random(φ(ID(v)))."""
        phi = _seed_function(self.master_seed)
        return run_local(
            graph,
            self.algorithm_factory(),
            Model.RAND,
            rng_factory=lambda v: random.Random(phi(v)),
            max_rounds=self.max_rounds,
            **run_kwargs,
        )


def find_good_seed_function(
    algorithm_factory: Callable[[], SyncAlgorithm],
    problem: LCLProblem,
    n: int,
    max_degree: int,
    max_candidates: int = 512,
    max_rounds: int = 10_000,
    inputs_for: Optional[Callable[[Graph], Optional[Sequence[dict]]]] = None,
) -> Derandomization:
    """Search for a seed function good for *every* graph in 𝒢_{n,Δ}.

    Mirrors the probabilistic existence argument operationally: each
    candidate φ_s is checked against the whole family; the first
    all-correct candidate is returned.  If A_rand's per-run failure
    probability is below 1/|family|, a handful of candidates suffices
    in expectation.

    Raises
    ------
    LookupError
        If no candidate passes within ``max_candidates`` (the
        algorithm's failure probability is too high for this family —
        exactly the quantitative condition of Theorem 3).
    """
    family = list(enumerate_family(n, max_degree))
    for master in range(max_candidates):
        phi = _seed_function(master)
        good = True
        for graph in family:
            node_inputs = inputs_for(graph) if inputs_for else None
            try:
                result = run_local(
                    graph,
                    algorithm_factory(),
                    Model.RAND,
                    rng_factory=lambda v: random.Random(phi(v)),
                    node_inputs=node_inputs,
                    max_rounds=max_rounds,
                )
            except Exception:
                # Non-termination under this seed function (e.g. bid
                # ties forever) counts as a failure of the candidate.
                good = False
                break
            if result.failures or not problem.is_solution(
                graph, result.outputs
            ):
                good = False
                break
        if good:
            return Derandomization(
                n=n,
                max_degree=max_degree,
                master_seed=master,
                candidates_tried=master + 1,
                family_checked=len(family),
                algorithm_factory=algorithm_factory,
                problem=problem,
                max_rounds=max_rounds,
            )
    raise LookupError(
        f"no good seed function among {max_candidates} candidates for "
        f"n={n}, Δ={max_degree} (family size {len(family)}); the "
        "algorithm's failure probability exceeds what the union bound "
        "tolerates"
    )

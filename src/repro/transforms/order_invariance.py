"""Order invariance — the Naor–Stockmeyer angle on Corollary 1.

Naor and Stockmeyer proved that O(1)-round solvable LCLs (bounded Δ)
are solvable by *order-invariant* algorithms: the output may depend
only on the relative order of the IDs in the view, not their values.
The paper's Corollary 1 strengthens the derandomization direction:
any RandLOCAL LCL algorithm in 2^O(log* n) rounds derandomizes with no
asymptotic penalty.

Executable content provided here:

- :func:`order_preserving_remap` — rename IDs by any strictly
  increasing map; an order-invariant algorithm must be blind to it;
- :func:`check_order_invariance` — run an algorithm under several such
  remappings and report whether outputs ever changed (a *certificate
  of dependence* when they do, a stress-test pass when they don't);
- :class:`LocalMaximaFragment` — the canonical order-invariant
  1-round algorithm (join iff your ID beats all neighbors'), used as
  the positive control; Linial's coloring is the negative control
  (its output genuinely reads ID bits, and the checker catches it).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..graphs.graph import Graph


def order_preserving_remap(
    ids: Sequence[int], rng: random.Random, stretch: int = 1000
) -> List[int]:
    """New IDs with the same relative order but different values:
    strictly increasing random gaps between consecutive ranks."""
    ranked = sorted(ids)
    new_value = {}
    current = rng.randrange(1, stretch)
    for value in ranked:
        new_value[value] = current
        current += rng.randrange(1, stretch)
    return [new_value[i] for i in ids]


def check_order_invariance(
    algorithm_factory: Callable[[], SyncAlgorithm],
    graph: Graph,
    ids: Optional[Sequence[int]] = None,
    trials: int = 5,
    seed: int = 0,
    global_params: Optional[dict] = None,
    id_space_key: Optional[str] = "id_space",
) -> bool:
    """Whether the algorithm's outputs survive order-preserving ID
    remappings (a necessary condition for order invariance; ``trials``
    random remappings are checked).

    ``id_space_key``: name of the global parameter announcing the ID
    space, enlarged to cover the remapped values (pass ``None`` if the
    algorithm takes no such parameter).
    """
    if ids is None:
        ids = list(range(graph.num_vertices))
    rng = random.Random(seed)

    def run(current_ids: Sequence[int]) -> List:
        params = dict(global_params or {})
        if id_space_key is not None:
            bits = max(1, max(current_ids).bit_length())
            params[id_space_key] = 1 << bits
        return run_local(
            graph,
            algorithm_factory(),
            Model.DET,
            ids=list(current_ids),
            global_params=params,
        ).outputs

    baseline = run(ids)
    for _ in range(trials):
        remapped = order_preserving_remap(ids, rng)
        if run(remapped) != baseline:
            return False
    return True


class LocalMaximaFragment(SyncAlgorithm):
    """1-round order-invariant algorithm: output 1 iff the vertex's ID
    exceeds all neighbors' (an independent — not maximal — set; the
    positive control for the invariance checker)."""

    name = "local-maxima-fragment"

    def setup(self, ctx: NodeContext) -> None:
        ctx.publish(ctx.id)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        ctx.halt(1 if all(ctx.id > other for other in inbox) else 0)


class RankWithinBall(SyncAlgorithm):
    """2-round order-invariant labeling: the vertex's ID rank within
    its radius-1 closed neighborhood (a defective coloring with Δ+1
    classes where adjacent vertices can only clash if their
    neighborhood orders disagree)."""

    name = "rank-within-ball"

    def setup(self, ctx: NodeContext) -> None:
        ctx.publish(ctx.id)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        ctx.halt(sum(1 for other in inbox if other < ctx.id))

"""Theorems 6 and 8, executable: the deterministic speedup transform.

Theorem 6: if a DetLOCAL algorithm A solves an LCL P (radius r) on a
hereditary graph class in ``f(Δ) + ε·log_Δ n`` rounds, then A can be
transformed, *black box*, into A' running in
``O((1 + f(Δ)) · (log* n − log* Δ + 1))`` rounds.  Theorem 8 is the same
engine with the parametrization ``O(log^k Δ + log^{k/(k+1)} n)`` →
``O(log^k Δ · (log* n − log* Δ + 1))``.

The mechanism (Section V): A's n-dependence can only enter through the
length ℓ of the IDs.  So A' first computes *short* IDs of length
ℓ' = O((f(Δ) + τ + r)·log Δ) that are distinct within distance
``D = 4f(Δ) + 2τ + 2r`` — one run of Linial's algorithm on the power
graph G^D, simulated in G at a factor-D slowdown — and then runs A
as-is, lying to it that the graph has 2^(ℓ') vertices.  Because the
class is hereditary and A is correct on all graphs of that size, and
because A can only ever see one ball of radius 2f+τ+r (in which the
short IDs *are* unique), the output labeling is legal.

:func:`speedup_transform` implements exactly this pipeline for any
driver with the signature ``driver(graph, ids, id_space) ->``
:class:`~repro.algorithms.drivers.AlgorithmReport`.  The round count it
reports is ``D · (rounds of Linial on G^D) + rounds of A under short
IDs`` — the theorem's accounting.  Experiment E7 shows the transform
collapsing an ε·log_Δ n-round algorithm to O(log* n)-type growth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..algorithms.drivers import AlgorithmReport, PhaseLog
from ..algorithms.linial import LinialColoring, linial_schedule
from ..core.context import Model
from ..core.engine import run_local
from ..core.ids import sequential_ids
from ..graphs.graph import Graph

#: A driver eligible for the transform: solves its LCL for any unique
#: IDs drawn from the announced space, on the (hereditary) input class.
Driver = Callable[[Graph, Sequence[int], int], AlgorithmReport]


@dataclass
class SpeedupResult:
    """Outcome of the transform, with the cost split the theorem uses."""

    report: AlgorithmReport
    collection_radius: int
    short_id_bits: int
    shortening_rounds: int
    base_rounds: int


def shortened_ids(
    graph: Graph,
    ids: Sequence[int],
    id_space: int,
    distance: int,
    max_rounds: int = 100_000,
) -> tuple:
    """IDs distinct within ``distance``, via Linial on the power graph.

    Returns ``(short_ids, id_space', rounds_in_G)`` where rounds_in_G
    already includes the factor-``distance`` simulation slowdown (each
    G^D round = D rounds of G plus one initial collection).
    """
    power = graph.power_graph(distance)
    run = run_local(
        power,
        LinialColoring(),
        Model.DET,
        ids=list(ids),
        global_params={"id_space": id_space},
        max_rounds=max_rounds,
    )
    degree_param = max(1, power.max_degree)
    palette = linial_schedule(id_space, degree_param)[-1]
    bits = max(1, (palette - 1).bit_length())
    rounds_in_g = distance * max(1, run.rounds)
    return run.outputs, 1 << bits, rounds_in_g


def speedup_transform(
    driver: Driver,
    graph: Graph,
    f_delta: int,
    problem_radius: int = 1,
    tau: int = 2,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
    max_rounds: int = 100_000,
) -> SpeedupResult:
    """Apply the Theorem 6 transform to ``driver`` on ``graph``.

    Parameters
    ----------
    driver:
        The algorithm A, as ``driver(graph, ids, id_space)``.  Its
        correctness must not assume globally unique IDs beyond radius
        ``2·f_delta + tau + problem_radius`` — true for any algorithm
        that honestly runs in ``f(Δ) + ε·log_Δ n`` rounds.
    f_delta:
        The Δ-dependent part of A's running time (the theorem's f(Δ)).
    problem_radius:
        The LCL's checking radius r.
    tau:
        The theorem's constant τ = 1 + log β (2 matches our Linial
        construction's β for small Δ).
    """
    n = graph.num_vertices
    if ids is None:
        ids = sequential_ids(n)
    if id_space is None:
        id_space = 1 << max(1, (max(n, 2) - 1).bit_length())
    distance = 4 * f_delta + 2 * tau + 2 * problem_radius
    log = PhaseLog()
    short_ids, short_space, shortening_rounds = shortened_ids(
        graph, ids, id_space, distance, max_rounds=max_rounds
    )
    log.add_rounds("id-shortening", shortening_rounds)
    base_report = driver(graph, short_ids, short_space)
    for phase in base_report.log.phases:
        log.add_rounds(f"base-{phase.name}", phase.rounds, phase.messages)
    return SpeedupResult(
        report=AlgorithmReport(base_report.labeling, log.total_rounds, log),
        collection_radius=distance,
        short_id_bits=max(1, (short_space - 1).bit_length()),
        shortening_rounds=shortening_rounds,
        base_rounds=base_report.rounds,
    )


def theorem8_budget(k: int, delta: int, n: int) -> float:
    """The Theorem 8 target ``O(log^k Δ · (log* n − log* Δ + 1))``,
    with unit constants — used by tests/benches as a growth yardstick,
    not as an exact bound."""
    from ..analysis.mathx import log_star

    log_delta = math.log2(max(2, delta))
    return (log_delta ** k) * max(1, log_star(n) - log_star(delta) + 1)

"""Plain-text charts for experiment series.

The benchmark tables record exact numbers; these renderers make the
*shapes* — the thing the reproduction is about — visible in a terminal
with no plotting dependencies.  Used by the examples and by
EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .experiments import Series

#: Glyphs from low to high for sparklines.
_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of the values."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _SPARKS[0] * len(values)
    out = []
    for v in values:
        index = int((v - lo) / (hi - lo) * (len(_SPARKS) - 1))
        out.append(_SPARKS[index])
    return "".join(out)


def ascii_chart(
    series_list: Sequence[Series],
    height: int = 10,
    width: Optional[int] = None,
    markers: str = "*o+x#@",
) -> str:
    """A fixed-grid ASCII chart of one or more series (shared axes).

    X positions are the series' sample indices (experiment sweeps are
    log-spaced, so index spacing reads as log scale); Y is linear over
    the joint value range.  Each series gets one marker; a legend line
    maps markers to names.
    """
    series_list = [s for s in series_list if s.points]
    if not series_list:
        return "(no data)"
    columns = width or max(len(s.points) for s in series_list)
    all_values = [p.mean for s in series_list for p in s.points]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo or 1.0
    grid: List[List[str]] = [
        [" "] * columns for _ in range(height)
    ]
    for index, series in enumerate(series_list):
        marker = markers[index % len(markers)]
        for x, point in enumerate(series.points[:columns]):
            y = int((point.mean - lo) / span * (height - 1))
            row = height - 1 - y
            grid[row][x] = marker
    lines = []
    for row_index, row in enumerate(grid):
        value = hi - span * row_index / (height - 1)
        lines.append(f"{value:10.1f} | " + " ".join(row))
    lines.append(" " * 10 + " +-" + "--" * columns)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {s.name}"
        for i, s in enumerate(series_list)
    )
    lines.append(" " * 13 + legend)
    return "\n".join(lines)


def growth_summary(series: Series) -> str:
    """One line: name, sparkline, first -> last means."""
    means = series.means
    return (
        f"{series.name}: {sparkline(means)}  "
        f"{means[0]:.3g} -> {means[-1]:.3g}"
    )

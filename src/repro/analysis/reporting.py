"""Experiment-result aggregation.

``python -m repro.analysis.reporting [results_dir]`` scans the
``benchmarks/results/`` directory the benchmark suite writes and prints
a pass/fail matrix — the one-screen answer to "did the reproduction
hold?".  The same parser is importable for tests and notebooks.
"""

from __future__ import annotations

import pathlib
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .tables import render_table

PathLike = Union[str, pathlib.Path]

_HEADER = re.compile(r"^== (?P<id>\S+): (?P<title>.*) ==$")
_CHECK = re.compile(r"^check (?P<name>.*): (?P<verdict>PASS|FAIL)$")
_NOTE = re.compile(r"^note: (?P<text>.*)$")


@dataclass
class ExperimentSummary:
    """Parsed record of one experiment's rendered output."""

    experiment_id: str
    title: str
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.checks) and all(self.checks.values())


def parse_record(text: str) -> Optional[ExperimentSummary]:
    """Parse one rendered ExperimentRecord; ``None`` if not one."""
    summary: Optional[ExperimentSummary] = None
    for line in text.splitlines():
        header = _HEADER.match(line)
        if header:
            summary = ExperimentSummary(
                experiment_id=header.group("id"),
                title=header.group("title"),
            )
            continue
        if summary is None:
            continue
        check = _CHECK.match(line)
        if check:
            summary.checks[check.group("name")] = (
                check.group("verdict") == "PASS"
            )
            continue
        note = _NOTE.match(line)
        if note:
            summary.notes.append(note.group("text"))
    return summary


def collect(results_dir: PathLike) -> List[ExperimentSummary]:
    """Parse every ``*.txt`` record in a results directory, sorted by
    experiment id."""
    directory = pathlib.Path(results_dir)
    summaries = []
    for path in sorted(directory.glob("*.txt")):
        summary = parse_record(path.read_text())
        if summary is not None:
            summaries.append(summary)
    summaries.sort(key=lambda s: (len(s.experiment_id), s.experiment_id))
    return summaries


def render_summary(summaries: List[ExperimentSummary]) -> str:
    """The pass/fail matrix as an aligned table."""
    rows = []
    for s in summaries:
        passed = sum(1 for ok in s.checks.values() if ok)
        rows.append(
            [
                s.experiment_id,
                "PASS" if s.passed else "FAIL",
                f"{passed}/{len(s.checks)}",
                s.title[:60],
            ]
        )
    return render_table(["id", "verdict", "checks", "title"], rows)


def main(argv: Optional[List[str]] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    results_dir = pathlib.Path(
        args[0] if args else "benchmarks/results"
    )
    if not results_dir.is_dir():
        print(f"no results directory at {results_dir}", file=sys.stderr)
        return 2
    summaries = collect(results_dir)
    if not summaries:
        print(f"no experiment records in {results_dir}", file=sys.stderr)
        return 2
    print(render_summary(summaries))
    return 0 if all(s.passed for s in summaries) else 1


if __name__ == "__main__":
    sys.exit(main())

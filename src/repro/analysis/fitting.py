"""Growth-class identification for measured round counts.

The paper's claims are asymptotic *shapes* — Θ(log_Δ n) deterministic
vs Θ(log_Δ log n) randomized, O(log* n) for Linial — so the experiment
harness needs a principled way to say "this series grows like log n,
that one like log log n".  :func:`classify_growth` fits each candidate
shape ``rounds ≈ a·shape(n) + b`` by least squares (a >= 0) and reports
the best normalized residual; :func:`growth_exponent_ratio` offers the
scale-doubling diagnostic (how much the measurement grows when n is
squared: ×2 for log, ×1 + o(1) for log log, ~×1 for log*).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .mathx import log_log, log_star

Shape = Callable[[float], float]

#: The candidate growth shapes the paper's theorems distinguish.
CANDIDATE_SHAPES: Dict[str, Shape] = {
    "constant": lambda n: 1.0,
    "log*": lambda n: float(log_star(n)),
    "loglog": lambda n: log_log(n),
    "log": lambda n: math.log2(max(n, 2.0)),
    "sqrt": lambda n: math.sqrt(n),
    "linear": lambda n: float(n),
}


@dataclass
class Fit:
    """One shape's least-squares fit."""

    shape: str
    scale: float
    offset: float
    rmse: float
    normalized_rmse: float


def _fit_shape(
    xs: Sequence[float], ys: Sequence[float], shape: Shape
) -> Tuple[float, float, float]:
    """Least squares for y ≈ a·shape(x) + b with a >= 0."""
    fx = [shape(x) for x in xs]
    n = len(xs)
    mean_f = sum(fx) / n
    mean_y = sum(ys) / n
    var_f = sum((f - mean_f) ** 2 for f in fx)
    if var_f == 0:
        a = 0.0
    else:
        cov = sum((f - mean_f) * (y - mean_y) for f, y in zip(fx, ys))
        a = max(0.0, cov / var_f)
    b = mean_y - a * mean_f
    rmse = math.sqrt(
        sum((a * f + b - y) ** 2 for f, y in zip(fx, ys)) / n
    )
    return a, b, rmse


def classify_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    shapes: Sequence[str] = ("constant", "log*", "loglog", "log", "linear"),
) -> List[Fit]:
    """Fit each candidate shape; return fits sorted best-first.

    ``normalized_rmse`` divides by the spread of y so different series
    are comparable; a value near 0 is a good fit.
    """
    if len(xs) != len(ys) or len(xs) < 3:
        raise ValueError("need at least 3 aligned samples")
    spread = max(ys) - min(ys)
    if spread == 0:
        spread = max(abs(y) for y in ys) or 1.0
    fits = []
    for name in shapes:
        a, b, rmse = _fit_shape(xs, ys, CANDIDATE_SHAPES[name])
        fits.append(Fit(name, a, b, rmse, rmse / spread))
    fits.sort(key=lambda fit: fit.rmse)
    return fits


def best_shape(xs: Sequence[float], ys: Sequence[float], **kw) -> str:
    """Name of the best-fitting candidate shape."""
    return classify_growth(xs, ys, **kw)[0].shape


def growth_exponent_ratio(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Diagnostic ratio ``(y_last - y_first) / (shape_log(x_last) -
    shape_log(x_first))`` — the per-doubling increment if growth is
    logarithmic.  Near-zero increments indicate sub-logarithmic growth.
    """
    if len(xs) < 2:
        raise ValueError("need at least 2 samples")
    dlog = math.log2(max(xs[-1], 2)) - math.log2(max(xs[0], 2))
    if dlog == 0:
        return 0.0
    return (ys[-1] - ys[0]) / dlog


def separation_factor(
    slow: Sequence[float], fast: Sequence[float]
) -> float:
    """How much the ``slow`` series outgrew the ``fast`` one over the
    sweep: (slow_last/slow_first) / (fast_last/fast_first).  Values
    substantially above 1 certify a separation in growth."""
    if len(slow) < 2 or len(fast) < 2:
        raise ValueError("need at least 2 samples per series")
    slow_growth = slow[-1] / max(slow[0], 1e-9)
    fast_growth = fast[-1] / max(fast[0], 1e-9)
    return slow_growth / max(fast_growth, 1e-9)

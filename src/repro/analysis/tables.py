"""Plain-text table rendering for experiment output.

The paper being reproduced has no numbered tables; our benches print
these tables as the experiment artifacts recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned ASCII table."""
    table = [list(map(_format_cell, headers))]
    for row in rows:
        table.append([_format_cell(cell) for cell in row])
    widths = [
        max(len(table[r][c]) for r in range(len(table)))
        for c in range(len(headers))
    ]
    lines: List[str] = []
    for r, row in enumerate(table):
        line = "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row))
        lines.append(line)
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_kv(title: str, pairs: Sequence[Sequence[Any]]) -> str:
    """Render a two-column key/value block with a title."""
    body = render_table(["key", "value"], pairs)
    return f"{title}\n{body}"

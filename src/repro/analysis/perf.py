"""Perf-regression harness: calibrated engine and sweep throughput.

The engine hot path (:func:`repro.core.engine.run_local`) and the sweep
runner (:func:`repro.analysis.experiments.run_sweep`) carry every
quantitative experiment in this repository, so their throughput gets a
tracked trajectory: :func:`run_perf_suite` measures a small set of
metrics, normalizes them against a per-machine calibration loop, and
:func:`compare_to_baseline` checks a run against the committed
``benchmarks/BENCH_baseline.json`` within a tolerance.  ``repro bench``
is the CLI front end; the perf-smoke CI job runs it warn-only.

Workloads:

- **sleep-heavy engine micro-benchmark** — a class-sweep algorithm in
  the style of the Δ⁵⁵ phase algorithms: vertex class c wakes exactly
  once, at round c, and halts.  Almost every vertex is asleep in every
  round, which is the regime the paper's shattering analysis predicts;
  the O(n)-per-round reference engine rescans everyone while the
  production engine's wake buckets touch only the awake class.
- **sweep macro-benchmark** — a scaled-down E3 separation sweep
  (randomized tree coloring over a size grid × seeds), timed serially
  and through the ``workers=N`` process pool.

Normalization: raw throughput is divided by the machine's calibration
score (a fixed pure-Python spin loop), making committed baselines
comparable across hosts to first order.  Ratios (speedups) need no
normalization.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from .experiments import run_sweep
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.atomicio import atomic_write_text
from ..core.context import Model, NodeContext
from ..core.engine import run_local, run_local_reference

#: Schema version stamped into baseline files.
BASELINE_VERSION = 1

#: Default relative slack for `repro bench --compare` (35%): perf-smoke
#: should flag real cliffs, not CI noise.
DEFAULT_TOLERANCE = 0.35

#: Spin-loop size for one calibration sample.
_CALIBRATION_OPS = 200_000


class ClassSweepSleeper(SyncAlgorithm):
    """Sleep-heavy synthetic workload: class c steps once, at round c.

    Node input:
        ``klass``: this vertex's wake round (0 .. classes-1).

    Every vertex publishes a token during setup, sleeps until its class
    round, counts its neighbors' tokens and halts — so each vertex does
    O(1) work while the run spans ``classes`` rounds.  With n vertices
    and k classes only n/k vertices are awake per round, mirroring the
    paper's phase algorithms (Δ⁵⁵ peeling, class-by-class reductions).
    """

    name = "class-sweep-sleeper"

    def setup(self, ctx: NodeContext) -> None:
        ctx.publish(("token", ctx.input["klass"]))
        ctx.sleep_until(ctx.input["klass"])

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        ctx.halt(sum(1 for msg in inbox if msg is not None))


def calibrate_ops_per_sec(samples: int = 3) -> float:
    """Machine speed proxy: fixed spin-loop iterations per second.

    Best of ``samples`` runs, so transient scheduler noise lowers the
    score (and with it every normalized metric) as little as possible.
    """
    best = 0.0
    for _ in range(samples):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_OPS):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = max(best, _CALIBRATION_OPS / elapsed)
    return best


def _time_best(fn: Callable[[], Any], repeats: int = 2) -> float:
    """Shortest wall-clock of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sleepheavy_inputs(n: int, classes: int) -> List[Dict[str, Any]]:
    return [{"klass": v % classes} for v in range(n)]


def engine_sleepheavy_metrics(
    n: int = 10_000,
    classes: int = 400,
    include_reference: bool = True,
    repeats: int = 2,
) -> Dict[str, float]:
    """Rounds/sec of the production engine on the sleep-heavy workload,
    plus its speedup over :func:`run_local_reference`."""
    from ..graphs.generators import cycle_graph

    graph = cycle_graph(n)
    inputs = _sleepheavy_inputs(n, classes)

    def fast() -> None:
        result = run_local(
            graph,
            ClassSweepSleeper(),
            Model.DET,
            node_inputs=inputs,
        )
        assert result.rounds == classes

    fast_seconds = _time_best(fast, repeats)
    metrics = {
        "n": float(n),
        "rounds": float(classes),
        "fast_seconds": fast_seconds,
        "rounds_per_sec": classes / fast_seconds,
    }
    if include_reference:
        def reference() -> None:
            run_local_reference(
                graph,
                ClassSweepSleeper(),
                Model.DET,
                node_inputs=inputs,
            )

        ref_seconds = _time_best(reference, repeats)
        metrics["reference_seconds"] = ref_seconds
        metrics["speedup_vs_reference"] = ref_seconds / fast_seconds
    return metrics


def tracing_overhead_metrics(
    n: int = 10_000,
    classes: int = 400,
    repeats: int = 2,
) -> Dict[str, float]:
    """Cost of observation: the sleep-heavy workload bare, with a
    :class:`~repro.obs.MetricsObserver`, and with a
    :class:`~repro.obs.JsonlTraceObserver` streaming to the null
    device.  The overhead *ratios* (traced time / bare time) are
    recorded, not gated — the acceptance bar is that the bare run,
    whose hot loop carries only a ``hub is not None`` test, does not
    regress.
    """
    import os as _os

    from ..graphs.generators import cycle_graph
    from ..obs import JsonlTraceObserver, MetricsObserver

    graph = cycle_graph(n)
    inputs = _sleepheavy_inputs(n, classes)

    def run(observers: Any) -> None:
        run_local(
            graph,
            ClassSweepSleeper(),
            Model.DET,
            node_inputs=inputs,
            observers=observers,
        )

    bare_seconds = _time_best(lambda: run(None), repeats)
    metrics_seconds = _time_best(
        lambda: run([MetricsObserver()]), repeats
    )
    devnull = open(_os.devnull, "w", encoding="utf-8")
    try:
        def traced() -> None:
            run([JsonlTraceObserver(devnull, topology=False)])

        traced_seconds = _time_best(traced, repeats)
    finally:
        devnull.close()
    return {
        "n": float(n),
        "rounds": float(classes),
        "bare_seconds": bare_seconds,
        "metrics_seconds": metrics_seconds,
        "traced_seconds": traced_seconds,
        "metrics_overhead_ratio": metrics_seconds / bare_seconds,
        "tracing_overhead_ratio": traced_seconds / bare_seconds,
        "traced_rounds_per_sec": classes / traced_seconds,
    }


def _color_bidding_workload(n: int, delta: int, seed: int):
    """Graph + run_local kwargs of the E5-style ColorBidding workload
    (Theorem 10 Phase 1) every backend is timed on."""
    import random

    from ..algorithms.rand_tree_coloring import (
        ColorBiddingAlgorithm,
        ColorBiddingConfig,
        reserved_colors,
    )
    from ..graphs.generators import random_tree_bounded_degree

    graph = random_tree_bounded_degree(
        n, delta, random.Random(1000 * seed + n)
    )
    kwargs = {
        "seed": seed,
        "global_params": {
            "config": ColorBiddingConfig(),
            "main_palette": delta - reserved_colors(delta),
        },
    }
    return graph, ColorBiddingAlgorithm(), kwargs


def backend_engine_metrics(
    n: int = 20_000,
    delta: int = 9,
    seed: int = 0,
    repeats: int = 2,
) -> Dict[str, Dict[str, float]]:
    """Per-backend timing of the ColorBidding workload.

    One sub-dict per *available* backend: wall seconds, rounds·nodes/sec
    throughput, and speedup over the fast engine.  Asserts the backend
    contract en passant — every backend must produce the fast engine's
    exact outputs on this workload.
    """
    from ..core.backend import available_backend_names, use_backend

    graph, algorithm, kwargs = _color_bidding_workload(n, delta, seed)
    results: Dict[str, Any] = {}
    timings: Dict[str, Dict[str, float]] = {}
    for name in available_backend_names():
        def run() -> None:
            with use_backend(name):
                results[name] = run_local(
                    graph, algorithm, Model.RAND, **kwargs
                )

        seconds = _time_best(run, repeats)
        timings[name] = {
            "n": float(n),
            "seconds": seconds,
            "rounds_nodes_per_sec": results[name].rounds * n / seconds,
        }
    fast = results["fast"]
    for name, result in results.items():
        if result.outputs != fast.outputs or result.rounds != fast.rounds:
            raise AssertionError(
                f"backend {name!r} diverged from the fast engine on "
                "the ColorBidding workload — the bit-identity "
                "contract is broken"
            )
        timings[name]["speedup_vs_fast"] = (
            timings["fast"]["seconds"] / timings[name]["seconds"]
        )
    return timings


def traced_backend_metrics(
    n: int = 20_000,
    delta: int = 9,
    seed: int = 0,
    repeats: int = 2,
) -> Dict[str, Dict[str, float]]:
    """Per-backend timing of the ColorBidding workload **observed**:
    a :class:`~repro.obs.MetricsObserver` plus a
    :class:`~repro.obs.JsonlTraceObserver` streaming to the null device
    are attached for every timed run.

    This is the plane-1 scale contract made a number: since the
    vectorized backend feeds batch-capable observers natively (no
    scalar fallback), its traced throughput must stay vectorized-class,
    not collapse to the fast engine's.  Asserts en passant that every
    backend's metrics summary is identical — the byte-identity contract
    with observers attached.
    """
    import os as _os

    from ..core.backend import available_backend_names, use_backend
    from ..obs import JsonlTraceObserver, MetricsObserver

    graph, algorithm, kwargs = _color_bidding_workload(n, delta, seed)
    timings: Dict[str, Dict[str, float]] = {}
    summaries: Dict[str, Any] = {}
    rounds: Dict[str, int] = {}
    devnull = open(_os.devnull, "w", encoding="utf-8")
    try:
        for name in available_backend_names():
            def traced() -> None:
                metrics = MetricsObserver()
                trace = JsonlTraceObserver(devnull, topology=False)
                with use_backend(name):
                    result = run_local(
                        graph,
                        algorithm,
                        Model.RAND,
                        observers=[metrics, trace],
                        **kwargs,
                    )
                summaries[name] = metrics.summary()
                rounds[name] = result.rounds

            seconds = _time_best(traced, repeats)
            timings[name] = {
                "n": float(n),
                "seconds": seconds,
                "traced_rounds_nodes_per_sec": rounds[name] * n / seconds,
            }
    finally:
        devnull.close()
    for name, summary in summaries.items():
        if summary != summaries["fast"]:
            raise AssertionError(
                f"backend {name!r} produced a different metrics summary "
                "than the fast engine with observers attached — the "
                "observed byte-identity contract is broken"
            )
        timings[name]["traced_speedup_vs_fast"] = (
            timings["fast"]["seconds"] / timings[name]["seconds"]
        )
    return timings


def e5_vectorized_metrics(
    n: int = 1_000_000,
    delta: int = 9,
    seed: int = 0,
) -> Optional[Dict[str, float]]:
    """The tentpole measurement: E5 shattering at n = 10⁶, vectorized
    vs fast, single run each (the fast engine alone takes minutes) —
    bare first, then **traced** (MetricsObserver + JsonlTraceObserver
    to the null device) to pin the observed-at-scale contract: a traced
    vectorized run must stay well clear of the traced fast engine.

    Returns None when the vectorized backend is unavailable.  Gated
    behind ``repro bench --full`` — this is the number the committed
    baseline records, not a per-CI-run workload.
    """
    import os as _os

    from ..core.backend import available_backend_names
    from ..obs import JsonlTraceObserver, MetricsObserver

    if "vectorized" not in available_backend_names():
        return None
    graph, algorithm, kwargs = _color_bidding_workload(n, delta, seed)

    start = time.perf_counter()
    vec = run_local(
        graph, algorithm, Model.RAND, backend="vectorized", **kwargs
    )
    vec_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = run_local(graph, algorithm, Model.RAND, **kwargs)
    fast_seconds = time.perf_counter() - start

    if fast.outputs != vec.outputs:
        raise AssertionError(
            "vectorized E5 outputs diverged from the fast engine at "
            f"n={n} — the bit-identity contract is broken"
        )

    devnull = open(_os.devnull, "w", encoding="utf-8")
    try:
        summaries: Dict[str, Any] = {}

        def traced(backend: str) -> float:
            metrics = MetricsObserver()
            trace = JsonlTraceObserver(devnull, topology=False)
            start = time.perf_counter()
            run_local(
                graph,
                algorithm,
                Model.RAND,
                backend=backend,
                observers=[metrics, trace],
                **kwargs,
            )
            seconds = time.perf_counter() - start
            summaries[backend] = metrics.summary()
            return seconds

        traced_vec_seconds = traced("vectorized")
        traced_fast_seconds = traced("fast")
    finally:
        devnull.close()
    if summaries["vectorized"] != summaries["fast"]:
        raise AssertionError(
            "vectorized E5 metrics summary diverged from the fast "
            f"engine at n={n} — the observed byte-identity contract "
            "is broken"
        )
    return {
        "n": float(n),
        "rounds": float(vec.rounds),
        "fast_seconds": fast_seconds,
        "vectorized_seconds": vec_seconds,
        "fast_rounds_nodes_per_sec": fast.rounds * n / fast_seconds,
        "vectorized_rounds_nodes_per_sec": vec.rounds * n / vec_seconds,
        "speedup_vs_fast": fast_seconds / vec_seconds,
        "traced_fast_seconds": traced_fast_seconds,
        "traced_vectorized_seconds": traced_vec_seconds,
        "traced_vectorized_rounds_nodes_per_sec": (
            vec.rounds * n / traced_vec_seconds
        ),
        "traced_speedup_vs_fast": traced_fast_seconds / traced_vec_seconds,
    }


def _sweep_measure(n: float, seed: int) -> float:
    """One E3-style sweep cell: randomized Δ=9 tree coloring rounds."""
    from ..algorithms import pettie_su_tree_coloring
    from ..graphs.generators import complete_regular_tree_with_size

    tree = complete_regular_tree_with_size(9, int(n))
    return float(pettie_su_tree_coloring(tree, seed=seed).rounds)


def sweep_metrics(
    workers: int = 4,
    sizes: tuple = (100, 400, 1600),
    seeds: tuple = (0, 1, 2, 3),
) -> Dict[str, float]:
    """Cells/sec of a scaled-down separation sweep, serial vs pooled.

    Also asserts the determinism contract en passant: the parallel
    Series must be bit-identical to the serial one.
    """
    cells = len(sizes) * len(seeds)

    serial_start = time.perf_counter()
    serial = run_sweep("perf-serial", sizes, _sweep_measure, seeds=seeds)
    serial_seconds = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = run_sweep(
        "perf-parallel",
        sizes,
        _sweep_measure,
        seeds=seeds,
        workers=workers,
    )
    parallel_seconds = time.perf_counter() - parallel_start

    if [p.values for p in serial.points] != [
        p.values for p in parallel.points
    ]:
        raise AssertionError(
            "workers sweep diverged from serial order — the per-cell "
            "determinism contract is broken"
        )
    return {
        "cells": float(cells),
        "workers": float(workers),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "serial_cells_per_sec": cells / serial_seconds,
        "parallel_cells_per_sec": cells / parallel_seconds,
        "parallel_speedup": serial_seconds / parallel_seconds,
    }


def run_perf_suite(
    workers: int = 4,
    include_reference: bool = True,
    full: bool = False,
) -> Dict[str, Any]:
    """Run every perf workload and package a baseline-shaped report.

    ``metrics`` maps name -> ``{"value": raw, "normalized": raw /
    calibration}`` for throughputs; ratios carry ``"normalized": None``
    (they are machine-independent already).  ``full`` adds the
    n = 10⁶ E5 vectorized-vs-fast measurement (minutes of wall clock;
    baselines committed to the repo should be recorded with it).
    """
    ops_per_sec = calibrate_ops_per_sec()
    engine = engine_sleepheavy_metrics(include_reference=include_reference)
    tracing = tracing_overhead_metrics()
    sweep = sweep_metrics(workers=workers)
    backends = backend_engine_metrics()
    traced_backends = traced_backend_metrics()
    e5_full = e5_vectorized_metrics() if full else None

    def throughput(value: float) -> Dict[str, Optional[float]]:
        return {"value": value, "normalized": value / ops_per_sec * 1e6}

    def ratio(value: float) -> Dict[str, Optional[float]]:
        return {"value": value, "normalized": None}

    metrics: Dict[str, Dict[str, Optional[float]]] = {
        "engine_sleepheavy_rounds_per_sec": throughput(
            engine["rounds_per_sec"]
        ),
        # Throughput with a JSONL trace attached: gated like any other
        # metric once a refreshed baseline records it.  The overhead
        # *ratios* live in raw["tracing_overhead"] only — they are
        # lower-is-better and must not enter this higher-is-better
        # comparison.
        "engine_traced_rounds_per_sec": throughput(
            tracing["traced_rounds_per_sec"]
        ),
        "sweep_serial_cells_per_sec": throughput(
            sweep["serial_cells_per_sec"]
        ),
        "sweep_parallel_cells_per_sec": throughput(
            sweep["parallel_cells_per_sec"]
        ),
        "sweep_parallel_speedup": ratio(sweep["parallel_speedup"]),
    }
    if "speedup_vs_reference" in engine:
        metrics["engine_sleepheavy_speedup_vs_reference"] = ratio(
            engine["speedup_vs_reference"]
        )
    # One comparison row per registered-and-available backend; a
    # baseline recorded with the [perf] extra keeps its vectorized rows
    # when compared on a numpy-less host (absent metrics never gate).
    for name, timing in sorted(backends.items()):
        metrics[f"backend_{name}_rounds_nodes_per_sec"] = throughput(
            timing["rounds_nodes_per_sec"]
        )
        if name != "fast":
            metrics[f"backend_{name}_speedup_vs_fast"] = ratio(
                timing["speedup_vs_fast"]
            )
    # Observed (metrics + trace attached) per-backend throughput: the
    # plane-1 scale contract.  The vectorized row is the number the
    # perf-smoke CI job tracks — if batched emission ever regresses to
    # the scalar fallback, this metric collapses by an order of
    # magnitude and the comparison flags it.
    for name, timing in sorted(traced_backends.items()):
        metrics[f"engine_{name}_traced_rounds_per_sec"] = throughput(
            timing["traced_rounds_nodes_per_sec"]
        )
        if name != "fast":
            metrics[f"engine_{name}_traced_speedup_vs_fast"] = ratio(
                timing["traced_speedup_vs_fast"]
            )
    if e5_full is not None:
        metrics["e5_1e6_vectorized_rounds_nodes_per_sec"] = throughput(
            e5_full["vectorized_rounds_nodes_per_sec"]
        )
        metrics["e5_1e6_vectorized_speedup_vs_fast"] = ratio(
            e5_full["speedup_vs_fast"]
        )
        metrics["e5_1e6_traced_vectorized_rounds_nodes_per_sec"] = (
            throughput(e5_full["traced_vectorized_rounds_nodes_per_sec"])
        )
        metrics["e5_1e6_traced_vectorized_speedup_vs_fast"] = ratio(
            e5_full["traced_speedup_vs_fast"]
        )
    raw = {
        "engine_sleepheavy": engine,
        "tracing_overhead": tracing,
        "sweep": sweep,
        "backends": backends,
        "traced_backends": traced_backends,
    }
    if e5_full is not None:
        raw["e5_1e6_vectorized"] = e5_full
    return {
        "version": BASELINE_VERSION,
        "recorded": {
            "cpu_count": os.cpu_count() or 1,
            "python": platform.python_version(),
            "platform": sys.platform,
        },
        "calibration_ops_per_sec": ops_per_sec,
        "metrics": metrics,
        "raw": raw,
    }


def save_baseline(report: Dict[str, Any], path: str) -> None:
    atomic_write_text(
        path, json.dumps(report, indent=2, sort_keys=True) + "\n"
    )


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        baseline = json.load(fh)
    if baseline.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {baseline.get('version')!r}; "
            f"this tool writes version {BASELINE_VERSION} — refresh it "
            "with `repro bench --update`"
        )
    return baseline


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, Any]]:
    """Compare a perf report to a baseline, metric by metric.

    Normalized values are compared when both sides carry them (so a
    faster or slower machine does not read as a perf change); raw values
    otherwise.  Higher is better for every metric.  A metric regresses
    when ``current < baseline * (1 - tolerance)``.  Metrics present on
    only one side are reported but never regress (they appear when the
    suite gains workloads).
    """
    rows: List[Dict[str, Any]] = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        row: Dict[str, Any] = {"metric": name, "regressed": False}
        if base is None or cur is None:
            row["note"] = (
                "only in current run" if base is None else "only in baseline"
            )
            rows.append(row)
            continue
        use_normalized = (
            base.get("normalized") is not None
            and cur.get("normalized") is not None
        )
        key = "normalized" if use_normalized else "value"
        base_value = float(base[key])
        cur_value = float(cur[key])
        row.update(
            {
                "baseline": base_value,
                "current": cur_value,
                "ratio": (cur_value / base_value) if base_value else None,
                "normalized": use_normalized,
                "regressed": cur_value < base_value * (1.0 - tolerance),
            }
        )
        rows.append(row)
    return rows


def render_comparison(rows: List[Dict[str, Any]], tolerance: float) -> str:
    """Human-readable verdict table for ``repro bench --compare``."""
    from .tables import render_table

    table_rows = []
    regressions = 0
    for row in rows:
        if "baseline" not in row:
            table_rows.append(
                [row["metric"], "-", "-", "-", row.get("note", "")]
            )
            continue
        regressions += int(row["regressed"])
        table_rows.append(
            [
                row["metric"],
                f"{row['baseline']:.3f}",
                f"{row['current']:.3f}",
                f"{row['ratio']:.2f}x" if row["ratio"] else "-",
                "REGRESSED" if row["regressed"] else "ok",
            ]
        )
    lines = [
        render_table(
            ["metric", "baseline", "current", "ratio", "verdict"],
            table_rows,
        ),
        f"tolerance: -{tolerance:.0%} on "
        "machine-normalized throughput (raw for ratios)",
        (
            f"{regressions} metric(s) regressed"
            if regressions
            else "no perf regressions"
        ),
    ]
    return "\n".join(lines)


def has_regression(rows: List[Dict[str, Any]]) -> bool:
    return any(row.get("regressed") for row in rows)

"""Experiment harness: sweeps, growth fitting, table rendering."""

from .charts import ascii_chart, growth_summary, sparkline
from .experiments import ExperimentRecord, Point, Series, run_sweep
from .resilience import CellOutcome, SweepJournal, retry_seed
from .fitting import (
    CANDIDATE_SHAPES,
    Fit,
    best_shape,
    classify_growth,
    growth_exponent_ratio,
    separation_factor,
)
from .mathx import ceil_log2, log_base, log_delta, log_log, log_star
from .tables import render_kv, render_table

__all__ = [
    "CANDIDATE_SHAPES",
    "CellOutcome",
    "ExperimentRecord",
    "Fit",
    "Point",
    "Series",
    "SweepJournal",
    "ascii_chart",
    "best_shape",
    "ceil_log2",
    "classify_growth",
    "growth_exponent_ratio",
    "growth_summary",
    "log_base",
    "log_delta",
    "log_log",
    "log_star",
    "render_kv",
    "render_table",
    "retry_seed",
    "run_sweep",
    "separation_factor",
    "sparkline",
]

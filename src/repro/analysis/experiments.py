"""Experiment harness: parameter sweeps with seeds and aggregation.

Benchmarks and examples share this machinery: a :class:`Sweep` runs a
measurement function over a parameter grid with several seeds, collects
:class:`Series` of (x, mean, min, max), and renders them through
:mod:`repro.analysis.tables`.  Keeping it here (rather than in each
bench file) makes every experiment's shape identical: generate → run →
verify → record.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import AlgorithmFailure


@dataclass
class Point:
    """One aggregated measurement."""

    x: float
    values: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)


@dataclass
class Series:
    """A named sequence of aggregated measurements."""

    name: str
    points: List[Point] = field(default_factory=list)

    def add(self, x: float, values: Iterable[float]) -> None:
        values = list(values)
        if not values:
            raise ValueError(f"series {self.name!r}: empty sample at x={x}")
        self.points.append(Point(x, values))

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def means(self) -> List[float]:
        return [p.mean for p in self.points]

    def as_rows(self) -> List[Sequence[Any]]:
        return [
            (p.x, round(p.mean, 2), p.minimum, p.maximum)
            for p in self.points
        ]


#: Sentinel used by pool workers to report a declared failure without
#: pickling the exception traceback across the process boundary.
_FAILED = "__algorithm_failure__"

#: The measurement callable a forked pool worker should run.  Set in
#: the parent immediately before the pool is created; fork-children
#: inherit it, which lets ``run_sweep`` parallelize arbitrary closures
#: (bench measures are rarely picklable).
_WORKER_MEASURE: Optional[Callable[[float, int], float]] = None


def _measure_cell(cell: Tuple[float, int, bool]) -> Tuple[str, float, str]:
    """Run one (x, seed) cell in a pool worker (or inline)."""
    x, seed, skip_failures = cell
    assert _WORKER_MEASURE is not None
    try:
        return ("ok", float(_WORKER_MEASURE(x, seed)), "")
    except AlgorithmFailure as exc:
        if skip_failures:
            return (_FAILED, 0.0, str(exc))
        raise


def run_sweep(
    name: str,
    xs: Sequence[float],
    measure: Callable[[float, int], float],
    seeds: Sequence[int] = (0, 1, 2),
    skip_failures: bool = False,
    workers: Optional[int] = None,
) -> Series:
    """Measure ``measure(x, seed)`` over a grid × seeds.

    With ``skip_failures`` (for randomized algorithms with a declared
    failure mode), runs that raise :class:`AlgorithmFailure` are
    dropped; a point with *no* surviving run still raises.  Any other
    exception (``TypeError``, ``ModelViolationError``, ...) is a genuine
    bug and always propagates.

    With ``workers=N`` (N > 1), the grid × seed cells are fanned out to
    a process pool.  Determinism contract: ``measure`` must be a pure
    function of ``(x, seed)`` — every cell seeds its own RNGs — so the
    returned :class:`Series` is bit-identical to a serial run; cells are
    reassembled in serial order regardless of completion order.  The
    pool uses the ``fork`` start method (closures need no pickling);
    where ``fork`` is unavailable the sweep silently runs serially.
    """
    cells = [(x, seed, skip_failures) for x in xs for seed in seeds]
    outcomes = _run_cells(cells, measure, workers)
    series = Series(name)
    per_x = len(seeds)
    for i, x in enumerate(xs):
        chunk = outcomes[i * per_x:(i + 1) * per_x]
        series.add(x, [value for tag, value, _ in chunk if tag == "ok"])
    return series


def _run_cells(
    cells: List[Tuple[float, int, bool]],
    measure: Callable[[float, int], float],
    workers: Optional[int],
) -> List[Tuple[str, float, str]]:
    """Evaluate cells serially or on a fork pool, in cell order."""
    global _WORKER_MEASURE
    pool_ctx = None
    if workers is not None and workers > 1 and len(cells) > 1:
        import multiprocessing

        try:
            pool_ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: degrade to serial
            pool_ctx = None
    previous = _WORKER_MEASURE
    _WORKER_MEASURE = measure
    try:
        if pool_ctx is None:
            return [_measure_cell(cell) for cell in cells]
        assert workers is not None
        with pool_ctx.Pool(processes=min(workers, len(cells))) as pool:
            return pool.map(_measure_cell, cells)
    finally:
        _WORKER_MEASURE = previous


@dataclass
class ExperimentRecord:
    """A finished experiment: series plus free-form annotations.

    ``checks`` holds named boolean outcomes (e.g. "all outputs verified
    by the LCL checker", "every measurement respects the Theorem 4
    bound") so bench output states its own validity.
    """

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, series: Series) -> None:
        self.series.append(series)

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = bool(ok)

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        from .tables import render_table

        lines = [f"== {self.experiment_id}: {self.title} =="]
        for series in self.series:
            lines.append(f"-- {series.name}")
            lines.append(
                render_table(
                    ["x", "mean", "min", "max"], series.as_rows()
                )
            )
        for name, ok in self.checks.items():
            lines.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

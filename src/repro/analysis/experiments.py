"""Experiment harness: parameter sweeps with seeds and aggregation.

Benchmarks and examples share this machinery: a :class:`Sweep` runs a
measurement function over a parameter grid with several seeds, collects
:class:`Series` of (x, mean, min, max), and renders them through
:mod:`repro.analysis.tables`.  Keeping it here (rather than in each
bench file) makes every experiment's shape identical: generate → run →
verify → record.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence


@dataclass
class Point:
    """One aggregated measurement."""

    x: float
    values: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)


@dataclass
class Series:
    """A named sequence of aggregated measurements."""

    name: str
    points: List[Point] = field(default_factory=list)

    def add(self, x: float, values: Iterable[float]) -> None:
        values = list(values)
        if not values:
            raise ValueError(f"series {self.name!r}: empty sample at x={x}")
        self.points.append(Point(x, values))

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def means(self) -> List[float]:
        return [p.mean for p in self.points]

    def as_rows(self) -> List[Sequence[Any]]:
        return [
            (p.x, round(p.mean, 2), p.minimum, p.maximum)
            for p in self.points
        ]


def run_sweep(
    name: str,
    xs: Sequence[float],
    measure: Callable[[float, int], float],
    seeds: Sequence[int] = (0, 1, 2),
    skip_failures: bool = False,
) -> Series:
    """Measure ``measure(x, seed)`` over a grid × seeds.

    With ``skip_failures`` (for randomized algorithms with a declared
    failure mode), failed runs are dropped; a point with *no* surviving
    run still raises.
    """
    series = Series(name)
    for x in xs:
        values = []
        for seed in seeds:
            try:
                values.append(float(measure(x, seed)))
            except Exception:
                if not skip_failures:
                    raise
        series.add(x, values)
    return series


@dataclass
class ExperimentRecord:
    """A finished experiment: series plus free-form annotations.

    ``checks`` holds named boolean outcomes (e.g. "all outputs verified
    by the LCL checker", "every measurement respects the Theorem 4
    bound") so bench output states its own validity.
    """

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, series: Series) -> None:
        self.series.append(series)

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = bool(ok)

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        from .tables import render_table

        lines = [f"== {self.experiment_id}: {self.title} =="]
        for series in self.series:
            lines.append(f"-- {series.name}")
            lines.append(
                render_table(
                    ["x", "mean", "min", "max"], series.as_rows()
                )
            )
        for name, ok in self.checks.items():
            lines.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

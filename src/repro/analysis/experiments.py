"""Experiment harness: parameter sweeps with seeds and aggregation.

Benchmarks and examples share this machinery: a :class:`Sweep` runs a
measurement function over a parameter grid with several seeds, collects
:class:`Series` of (x, mean, min, max), and renders them through
:mod:`repro.analysis.tables`.  Keeping it here (rather than in each
bench file) makes every experiment's shape identical: generate → run →
verify → record.

Telemetry: ``run_sweep(observer_factory=...)`` attaches a fresh
observer (see :mod:`repro.obs`) around each cell's measurement and
collects its ``summary()`` dict.  Summaries ride back from forked pool
workers as pickled plain dicts and are reassembled in grid order, so
the per-cell telemetry — like the values themselves — is bit-identical
to a serial run.  A summary that cannot be pickled raises
:class:`~repro.core.errors.TelemetryError` inside the worker with a
clear message instead of a bare pool crash.

Resilience: sweeps survive flaky cells and flaky infrastructure (see
:mod:`repro.analysis.resilience` and ``docs/robustness.md``).
``retries=k`` re-runs a cell that raises
:class:`~repro.core.errors.AlgorithmFailure` — or whose worker hangs or
dies — up to ``k`` extra times under :func:`retry_seed`-derived seeds;
``timeout=s`` kills pooled workers that exceed a per-cell wall-clock
deadline; ``journal=path`` checkpoints completed cells to JSONL so an
interrupted sweep resumes where it left off, byte-identically.  Every
cell's fate — including cells the historical harness dropped silently
under ``skip_failures`` — is recorded in ``Series.cell_outcomes``.
"""

from __future__ import annotations

import pickle
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.backend import current_backend_name, get_backend, use_backend
from ..core.errors import AlgorithmFailure, TelemetryError
from .resilience import CellOutcome, SweepJournal, retry_seed


@dataclass
class Point:
    """One aggregated measurement."""

    x: float
    values: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)


@dataclass
class Series:
    """A named sequence of aggregated measurements."""

    name: str
    points: List[Point] = field(default_factory=list)
    #: Per-cell metric summaries in grid order (x-major, then seed),
    #: populated when ``run_sweep`` ran with an ``observer_factory``.
    #: Each entry is ``{"x": ..., "seed": ..., "summary": {...}}``.
    cell_telemetry: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-cell audit records in grid order, populated by ``run_sweep``
    #: — including skipped cells, which earlier harness versions
    #: dropped without a trace.
    cell_outcomes: List[CellOutcome] = field(default_factory=list)

    def add(self, x: float, values: Iterable[float]) -> None:
        values = list(values)
        if not values:
            raise ValueError(f"series {self.name!r}: empty sample at x={x}")
        self.points.append(Point(x, values))

    def telemetry(self) -> Optional[Dict[str, Any]]:
        """All cell summaries merged deterministically (None if the
        sweep ran without an observer factory).  Skipped cells carry no
        summary and are excluded from the merge."""
        summaries = [
            cell["summary"]
            for cell in self.cell_telemetry
            if cell["summary"] is not None
        ]
        if not summaries:
            return None
        from ..obs.metrics import merge_summaries

        return merge_summaries(summaries)

    @property
    def skipped(self) -> List[CellOutcome]:
        """Cells that produced no measurement (declared failure under
        ``skip_failures``, worker timeout, or worker crash)."""
        return [o for o in self.cell_outcomes if not o.ok]

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def means(self) -> List[float]:
        return [p.mean for p in self.points]

    def as_rows(self) -> List[Sequence[Any]]:
        return [
            (p.x, round(p.mean, 2), p.minimum, p.maximum)
            for p in self.points
        ]

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form — the byte-identity contract for
        journal resume (``json.dumps`` of this is byte-identical for a
        resumed vs uninterrupted sweep)."""
        return {
            "name": self.name,
            "points": [
                {"x": p.x, "values": p.values} for p in self.points
            ],
            "cell_telemetry": self.cell_telemetry,
            "cell_outcomes": [o.as_dict() for o in self.cell_outcomes],
        }


#: True while cells run on a process pool — summaries must pickle.
#: Set in the parent before forking so children inherit the flag and
#: pickle-check their summaries at the source (a clear error there
#: beats an opaque pipe crash on the way back).
_POOLED = False


def _check_observer(observer: Any) -> None:
    """Fail fast on factories producing unusable observers."""
    if not callable(getattr(observer, "summary", None)):
        raise TelemetryError(
            f"observer_factory produced {type(observer).__name__}, "
            "which has no summary() method — run_sweep telemetry "
            "needs MetricsObserver-style summaries"
        )
    if not hasattr(observer, "on_run_start"):
        raise TelemetryError(
            f"observer_factory produced {type(observer).__name__}, "
            "which lacks the RunObserver callbacks — subclass "
            "repro.obs.RunObserver"
        )


def _cell_summary(observer: Any) -> Dict[str, Any]:
    """Extract and (when pooled) pickle-check an observer's summary."""
    summary = observer.summary()
    if _POOLED:
        try:
            pickle.dumps(summary)
        except Exception as exc:
            raise TelemetryError(
                f"cell telemetry summary from "
                f"{type(observer).__name__} is not picklable and "
                "cannot be merged back from a pool worker: "
                f"{exc}.  Keep summaries plain dicts of JSON-safe "
                "values, or run the sweep with workers=None."
            ) from exc
    return summary


def _attempt(
    x: float,
    effective_seed: int,
    measure: Callable[[float, int], float],
    observer_factory: Optional[Callable[[], Any]],
    backend: str,
) -> Tuple[float, Any]:
    """One measurement attempt; returns ``(value, observer)``.

    ``AlgorithmFailure`` and genuine bugs propagate to the caller —
    retry policy is the caller's business, not the attempt's.

    ``backend`` is the sweep's resolved engine backend, re-attached
    ambiently around the measurement so every ``run_local`` call it
    makes — serial or inside a forked pool worker — uses the same
    engine (the name travels to children as a plain string, never as
    inherited mutable scope state).
    """
    observer = observer_factory() if observer_factory is not None else None
    if observer is not None:
        _check_observer(observer)
    if observer is None:
        with use_backend(backend):
            return float(measure(x, effective_seed)), None
    from ..core.engine import observe_runs

    with use_backend(backend), observe_runs(observer):
        value = float(measure(x, effective_seed))
    return value, observer


def run_sweep(
    name: str,
    xs: Sequence[float],
    measure: Callable[[float, int], float],
    seeds: Sequence[int] = (0, 1, 2),
    skip_failures: bool = False,
    workers: Optional[int] = None,
    observer_factory: Optional[Callable[[], Any]] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    journal: Optional[str] = None,
    backend: Optional[str] = None,
    progress: Optional[Callable[[int, int, Any], None]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 256,
) -> Series:
    """Measure ``measure(x, seed)`` over a grid × seeds.

    ``progress`` is an optional callback fired in the *parent* process
    after every settled cell — ``progress(done, total, outcome)`` with
    the running completed-cell count, the grid size, and the cell's
    :class:`CellOutcome` (``None`` for the batch of journal-replayed
    cells reported once up front).  It is plane-2 telemetry: purely
    informational, never part of the Series, and exceptions it raises
    propagate like any observer's.

    ``backend`` pins the engine backend every cell runs under
    (default: the ambient selection at call time, resolved once so
    pooled workers cannot drift from the parent).  The resolved name is
    part of the journal fingerprint — resuming a journaled sweep under
    a different backend is refused rather than silently mixing engines.

    With ``skip_failures`` (for randomized algorithms with a declared
    failure mode), runs that raise :class:`AlgorithmFailure` are
    excluded from the aggregates — but no longer silently: every
    skipped cell is recorded (x, seed, attempts, exception repr) in
    ``Series.cell_outcomes``.  A point with *no* surviving run still
    raises.  Any other exception (``TypeError``,
    ``ModelViolationError``, ...) is a genuine bug and always
    propagates.

    With ``retries=k``, a cell whose attempt raises
    :class:`AlgorithmFailure` — or, under a pool, whose worker hangs
    past ``timeout`` or dies outright — is re-run up to ``k`` more
    times, each attempt under the deterministic
    :func:`~repro.analysis.resilience.retry_seed` derived from
    ``(seed, attempt)`` (attempt 0 is ``seed`` itself, so ``retries=0``
    reproduces the historical harness bit-for-bit).

    With ``workers=N`` (N > 1), the grid × seed cells are fanned out to
    a fork-based process-per-cell pool.  Determinism contract:
    ``measure`` must be a pure function of ``(x, seed)`` — every cell
    seeds its own RNGs — so the returned :class:`Series` is
    bit-identical to a serial run; cells are reassembled in serial
    order regardless of completion order.  Where ``fork`` is
    unavailable the sweep silently runs serially.  A worker that dies
    without reporting (OOM-kill, hard interpreter abort) fails its own
    cell — recorded as a ``crashed`` outcome after retries — instead of
    taking the sweep down.  ``timeout`` (seconds, pool mode only: a
    serial sweep has no one to kill a hung cell) bounds each cell's
    wall clock; a worker past its deadline is killed and the cell
    requeued or recorded as ``timeout``.

    With ``observer_factory``, each cell runs under a fresh observer
    (attached ambiently via :func:`repro.core.observe_runs`, so every
    ``run_local`` call the measurement makes is covered) and the
    returned Series carries ``cell_telemetry`` in grid order —
    bit-identical whether the cells ran serially or pooled.  On a
    retried cell, the telemetry is the final attempt's.

    With ``journal=path``, completed cells are checkpointed to a JSONL
    file as they finish; re-running the same sweep with the same
    journal replays completed cells from disk and measures only the
    rest, producing a :class:`Series` byte-identical to an
    uninterrupted run (journaled summaries must be JSON-safe).  A
    journal written by a different sweep configuration is refused.

    With ``checkpoint_dir``, each cell additionally snapshots *inside*
    its runs at round boundaries (``checkpoint_every``; see
    :mod:`repro.core.checkpoint`), one ``cell-NNNN`` directory per
    cell.  The two recovery layers compose: re-launching a killed
    sweep with the same ``journal`` and ``checkpoint_dir`` replays
    finished cells from the journal and resumes the cell that was
    in flight from its last round-boundary snapshot instead of round
    0.  The checkpoint configuration is part of the journal
    fingerprint, so a journal cannot be resumed under a different
    snapshot cadence.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    effective_backend = (
        backend if backend is not None else current_backend_name()
    )
    get_backend(effective_backend)  # fail fast on unknown names
    cells = [(x, seed) for x in xs for seed in seeds]
    sweep_journal = None
    if journal is not None:
        sweep_journal = SweepJournal(
            journal,
            {
                "name": name,
                "xs": list(xs),
                "seeds": list(seeds),
                "retries": retries,
                "timeout": timeout,
                "skip_failures": skip_failures,
                "telemetry": observer_factory is not None,
                "cells": len(cells),
                "backend": effective_backend,
                # In-run snapshot cadence (the directory path itself is
                # machine-local and deliberately excluded).
                "checkpoint": checkpoint_dir is not None,
                "checkpoint_every": (
                    checkpoint_every if checkpoint_dir is not None else None
                ),
            },
        )
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    summaries: List[Any] = [None] * len(cells)
    done: Dict[int, Any] = {}
    settled = [0]
    ticker: Optional[Callable[[Any], None]] = None
    if progress is not None:
        total = len(cells)

        def ticker(outcome: Any) -> None:
            settled[0] += 1
            progress(settled[0], total, outcome)

    try:
        if sweep_journal is not None:
            done = dict(sweep_journal.completed)
            for index, (outcome, summary) in done.items():
                outcomes[index] = outcome
                summaries[index] = summary
            if done and progress is not None:
                settled[0] = len(done)
                progress(settled[0], len(cells), None)
        pool_ctx = None
        if workers is not None and workers > 1 and len(cells) > 1:
            import multiprocessing

            try:
                pool_ctx = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork: degrade to serial
                pool_ctx = None
        if pool_ctx is None:
            _run_serial(
                cells,
                measure,
                observer_factory,
                skip_failures,
                retries,
                sweep_journal,
                done,
                outcomes,
                summaries,
                effective_backend,
                ticker,
                checkpoint_dir,
                checkpoint_every,
            )
        else:
            assert workers is not None
            _run_pooled(
                cells,
                measure,
                observer_factory,
                skip_failures,
                retries,
                timeout,
                min(workers, len(cells)),
                pool_ctx,
                sweep_journal,
                done,
                outcomes,
                summaries,
                effective_backend,
                ticker,
                checkpoint_dir,
                checkpoint_every,
            )
    finally:
        if sweep_journal is not None:
            sweep_journal.close()
    series = Series(name)
    series.cell_outcomes = [o for o in outcomes if o is not None]
    per_x = len(seeds)
    for i, x in enumerate(xs):
        chunk = [o for o in outcomes[i * per_x:(i + 1) * per_x] if o]
        values = [o.value for o in chunk if o.ok]
        if not values and chunk:
            detail = "; ".join(
                f"seed={o.seed} [{o.status}] {o.error}" for o in chunk
            )
            raise ValueError(
                f"series {name!r}: every cell at x={x} was skipped "
                f"— {detail}"
            )
        series.add(x, values)
    if observer_factory is not None:
        series.cell_telemetry = [
            {"x": x, "seed": seed, "summary": summaries[index]}
            for index, (x, seed) in enumerate(cells)
        ]
    return series


def _run_serial(
    cells: List[Tuple[float, int]],
    measure: Callable[[float, int], float],
    observer_factory: Optional[Callable[[], Any]],
    skip_failures: bool,
    retries: int,
    sweep_journal: Optional[SweepJournal],
    done: Dict[int, Any],
    outcomes: List[Optional[CellOutcome]],
    summaries: List[Any],
    backend: str,
    ticker: Optional[Callable[[Any], None]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 256,
) -> None:
    """Evaluate cells inline, in grid order, with bounded retries."""
    from .resilience import _run_cell

    for index, (x, seed) in enumerate(cells):
        if index in done:
            continue
        attempt = 0
        while True:
            effective = retry_seed(seed, attempt)
            try:
                value, observer = _run_cell(
                    lambda i, a: _attempt(
                        x, effective, measure, observer_factory, backend
                    ),
                    index,
                    attempt,
                    checkpoint_dir,
                    checkpoint_every,
                )
            except AlgorithmFailure as exc:
                if attempt < retries:
                    attempt += 1
                    continue
                if not skip_failures:
                    raise
                outcomes[index] = CellOutcome(
                    x, seed, "failed", None, attempt + 1, effective,
                    repr(exc),
                )
                break
            summaries[index] = (
                _cell_summary(observer) if observer is not None else None
            )
            outcomes[index] = CellOutcome(
                x, seed, "ok", value, attempt + 1, effective
            )
            break
        if sweep_journal is not None:
            assert outcomes[index] is not None
            sweep_journal.record(index, outcomes[index], summaries[index])
        if ticker is not None:
            ticker(outcomes[index])


def _run_pooled(
    cells: List[Tuple[float, int]],
    measure: Callable[[float, int], float],
    observer_factory: Optional[Callable[[], Any]],
    skip_failures: bool,
    retries: int,
    timeout: Optional[float],
    workers: int,
    pool_ctx: Any,
    sweep_journal: Optional[SweepJournal],
    done: Dict[int, Any],
    outcomes: List[Optional[CellOutcome]],
    summaries: List[Any],
    backend: str,
    ticker: Optional[Callable[[Any], None]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 256,
) -> None:
    """Fan cells out to the resilient process-per-cell fork pool."""
    from .resilience import run_cells_resilient

    def child_payload(index: int, attempt: int) -> Tuple[Any, ...]:
        # Runs in a forked child; ships a picklable verdict, never an
        # uncaught exception (an unreported death is a "crashed" cell).
        x, seed = cells[index]
        try:
            try:
                value, observer = _attempt(
                    x,
                    retry_seed(seed, attempt),
                    measure,
                    observer_factory,
                    backend,
                )
            except AlgorithmFailure as exc:
                # Declared failures cross the pipe as strings — fault
                # plans and run metadata hanging off the exception may
                # not pickle, and the parent only needs the message.
                return ("failed", str(exc), repr(exc))
            summary = (
                _cell_summary(observer) if observer is not None else None
            )
            return ("ok", value, summary)
        except Exception as exc:  # genuine bug: propagate to the parent
            try:
                pickle.dumps(exc)
                return ("error", exc)
            except Exception:
                return ("error_repr", repr(exc))

    def classify(status: str, payload: Any) -> bool:
        if status != "done":  # hung (timeout) or dead (crashed) worker
            return True
        kind = payload[0]
        if kind == "ok":
            return False
        if kind == "failed":
            return True
        if kind == "error":
            raise payload[1]
        raise RuntimeError(
            "sweep worker raised an exception that could not cross "
            f"the process boundary: {payload[1]}"
        )

    def on_result(
        index: int, status: str, payload: Any, attempts: int
    ) -> None:
        x, seed = cells[index]
        effective = retry_seed(seed, attempts - 1)
        summary = None
        if status == "timeout":
            outcome = CellOutcome(
                x, seed, "timeout", None, attempts, effective,
                f"worker killed after exceeding the {timeout}s "
                "per-cell deadline",
            )
        elif status == "crashed":
            outcome = CellOutcome(
                x, seed, "crashed", None, attempts, effective,
                "worker process died without reporting a result",
            )
        elif payload[0] == "ok":
            outcome = CellOutcome(
                x, seed, "ok", payload[1], attempts, effective
            )
            summary = payload[2]
        else:  # ("failed", message, repr)
            if not skip_failures:
                raise AlgorithmFailure(payload[1])
            outcome = CellOutcome(
                x, seed, "failed", None, attempts, effective, payload[2]
            )
        outcomes[index] = outcome
        summaries[index] = summary
        if sweep_journal is not None:
            sweep_journal.record(index, outcome, summary)
        if ticker is not None:
            ticker(outcome)

    global _POOLED
    previous_pooled = _POOLED
    _POOLED = True
    try:
        run_cells_resilient(
            pool_ctx,
            len(cells),
            child_payload,
            classify,
            workers=workers,
            retries=retries,
            timeout=timeout,
            skip=done,
            on_result=on_result,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
    finally:
        _POOLED = previous_pooled


@dataclass
class ExperimentRecord:
    """A finished experiment: series plus free-form annotations.

    ``checks`` holds named boolean outcomes (e.g. "all outputs verified
    by the LCL checker", "every measurement respects the Theorem 4
    bound") so bench output states its own validity.
    """

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Named metric summaries (``MetricsObserver.summary()`` shape),
    #: e.g. one merged summary per sweep; rendered as its own section.
    telemetry: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def add_series(self, series: Series) -> None:
        self.series.append(series)
        merged = series.telemetry()
        if merged is not None:
            self.add_telemetry(series.name, merged)

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = bool(ok)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def add_telemetry(self, name: str, summary: Dict[str, Any]) -> None:
        self.telemetry[name] = summary

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form (see :meth:`Series.as_dict`)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": [s.as_dict() for s in self.series],
            "checks": self.checks,
            "notes": self.notes,
            "telemetry": self.telemetry,
        }

    def render(self) -> str:
        from .tables import render_table

        lines = [f"== {self.experiment_id}: {self.title} =="]
        for series in self.series:
            lines.append(f"-- {series.name}")
            lines.append(
                render_table(
                    ["x", "mean", "min", "max"], series.as_rows()
                )
            )
            skipped = series.skipped
            if skipped:
                lines.append(
                    f"warning: {len(skipped)} cell(s) excluded from "
                    f"{series.name!r} aggregates:"
                )
                for outcome in skipped:
                    lines.append(
                        f"  x={outcome.x} seed={outcome.seed} "
                        f"[{outcome.status}] after "
                        f"{outcome.attempts} attempt(s): {outcome.error}"
                    )
        for name, summary in self.telemetry.items():
            lines.append(f"-- telemetry: {name}")
            rows = []
            for metric, snap in summary.get("metrics", {}).items():
                if snap["type"] in ("counter", "gauge"):
                    rows.append([metric, snap["type"], snap["value"]])
                else:
                    mean = snap["mean"]
                    rows.append(
                        [
                            metric,
                            "histogram",
                            f"mean={mean:.3g} max={snap['max']}"
                            if mean is not None
                            else "empty",
                        ]
                    )
            lines.append(
                render_table(["metric", "type", "value"], rows)
            )
        for name, ok in self.checks.items():
            lines.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

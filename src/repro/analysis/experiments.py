"""Experiment harness: parameter sweeps with seeds and aggregation.

Benchmarks and examples share this machinery: a :class:`Sweep` runs a
measurement function over a parameter grid with several seeds, collects
:class:`Series` of (x, mean, min, max), and renders them through
:mod:`repro.analysis.tables`.  Keeping it here (rather than in each
bench file) makes every experiment's shape identical: generate → run →
verify → record.

Telemetry: ``run_sweep(observer_factory=...)`` attaches a fresh
observer (see :mod:`repro.obs`) around each cell's measurement and
collects its ``summary()`` dict.  Summaries ride back from forked pool
workers as pickled plain dicts and are reassembled in grid order, so
the per-cell telemetry — like the values themselves — is bit-identical
to a serial run.  A summary that cannot be pickled raises
:class:`~repro.core.errors.TelemetryError` inside the worker with a
clear message instead of a bare pool crash.
"""

from __future__ import annotations

import pickle
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import AlgorithmFailure, TelemetryError


@dataclass
class Point:
    """One aggregated measurement."""

    x: float
    values: List[float]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)


@dataclass
class Series:
    """A named sequence of aggregated measurements."""

    name: str
    points: List[Point] = field(default_factory=list)
    #: Per-cell metric summaries in grid order (x-major, then seed),
    #: populated when ``run_sweep`` ran with an ``observer_factory``.
    #: Each entry is ``{"x": ..., "seed": ..., "summary": {...}}``.
    cell_telemetry: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, x: float, values: Iterable[float]) -> None:
        values = list(values)
        if not values:
            raise ValueError(f"series {self.name!r}: empty sample at x={x}")
        self.points.append(Point(x, values))

    def telemetry(self) -> Optional[Dict[str, Any]]:
        """All cell summaries merged deterministically (None if the
        sweep ran without an observer factory)."""
        if not self.cell_telemetry:
            return None
        from ..obs.metrics import merge_summaries

        return merge_summaries(
            [cell["summary"] for cell in self.cell_telemetry]
        )

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def means(self) -> List[float]:
        return [p.mean for p in self.points]

    def as_rows(self) -> List[Sequence[Any]]:
        return [
            (p.x, round(p.mean, 2), p.minimum, p.maximum)
            for p in self.points
        ]


#: Sentinel used by pool workers to report a declared failure without
#: pickling the exception traceback across the process boundary.
_FAILED = "__algorithm_failure__"

#: The measurement callable a forked pool worker should run.  Set in
#: the parent immediately before the pool is created; fork-children
#: inherit it, which lets ``run_sweep`` parallelize arbitrary closures
#: (bench measures are rarely picklable).
_WORKER_MEASURE: Optional[Callable[[float, int], float]] = None

#: Per-cell observer factory, inherited by fork-children like
#: ``_WORKER_MEASURE``.  ``None`` disables telemetry collection.
_WORKER_OBSERVER_FACTORY: Optional[Callable[[], Any]] = None

#: True while cells run on a process pool — summaries must pickle.
_POOLED = False


def _check_observer(observer: Any) -> None:
    """Fail fast on factories producing unusable observers."""
    if not callable(getattr(observer, "summary", None)):
        raise TelemetryError(
            f"observer_factory produced {type(observer).__name__}, "
            "which has no summary() method — run_sweep telemetry "
            "needs MetricsObserver-style summaries"
        )
    if not hasattr(observer, "on_run_start"):
        raise TelemetryError(
            f"observer_factory produced {type(observer).__name__}, "
            "which lacks the RunObserver callbacks — subclass "
            "repro.obs.RunObserver"
        )


def _cell_summary(observer: Any) -> Dict[str, Any]:
    """Extract and (when pooled) pickle-check an observer's summary."""
    summary = observer.summary()
    if _POOLED:
        try:
            pickle.dumps(summary)
        except Exception as exc:
            raise TelemetryError(
                f"cell telemetry summary from "
                f"{type(observer).__name__} is not picklable and "
                "cannot be merged back from a pool worker: "
                f"{exc}.  Keep summaries plain dicts of JSON-safe "
                "values, or run the sweep with workers=None."
            ) from exc
    return summary


def _measure_cell(
    cell: Tuple[float, int, bool],
) -> Tuple[str, float, str, Optional[Dict[str, Any]]]:
    """Run one (x, seed) cell in a pool worker (or inline)."""
    x, seed, skip_failures = cell
    assert _WORKER_MEASURE is not None
    factory = _WORKER_OBSERVER_FACTORY
    observer = factory() if factory is not None else None
    if observer is not None:
        _check_observer(observer)
    try:
        if observer is None:
            value = float(_WORKER_MEASURE(x, seed))
        else:
            from ..core.engine import observe_runs

            with observe_runs(observer):
                value = float(_WORKER_MEASURE(x, seed))
    except AlgorithmFailure as exc:
        if skip_failures:
            summary = (
                _cell_summary(observer) if observer is not None else None
            )
            return (_FAILED, 0.0, str(exc), summary)
        raise
    summary = _cell_summary(observer) if observer is not None else None
    return ("ok", value, "", summary)


def run_sweep(
    name: str,
    xs: Sequence[float],
    measure: Callable[[float, int], float],
    seeds: Sequence[int] = (0, 1, 2),
    skip_failures: bool = False,
    workers: Optional[int] = None,
    observer_factory: Optional[Callable[[], Any]] = None,
) -> Series:
    """Measure ``measure(x, seed)`` over a grid × seeds.

    With ``skip_failures`` (for randomized algorithms with a declared
    failure mode), runs that raise :class:`AlgorithmFailure` are
    dropped; a point with *no* surviving run still raises.  Any other
    exception (``TypeError``, ``ModelViolationError``, ...) is a genuine
    bug and always propagates.

    With ``workers=N`` (N > 1), the grid × seed cells are fanned out to
    a process pool.  Determinism contract: ``measure`` must be a pure
    function of ``(x, seed)`` — every cell seeds its own RNGs — so the
    returned :class:`Series` is bit-identical to a serial run; cells are
    reassembled in serial order regardless of completion order.  The
    pool uses the ``fork`` start method (closures need no pickling);
    where ``fork`` is unavailable the sweep silently runs serially.

    With ``observer_factory``, each cell runs under a fresh observer
    (attached ambiently via :func:`repro.core.observe_runs`, so every
    ``run_local`` call the measurement makes is covered) and the
    returned Series carries ``cell_telemetry`` in grid order —
    bit-identical whether the cells ran serially or pooled.
    """
    cells = [(x, seed, skip_failures) for x in xs for seed in seeds]
    outcomes = _run_cells(cells, measure, workers, observer_factory)
    series = Series(name)
    per_x = len(seeds)
    for i, x in enumerate(xs):
        chunk = outcomes[i * per_x:(i + 1) * per_x]
        series.add(
            x, [value for tag, value, _, _ in chunk if tag == "ok"]
        )
    if observer_factory is not None:
        series.cell_telemetry = [
            {"x": x, "seed": seed, "summary": summary}
            for (x, seed, _), (_, _, _, summary) in zip(cells, outcomes)
        ]
    return series


def _run_cells(
    cells: List[Tuple[float, int, bool]],
    measure: Callable[[float, int], float],
    workers: Optional[int],
    observer_factory: Optional[Callable[[], Any]] = None,
) -> List[Tuple[str, float, str, Optional[Dict[str, Any]]]]:
    """Evaluate cells serially or on a fork pool, in cell order."""
    global _WORKER_MEASURE, _WORKER_OBSERVER_FACTORY, _POOLED
    pool_ctx = None
    if workers is not None and workers > 1 and len(cells) > 1:
        import multiprocessing

        try:
            pool_ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: degrade to serial
            pool_ctx = None
    previous = _WORKER_MEASURE
    previous_factory = _WORKER_OBSERVER_FACTORY
    previous_pooled = _POOLED
    _WORKER_MEASURE = measure
    _WORKER_OBSERVER_FACTORY = observer_factory
    # Set before the pool forks so children inherit the flag and
    # pickle-check their summaries at the source (clear error there
    # beats an opaque pool crash on the way back).
    _POOLED = pool_ctx is not None
    try:
        if pool_ctx is None:
            return [_measure_cell(cell) for cell in cells]
        assert workers is not None
        with pool_ctx.Pool(processes=min(workers, len(cells))) as pool:
            return pool.map(_measure_cell, cells)
    finally:
        _WORKER_MEASURE = previous
        _WORKER_OBSERVER_FACTORY = previous_factory
        _POOLED = previous_pooled


@dataclass
class ExperimentRecord:
    """A finished experiment: series plus free-form annotations.

    ``checks`` holds named boolean outcomes (e.g. "all outputs verified
    by the LCL checker", "every measurement respects the Theorem 4
    bound") so bench output states its own validity.
    """

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Named metric summaries (``MetricsObserver.summary()`` shape),
    #: e.g. one merged summary per sweep; rendered as its own section.
    telemetry: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def add_series(self, series: Series) -> None:
        self.series.append(series)
        merged = series.telemetry()
        if merged is not None:
            self.add_telemetry(series.name, merged)

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = bool(ok)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def add_telemetry(self, name: str, summary: Dict[str, Any]) -> None:
        self.telemetry[name] = summary

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        from .tables import render_table

        lines = [f"== {self.experiment_id}: {self.title} =="]
        for series in self.series:
            lines.append(f"-- {series.name}")
            lines.append(
                render_table(
                    ["x", "mean", "min", "max"], series.as_rows()
                )
            )
        for name, summary in self.telemetry.items():
            lines.append(f"-- telemetry: {name}")
            rows = []
            for metric, snap in summary.get("metrics", {}).items():
                if snap["type"] in ("counter", "gauge"):
                    rows.append([metric, snap["type"], snap["value"]])
                else:
                    mean = snap["mean"]
                    rows.append(
                        [
                            metric,
                            "histogram",
                            f"mean={mean:.3g} max={snap['max']}"
                            if mean is not None
                            else "empty",
                        ]
                    )
            lines.append(
                render_table(["metric", "type", "value"], rows)
            )
        for name, ok in self.checks.items():
            lines.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

"""Small math helpers used throughout: log*, log_Δ, and friends."""

from __future__ import annotations

import math


def log_star(x: float, base: float = 2.0) -> int:
    """The iterated logarithm log* x: how many times log must be
    applied before the value drops to <= 1."""
    if x <= 1:
        return 0
    count = 0
    while x > 1:
        x = math.log(x, base)
        count += 1
        if count > 1_000:
            raise ValueError("log* did not converge (base <= 1?)")
    return count


def log_base(x: float, base: float) -> float:
    """log_base(x), guarded: base is clamped to >= 2 so that log_Δ with
    Δ < 2 stays finite (the convention used in round bounds)."""
    return math.log(max(x, 1.0)) / math.log(max(base, 2.0))


def log_delta(x: float, delta: int) -> float:
    """``log_Δ x`` with the Δ >= 2 clamp."""
    return log_base(x, float(delta))


def log_log(x: float) -> float:
    """``log log x`` (base 2), 0 for small x."""
    if x <= 2:
        return 0.0
    return math.log2(math.log2(x))


def ceil_log2(x: int) -> int:
    """Smallest k with 2^k >= x (0 for x <= 1)."""
    if x <= 1:
        return 0
    return (x - 1).bit_length()

"""Resilience machinery for :func:`repro.analysis.run_sweep`.

Three pieces live here, all deliberately independent of what a sweep
cell *measures*:

- :func:`retry_seed` — deterministic re-seeding for bounded retries.
  Attempt 0 uses the cell's own seed (so a sweep with ``retries=0`` is
  bit-identical to the historical harness); attempt ``k > 0`` derives a
  fresh 63-bit seed from ``(seed, k)`` through the same splitmix64-style
  mix the fault adversaries use, so a retried cell re-runs with an
  independent random stream instead of deterministically re-failing.

- :class:`SweepJournal` — a JSONL checkpoint of completed cells.  The
  first line is a fingerprint header (dumped with ``sort_keys`` so it is
  canonical); each subsequent line records one completed cell, dumped
  *without* ``sort_keys`` so dict insertion order survives the
  round-trip and a resumed sweep can rebuild byte-identical outcome and
  telemetry dicts.  A partially written trailing line (the process died
  mid-``write``) is ignored on replay.  Journaled summaries must be
  JSON-safe (string keys, no tuples) — the journal refuses values that
  do not survive a JSON round-trip rather than silently corrupting the
  resume contract.

- :func:`run_cells_resilient` — a process-per-cell fork scheduler that
  survives worker crash-stop (a SIGKILLed worker fails its cell, not
  the sweep), enforces per-cell wall-clock deadlines by killing and
  requeueing hung workers, and requeues retryable cells with bumped
  attempt numbers.  The parent waits on the result pipes with
  :func:`multiprocessing.connection.wait` using deadline-derived
  timeouts — there is no fixed polling interval to inflate latency.

:class:`CellOutcome` is the per-cell audit record the sweep attaches to
its :class:`~repro.analysis.experiments.Series` — including skipped
cells, which the historical harness dropped silently.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from ..core.atomicio import fsync_stream
from ..core.errors import TelemetryError

__all__ = [
    "CellOutcome",
    "JOURNAL_SCHEMA",
    "JOURNAL_VERSION",
    "SweepJournal",
    "retry_seed",
    "run_cells_resilient",
]

_MASK = 0xFFFFFFFFFFFFFFFF
_RETRY_STREAM = 0xA5EED5EED5EED5EE


def retry_seed(seed: int, attempt: int) -> int:
    """The seed for retry ``attempt`` of a cell seeded with ``seed``.

    Attempt 0 is the cell's own seed — a ``retries=0`` sweep is
    bit-identical to one run on the pre-resilience harness.  Later
    attempts hash ``(seed, attempt)`` into an independent 63-bit seed
    (non-negative, so it is valid for ``random.Random`` and JSON-safe),
    recorded in the cell's outcome for replay.
    """
    if attempt == 0:
        return seed
    from ..faults.runtime import mix64

    return mix64(_RETRY_STREAM, seed, attempt) >> 1


#: Terminal cell statuses.  ``ok`` carries a value; everything else is
#: a skipped cell (visible through ``Series.skipped``).
CELL_STATUSES = ("ok", "failed", "timeout", "crashed")


@dataclass
class CellOutcome:
    """The audit record for one sweep cell (final attempt).

    ``status`` is one of :data:`CELL_STATUSES`: ``ok`` (measured),
    ``failed`` (declared :class:`AlgorithmFailure` after all retries,
    recorded under ``skip_failures``), ``timeout`` (worker exceeded the
    per-cell deadline and was killed), or ``crashed`` (worker died
    without reporting — e.g. SIGKILL or a hard interpreter abort).
    ``attempts`` counts attempts actually made; ``effective_seed`` is
    :func:`retry_seed` of the final attempt.  ``error`` holds the repr
    of the declared failure (or a scheduler message) for non-ok cells.
    """

    x: float
    seed: int
    status: str
    value: Optional[float] = None
    attempts: int = 1
    effective_seed: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "x": self.x,
            "seed": self.seed,
            "status": self.status,
            "value": self.value,
            "attempts": self.attempts,
            "effective_seed": self.effective_seed,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellOutcome":
        return cls(
            x=data["x"],
            seed=data["seed"],
            # Interned so a journal-replayed outcome is
            # indistinguishable — down to pickle bytes — from the
            # freshly computed one it replaces.
            status=sys.intern(data["status"]),
            value=data["value"],
            attempts=data["attempts"],
            effective_seed=data["effective_seed"],
            error=data["error"],
        )


JOURNAL_SCHEMA = "repro.analysis.journal"
JOURNAL_VERSION = 1


class SweepJournal:
    """JSONL checkpoint journal for one sweep invocation.

    Line 1 is the header: schema, version, and the sweep fingerprint
    (name, grid, seeds, retry/timeout policy, cell count), dumped with
    ``sort_keys`` so the header is canonical.  Every completed cell
    appends ``{"cell": index, "outcome": {...}, "summary": ...}``
    dumped *without* ``sort_keys`` — JSON objects preserve insertion
    order, Python floats round-trip exactly, so a resumed sweep
    reassembles dicts byte-identical (under pickle) to the uninterrupted
    run's.  Reopening with a different fingerprint is an error, not a
    silent partial replay.
    """

    def __init__(self, path: str, fingerprint: Dict[str, Any]):
        self.path = str(path)
        self.fingerprint = json.loads(
            json.dumps(fingerprint, sort_keys=True)
        )
        #: Completed cells replayed from disk: index -> (outcome, summary).
        self.completed: Dict[int, Tuple[CellOutcome, Any]] = {}
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            self._replay()
            self._file = open(self.path, "a", encoding="utf-8")
        else:
            self._file = open(self.path, "w", encoding="utf-8")
            header = {
                "schema": JOURNAL_SCHEMA,
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint,
            }
            self._file.write(json.dumps(header, sort_keys=True) + "\n")
            fsync_stream(self._file)

    def _replay(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except ValueError as exc:
            raise ValueError(
                f"sweep journal {self.path!r} has an unreadable header "
                f"line: {exc}"
            ) from exc
        if (
            header.get("schema") != JOURNAL_SCHEMA
            or header.get("version") != JOURNAL_VERSION
        ):
            raise ValueError(
                f"sweep journal {self.path!r} is not a "
                f"{JOURNAL_SCHEMA} v{JOURNAL_VERSION} file "
                f"(header: {lines[0][:120]})"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise ValueError(
                f"sweep journal {self.path!r} was written by a "
                "different sweep configuration — refusing to resume "
                f"(journal fingerprint {header.get('fingerprint')!r} "
                f"!= current {self.fingerprint!r})"
            )
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                # Torn trailing write from an interrupted run: that
                # cell simply re-runs.
                continue
            self.completed[int(entry["cell"])] = (
                CellOutcome.from_dict(entry["outcome"]),
                entry["summary"],
            )

    def record(
        self, index: int, outcome: CellOutcome, summary: Any
    ) -> None:
        """Append one completed cell and flush it to disk."""
        entry = {
            "cell": index,
            "outcome": outcome.as_dict(),
            "summary": summary,
        }
        try:
            line = json.dumps(entry)
        except (TypeError, ValueError) as exc:
            raise TelemetryError(
                f"cell {index} cannot be journaled: {exc}.  Journaled "
                "sweeps need JSON-safe telemetry summaries (string "
                "keys, no tuples/sets) — or drop the journal."
            ) from exc
        if json.loads(line)["summary"] != summary:
            raise TelemetryError(
                f"cell {index} telemetry does not survive a JSON "
                "round-trip (non-string keys?) — a resumed sweep could "
                "not rebuild it byte-identically.  Keep journaled "
                "summaries JSON-safe, or drop the journal."
            )
        self._file.write(line + "\n")
        # Through the OS cache, not just the libc buffer: a SIGKILL'd
        # sweep may then tear at most the trailing line, which _replay
        # already tolerates.
        fsync_stream(self._file)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def run_cells_resilient(
    mp_context: Any,
    count: int,
    child_payload: Callable[[int, int], Any],
    classify: Callable[[str, Any], bool],
    workers: int,
    retries: int,
    timeout: Optional[float],
    skip: Optional[Dict[int, Any]] = None,
    on_result: Optional[Callable[[int, str, Any, int], None]] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 256,
) -> List[Optional[Tuple[str, Any, int]]]:
    """Run ``count`` cells on a process-per-cell fork pool.

    ``child_payload(index, attempt)`` runs in a forked child and must
    return a picklable payload without raising (convert exceptions to
    payloads; a child that *does* die unreported is a ``crashed`` cell,
    which is exactly the pathology this scheduler absorbs).  The parent
    calls ``classify(status, payload)`` on every completion — status is
    ``done``/``timeout``/``crashed`` — and a True return requeues the
    cell (until ``retries`` is exhausted) with the attempt counter
    bumped; ``classify`` may raise to abort the sweep, in which case
    every in-flight worker is killed before the exception propagates.
    ``on_result(index, status, payload, attempts_made)`` fires as each
    cell settles terminally (in completion order — checkpoint journals
    hook in here); it too may raise to abort.

    With ``checkpoint_dir``, each cell runs inside an ambient
    :func:`repro.core.checkpoint.checkpointing` scope rooted at
    ``checkpoint_dir/cell-NNNN`` with ``resume=True``: every
    ``run_local`` the payload makes snapshots at round boundaries, and
    a cell whose previous incarnation died mid-run (a killed sweep
    re-launched with the same directory, or a timed-out worker whose
    payload re-derives the same run) resumes from its last snapshot
    instead of round 0.  Snapshots are fingerprinted by run identity —
    a retry whose payload derives a *different* seed (see
    :func:`retry_seed`) starts fresh rather than resuming into the
    wrong run.

    Returns, per cell index, ``(status, payload, attempts_made)`` —
    or ``None`` for indices listed in ``skip`` (already completed,
    e.g. replayed from a journal).  Cells launch in index order, so a
    deterministic ``child_payload`` yields results independent of
    completion order; at most ``workers`` children run at once, and a
    child past its deadline is killed (SIGKILL) and classified as
    ``timeout``.
    """
    import multiprocessing.connection as mp_connection

    results: List[Optional[Tuple[str, Any, int]]] = [None] * count
    pending = deque(
        (index, 0)
        for index in range(count)
        if skip is None or index not in skip
    )
    # conn -> (index, attempt, process, deadline)
    active: Dict[Any, Tuple[int, int, Any, Optional[float]]] = {}

    def settle(status: str, payload: Any, index: int, attempt: int) -> None:
        if classify(status, payload) and attempt < retries:
            pending.append((index, attempt + 1))
        else:
            results[index] = (status, payload, attempt + 1)
            if on_result is not None:
                on_result(index, status, payload, attempt + 1)

    try:
        while pending or active:
            while pending and len(active) < workers:
                index, attempt = pending.popleft()
                recv_end, send_end = mp_context.Pipe(duplex=False)
                proc = mp_context.Process(
                    target=_child_entry,
                    args=(
                        send_end,
                        child_payload,
                        index,
                        attempt,
                        checkpoint_dir,
                        checkpoint_every,
                    ),
                )
                proc.start()
                # Close the parent's copy of the write end: a child
                # that dies without sending then yields EOF instead of
                # a pipe that never becomes ready.
                send_end.close()
                deadline = (
                    time.monotonic() + timeout
                    if timeout is not None
                    else None
                )
                active[recv_end] = (index, attempt, proc, deadline)
            wait_for = None
            if timeout is not None:
                now = time.monotonic()
                wait_for = max(
                    0.0,
                    min(
                        deadline
                        for (_, _, _, deadline) in active.values()
                        if deadline is not None
                    )
                    - now,
                )
            ready = mp_connection.wait(list(active), timeout=wait_for)
            for conn in ready:
                index, attempt, proc, _ = active.pop(conn)
                try:
                    payload = conn.recv()
                    status = "done"
                except EOFError:
                    payload = None
                    status = "crashed"
                conn.close()
                proc.join()
                settle(status, payload, index, attempt)
            if timeout is not None:
                now = time.monotonic()
                for conn in list(active):
                    index, attempt, proc, deadline = active[conn]
                    if deadline is not None and now >= deadline:
                        del active[conn]
                        proc.kill()
                        proc.join()
                        conn.close()
                        settle("timeout", None, index, attempt)
    finally:
        for conn, (_, _, proc, _) in active.items():
            proc.kill()
            proc.join()
            conn.close()
    return results


def _run_cell(
    child_payload: Callable[[int, int], Any],
    index: int,
    attempt: int,
    checkpoint_dir: Optional[str],
    checkpoint_every: int,
) -> Any:
    """Evaluate one cell, under an in-run checkpoint scope when asked.

    Shared by the forked pool child and the serial sweep path so both
    recover identically.  ``resume=True`` is safe on a first attempt:
    an empty cell directory simply starts fresh, and stale snapshots
    from a *different* run identity are rejected by fingerprint."""
    if checkpoint_dir is None:
        return child_payload(index, attempt)
    from ..core.checkpoint import checkpointing

    cell_dir = os.path.join(checkpoint_dir, f"cell-{index:04d}")
    with checkpointing(
        cell_dir, every_rounds=checkpoint_every, resume=True
    ):
        return child_payload(index, attempt)


def _child_entry(
    conn: Any,
    child_payload: Callable[[int, int], Any],
    index: int,
    attempt: int,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 256,
) -> None:
    """Forked child bootstrap: evaluate the cell, ship the payload."""
    try:
        payload = _run_cell(
            child_payload, index, attempt, checkpoint_dir, checkpoint_every
        )
    except BaseException as exc:  # defensive: child_payload should not raise
        payload = ("error_repr", repr(exc))
    try:
        conn.send(payload)
    except Exception as exc:
        # Unpicklable payload despite the contract — report *something*
        # rather than presenting as a crash.
        try:
            conn.send(("error_repr", f"unpicklable cell payload: {exc!r}"))
        except Exception:
            pass
    finally:
        conn.close()

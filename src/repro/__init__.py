"""repro — a reproduction of Chang, Kopelowitz & Pettie (2016),
*An Exponential Separation Between Randomized and Deterministic
Complexity in the LOCAL Model*.

The package is a complete LOCAL-model laboratory:

- :mod:`repro.core` — the synchronous DetLOCAL/RandLOCAL engine;
- :mod:`repro.graphs` — port-numbered graphs, generators (trees,
  high-girth regular graphs, ...), edge colorings;
- :mod:`repro.lcl` — locally checkable labelings and their verifiers;
- :mod:`repro.algorithms` — Linial coloring, Barenboim–Elkin tree
  coloring (Thm 9), the paper's randomized Δ-coloring algorithms
  (Thms 10 and 11), MIS, matching, sinkless orientation;
- :mod:`repro.transforms` — Theorem 3 derandomization, Theorem 5's
  det→rand reduction, Theorems 6/8 speedup, graph shattering;
- :mod:`repro.lowerbounds` — bound calculators, the verified 0-round
  base case, round-elimination arithmetic, indistinguishability;
- :mod:`repro.analysis` — sweeps, growth fitting, tables;
- :mod:`repro.verify` — metamorphic relations, per-ball LCL
  certificates, and the seeded property-based verification sweep.

Quickstart::

    import random
    from repro import graphs, algorithms, lcl

    rng = random.Random(0)
    tree = graphs.generators.random_tree_bounded_degree(2000, 16, rng)
    report = algorithms.pettie_su_tree_coloring(tree, seed=1)
    lcl.KColoring(tree.max_degree).check(tree, report.labeling)
    print(report.rounds, "rounds")
"""

from . import (
    algorithms,
    analysis,
    core,
    graphs,
    lcl,
    lowerbounds,
    transforms,
    verify,
)
from .core import Model, RunResult, run_local

__version__ = "1.0.0"

__all__ = [
    "Model",
    "RunResult",
    "algorithms",
    "analysis",
    "core",
    "graphs",
    "lcl",
    "lowerbounds",
    "run_local",
    "transforms",
    "verify",
    "__version__",
]

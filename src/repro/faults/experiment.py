"""E6F — empirical failure rate of Theorem 10 under injected faults.

Theorem 10's guarantee is conditional: a RandLOCAL algorithm may fail
with probability at most 1/n, *assuming the network delivers every
message faithfully*.  This experiment measures what happens when it
does not.  For each injected fault rate p we run the randomized
Δ-coloring driver on a fixed Δ-regular tree under a seeded
:class:`~repro.faults.FaultPlan` (message drops by default; crash-stop
and payload corruption variants via ``kind``) and record the fraction
of runs that terminate with a coloring the :class:`KColoring` checker
accepts.  At p = 0 the success rate matches the paper's 1 - 1/n claim
(with trials ≪ n, every run should succeed); as p grows the success
probability collapses — the separation results live strictly inside
the fault-free LOCAL model.

A run "fails" when it declares :class:`AlgorithmFailure`, exhausts the
injected round budget, crashes a node, or produces an invalid coloring;
all are one outcome here — the adversary won.  The sweep runs on the
resilient harness (:func:`repro.analysis.run_sweep`), so the CLI's
``--workers``/``--retries``/``--journal`` flags apply to this
experiment like any other.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from ..analysis import ExperimentRecord, Series, run_sweep
from ..core.errors import (
    AlgorithmFailure,
    SimulationError,
    VerificationError,
)
from ..obs import MetricsObserver
from .plan import FaultPlan

#: Fault kinds the experiment can inject, mapped to plan builders.
KINDS = ("drop", "crash", "corrupt")

EXPERIMENT_ID = "E6F"


def _garble(payload: Any) -> Any:
    """Default payload corruption: replace the message with a value no
    honest vertex ever publishes in the coloring drivers."""
    return ("corrupted",)


def build_plan(
    kind: str, rate: float, seed: int, round_budget: Optional[int]
) -> FaultPlan:
    """The per-cell fault plan for one experiment run."""
    if kind == "drop":
        return FaultPlan(
            seed=seed, drop_rate=rate, round_budget=round_budget
        )
    if kind == "crash":
        return FaultPlan(
            seed=seed,
            crash_rate=rate,
            crash_round=1,
            round_budget=round_budget,
        )
    if kind == "corrupt":
        return FaultPlan(
            seed=seed,
            corrupt_rate=rate,
            corrupt=_garble,
            round_budget=round_budget,
        )
    raise ValueError(f"unknown fault kind {kind!r}; choose from {KINDS}")


def make_measure(
    tree: Any,
    kind: str,
    round_budget: Optional[int],
    max_rounds: int = 100_000,
) -> Callable[[float, int], float]:
    """A ``run_sweep`` measure: 1.0 if the faulted run produced a
    verified Δ-coloring, 0.0 if the adversary won."""
    from ..algorithms import pettie_su_tree_coloring
    from ..core.engine import inject_faults
    from ..lcl import KColoring

    checker = KColoring(tree.max_degree)

    def measure(rate: float, seed: int) -> float:
        plan = build_plan(kind, rate, seed, round_budget)
        try:
            with inject_faults(plan):
                report = pettie_su_tree_coloring(
                    tree, seed=seed, max_rounds=max_rounds
                )
            checker.check(tree, report.labeling)
        except (AlgorithmFailure, SimulationError, VerificationError):
            # Declared failure, exhausted round budget, a node-level
            # model violation, or an invalid coloring: the injected
            # adversary defeated the run.
            return 0.0
        except Exception:
            # Node code choking on a dropped/garbled payload (e.g. a
            # TypeError on a None message) is also an adversary win —
            # but only under injected faults.  The fault-free control
            # keeps propagating genuine bugs.
            if rate == 0.0:
                raise
            return 0.0
        return 1.0

    return measure


def _cell_fault_count(summary: Optional[Dict[str, Any]]) -> float:
    if not summary:
        return 0.0
    snap = summary.get("metrics", {}).get("faults_total")
    return float(snap["value"]) if snap else 0.0


def failure_rate_experiment(
    n: int = 10_000,
    delta: int = 9,
    rates: Sequence[float] = (0.0, 0.001, 0.01, 0.05),
    trials: int = 10,
    kind: str = "drop",
    round_budget: Optional[int] = 4096,
    workers: Optional[int] = None,
    retries: int = 0,
    journal: Optional[str] = None,
    record: Optional[ExperimentRecord] = None,
    progress=None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 256,
) -> ExperimentRecord:
    """Run the fault-rate sweep and package it as an ExperimentRecord.

    ``rates`` must start at 0.0 (the fault-free control the 1/n claim
    is checked against).  Seeds are ``0 .. trials-1`` per rate; the
    fault plan and the algorithm share the cell seed, so one integer
    reproduces a cell exactly.  Pass ``record`` to fill a caller-owned
    :class:`ExperimentRecord` (benchmarks declare their own id/title);
    by default one is created under :data:`EXPERIMENT_ID`.

    ``checkpoint_dir``/``checkpoint_every`` add in-run round-boundary
    snapshots beneath the journal's cell-level recovery — a killed
    sweep relaunched with the same journal *and* checkpoint dir
    resumes its in-flight cell mid-run instead of from round 0.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown fault kind {kind!r}; choose from {KINDS}")
    if not rates or rates[0] != 0.0:
        raise ValueError(
            f"rates must start with the fault-free control 0.0, got {rates!r}"
        )
    from ..graphs.generators import complete_regular_tree_with_size

    tree = complete_regular_tree_with_size(delta, n)
    measure = make_measure(tree, kind, round_budget)
    sweep = run_sweep(
        f"success probability under {kind} faults",
        list(rates),
        measure,
        seeds=tuple(range(trials)),
        workers=workers,
        retries=retries,
        journal=journal,
        observer_factory=MetricsObserver,
        progress=progress,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    if record is None:
        record = ExperimentRecord(
            EXPERIMENT_ID,
            f"Theorem 10 failure rate vs injected {kind}-fault rate "
            f"(n={tree.num_vertices}, Δ={delta}, {trials} trials/rate)",
        )
    record.add_series(sweep)

    faults = Series(f"injected {kind} faults per run (mean)")
    per_rate = len(tuple(range(trials)))
    cells = sweep.cell_telemetry
    for i, rate in enumerate(rates):
        chunk = cells[i * per_rate:(i + 1) * per_rate]
        faults.add(
            rate, [_cell_fault_count(c["summary"]) for c in chunk]
        )
    record.add_series(faults)

    success = {p.x: p.mean for p in sweep.points}
    record.check(
        "fault-free control succeeds (paper: failure prob <= 1/n)",
        success[0.0] == 1.0,
    )
    record.check(
        "success probability does not improve under faults",
        success[rates[-1]] <= success[0.0],
    )
    if len(rates) > 1:
        record.check(
            "positive rates actually inject faults",
            faults.points[-1].mean > 0.0,
        )
        record.check(
            "fault-free control injects none",
            faults.points[0].maximum == 0.0,
        )
    record.note(
        f"paper claim at p=0: failure probability <= 1/n = {1.0 / tree.num_vertices:.2e}; "
        f"observed fault-free failure fraction "
        f"{1.0 - success[0.0]:.3f} over {trials} trials"
    )
    record.note(
        "success = run terminates within the round budget AND the "
        "KColoring checker accepts the output; every probabilistic "
        "fault decision is a pure hash of (plan seed, round, vertex, "
        "port), so each cell replays exactly"
    )
    return record

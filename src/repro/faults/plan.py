"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the frozen description of an adversary: which
vertices crash-stop and when, the per-port Bernoulli rates for message
drop/duplication/corruption, and an optional round budget.  Plans are
value objects — reusable across runs, engines, and sweep cells — and a
plan plus its seed fully determines every injected fault (see
:mod:`repro.faults.runtime` for the determinism contract).

Attach a plan to a single run with ``run_local(..., fault_plan=plan)``
or to a whole driver execution ambiently::

    with inject_faults(FaultPlan(seed=3, drop_rate=0.01)):
        pettie_su_tree_coloring(tree, seed=1)

The RandLOCAL model is *defined* by tolerating failure — local failure
probability 1/n (Section I) — and these adversaries exist to measure
that tolerance (experiment E6F) rather than merely avoid it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from .runtime import FaultRuntime

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import RunMeta


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault-injection adversary.

    Parameters
    ----------
    seed:
        Master seed for every probabilistic fault decision.  Identical
        plans (same seed, same rates) inject identical faults in both
        engines and across repeated runs.
    crashes:
        Explicit ``{vertex: round}`` crash-stop schedule: the vertex
        executes no step at any round ``>=`` its crash round (it fails
        the round it would next be awake, exactly like a processor
        dying between rounds).
    crash_rate / crash_round:
        Seeded Bernoulli crash selection: each vertex independently
        crash-stops at ``crash_round`` with probability ``crash_rate``.
        Explicit ``crashes`` entries take precedence.
    drop_rate:
        Per-(round, receiver, port) probability that a delivery is
        lost; the receiver sees ``None`` in that inbox slot.
    duplicate_rate:
        Per-(round, receiver, port) probability that a *stale*
        duplicate wins: the receiver gets the previous delivery on that
        port again instead of the current payload.
    corrupt_rate / corrupt:
        Per-(round, receiver, port) probability that the delivered
        payload is rewritten by the ``corrupt`` hook (required when the
        rate is positive).  The hook must be deterministic for the
        byte-identical trace contract to hold.
    round_budget:
        Hard cap on executed rounds: the run raises
        :class:`~repro.core.errors.BudgetExceededError` when the budget
        is exhausted before every vertex halted — the paper's "runs for
        a specified number of rounds, may fail" convention made
        literal.
    """

    seed: int = 0
    crashes: Mapping[int, int] = field(default_factory=dict)
    crash_rate: float = 0.0
    crash_round: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt: Optional[Callable[[Any], Any]] = None
    round_budget: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash_rate", "drop_rate", "duplicate_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"FaultPlan.{name} must be in [0, 1], got {rate!r}"
                )
        for v, crash_at in self.crashes.items():
            if crash_at < 0:
                raise ValueError(
                    f"FaultPlan.crashes[{v}] must be a round >= 0, "
                    f"got {crash_at!r}"
                )
        if self.crash_round < 0:
            raise ValueError(
                f"FaultPlan.crash_round must be >= 0, got {self.crash_round!r}"
            )
        if self.corrupt_rate > 0.0 and self.corrupt is None:
            raise ValueError(
                "FaultPlan.corrupt_rate > 0 needs a corrupt= payload hook"
            )
        if self.round_budget is not None and self.round_budget < 0:
            raise ValueError(
                f"FaultPlan.round_budget must be >= 0 or None, "
                f"got {self.round_budget!r}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether this plan can never inject anything."""
        return (
            not self.crashes
            and self.crash_rate == 0.0
            and self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.round_budget is None
        )

    def activate(self, meta: "RunMeta") -> FaultRuntime:
        """Engine hook: build this run's mutable fault state."""
        return FaultRuntime(self, meta)

"""Fault-injection adversaries for the LOCAL engines.

See ``docs/robustness.md``.  The taxonomy of injected faults lives in
:mod:`repro.core.errors` (:class:`FaultEvent` and friends) so the core
engine can raise/record them without importing this package; plans and
runtimes live here; the failure-rate experiment (E6F) is in
:mod:`repro.faults.experiment`.
"""

from ..core.engine import active_fault_plan, inject_faults
from ..core.errors import (
    BudgetExceededError,
    CrashStopFault,
    FaultEvent,
    MessageDropFault,
    MessageDuplicateFault,
    PayloadCorruptionFault,
)
from .plan import FaultPlan
from .runtime import FaultRuntime, mix64, unit_uniform

__all__ = [
    "BudgetExceededError",
    "CrashStopFault",
    "FaultEvent",
    "FaultPlan",
    "FaultRuntime",
    "MessageDropFault",
    "MessageDuplicateFault",
    "PayloadCorruptionFault",
    "active_fault_plan",
    "inject_faults",
    "mix64",
    "unit_uniform",
]

"""Per-run fault-injection state machine.

A :class:`~repro.faults.plan.FaultPlan` is a frozen description; the
engine calls ``plan.activate(meta)`` once per run to obtain a
:class:`FaultRuntime`, which owns the mutable bookkeeping (the stale
payload buffer for duplicate delivery) and answers the engine's three
questions — *is this vertex crashed?*, *what does this inbox actually
contain?*, *is the round budget exhausted?*.

Determinism contract
--------------------
Every probabilistic decision is a pure function of
``(plan.seed, round, vertex, port, stream)`` through a splitmix64-style
integer mix — **never** a sequential draw from a shared RNG.  The fast
engine steps only awake vertices (in runnable order when unobserved)
while the reference engine scans every vertex in ascending order; with
sequential draws the two engines would consume the stream differently
and inject different faults.  Hash-derived decisions are independent of
visit order, so an identical plan perturbs both engines identically —
the property the fault equivalence suite pins down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..core.errors import (
    BudgetExceededError,
    CrashStopFault,
    FaultEvent,
    MessageDropFault,
    MessageDuplicateFault,
    PayloadCorruptionFault,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import RunMeta
    from .plan import FaultPlan

_MASK = 0xFFFFFFFFFFFFFFFF
_GAMMA = 0x9E3779B97F4A7C15

#: Independent decision streams; a drop decision at (round, v, port)
#: never correlates with the duplicate/corrupt decision at the same
#: coordinates.
_STREAM_DROP = 1
_STREAM_DUPLICATE = 2
_STREAM_CORRUPT = 3
_STREAM_CRASH_SELECT = 4


def mix64(seed: int, *parts: int) -> int:
    """Splitmix64-style avalanche of ``seed`` and ``parts`` to 64 bits.

    Order-sensitive in its arguments, order-independent in when it is
    called — the whole point (see module docstring).
    """
    z = seed & _MASK
    for part in parts:
        z = (z + _GAMMA + (part & _MASK)) & _MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        z = z ^ (z >> 31)
    return z


def unit_uniform(seed: int, *parts: int) -> float:
    """Deterministic uniform float in ``[0, 1)`` keyed by the parts."""
    return mix64(seed, *parts) / 2.0**64


class FaultRuntime:
    """One run's activated adversary (see module docstring).

    The engines interact with exactly these attributes/methods:
    ``crashed``/``crash_reason``/``crash_event`` for crash-stop,
    ``touches_messages``/``deliver`` for per-port delivery faults, and
    ``budget``/``budget_error`` for round-budget exhaustion.
    """

    __slots__ = (
        "plan",
        "seed",
        "run_meta",
        "crashes",
        "drop_rate",
        "duplicate_rate",
        "corrupt_rate",
        "corrupt_hook",
        "budget",
        "touches_messages",
        "_last",
    )

    def __init__(self, plan: "FaultPlan", meta: "RunMeta") -> None:
        self.plan = plan
        self.seed = plan.seed
        self.run_meta = meta
        crashes: Dict[int, int] = dict(plan.crashes)
        if plan.crash_rate > 0.0:
            # Seeded Bernoulli selection over the vertex set, keyed per
            # vertex (round-independent): the same plan crashes the
            # same vertices at the same round in every engine.
            for v in range(meta.n):
                if v in crashes:
                    continue
                if (
                    unit_uniform(plan.seed, _STREAM_CRASH_SELECT, v)
                    < plan.crash_rate
                ):
                    crashes[v] = plan.crash_round
        self.crashes = crashes
        self.drop_rate = plan.drop_rate
        self.duplicate_rate = plan.duplicate_rate
        self.corrupt_rate = plan.corrupt_rate
        self.corrupt_hook = plan.corrupt
        self.budget = plan.round_budget
        self.touches_messages = (
            plan.drop_rate > 0.0
            or plan.duplicate_rate > 0.0
            or plan.corrupt_rate > 0.0
        )
        #: (vertex, port) -> last pre-fault payload delivered on that
        #: port; the stale value a duplicate redelivers.  Only tracked
        #: when duplication is on (it is O(messages) state).
        self._last: Optional[Dict[Tuple[int, int], Any]] = (
            {} if plan.duplicate_rate > 0.0 else None
        )

    # ------------------------------------------------------------------
    # Crash-stop
    # ------------------------------------------------------------------
    def crashed(self, round_index: int, v: int) -> bool:
        """Whether ``v`` crash-stops instead of stepping this round."""
        crash_at = self.crashes.get(v)
        return crash_at is not None and round_index >= crash_at

    def crash_reason(self, round_index: int) -> str:
        """The ``RunResult.failures`` entry for a crashed vertex —
        identical in both engines (part of RunResult bit-identity)."""
        return f"crash-stop fault injected at round {round_index}"

    def crash_event(self, round_index: int, v: int) -> CrashStopFault:
        return CrashStopFault(
            self.crash_reason(round_index),
            node=v,
            round=round_index,
            run_meta=self.run_meta,
        )

    # ------------------------------------------------------------------
    # Message delivery
    # ------------------------------------------------------------------
    def deliver(
        self,
        round_index: int,
        v: int,
        inbox: List[Any],
        record: bool,
    ) -> Optional[List[FaultEvent]]:
        """Apply drop/duplicate/corrupt faults to ``inbox`` in place.

        ``inbox[port]`` holds the payload ``v`` would receive on that
        port.  Precedence per port: **drop** (receiver sees ``None``)
        beats **duplicate** (receiver sees the previous delivery on the
        port again — its own first delivery when there was none); the
        **corruption hook** then rewrites whatever non-dropped payload
        remains.  Returns the injected-fault events (for the observer
        hub) when ``record`` is true, else ``None`` — decisions are
        hash-derived, so skipping event construction cannot skew them.
        """
        events: Optional[List[FaultEvent]] = [] if record else None
        seed = self.seed
        drop = self.drop_rate
        duplicate = self.duplicate_rate
        corrupt = self.corrupt_rate
        last = self._last
        for port in range(len(inbox)):
            value = inbox[port]
            if last is not None:
                # The sender did send: remember the in-channel payload
                # even when this delivery is then dropped.
                key = (v, port)
                previous = last.get(key, value)
                last[key] = value
            if drop and (
                unit_uniform(seed, round_index, v, port, _STREAM_DROP)
                < drop
            ):
                inbox[port] = None
                if events is not None:
                    events.append(
                        MessageDropFault(
                            f"message to vertex {v} port {port} dropped",
                            node=v,
                            round=round_index,
                            port=port,
                        )
                    )
                continue
            delivered = value
            if duplicate and (
                unit_uniform(
                    seed, round_index, v, port, _STREAM_DUPLICATE
                )
                < duplicate
            ):
                delivered = previous
                if events is not None:
                    events.append(
                        MessageDuplicateFault(
                            f"stale duplicate delivered to vertex {v} "
                            f"port {port}",
                            node=v,
                            round=round_index,
                            port=port,
                        )
                    )
            if corrupt and (
                unit_uniform(
                    seed, round_index, v, port, _STREAM_CORRUPT
                )
                < corrupt
            ):
                assert self.corrupt_hook is not None
                delivered = self.corrupt_hook(delivered)
                if events is not None:
                    events.append(
                        PayloadCorruptionFault(
                            f"payload to vertex {v} port {port} "
                            "corrupted",
                            node=v,
                            round=round_index,
                            port=port,
                        )
                    )
            inbox[port] = delivered
        return events

    # ------------------------------------------------------------------
    # Round budget
    # ------------------------------------------------------------------
    def budget_error(self, round_index: int) -> BudgetExceededError:
        meta = self.run_meta
        return BudgetExceededError(
            f"{meta.algorithm!r} exhausted injected round budget "
            f"{self.budget} on n={meta.n}",
            round=round_index,
            run_meta=meta,
            detail=f"budget={self.budget}",
        )

"""Elementary graph families: paths, cycles, stars, complete graphs.

These are the degenerate/extremal inputs used throughout the tests and the
Δ = 2 experiments (Theorem 7 concerns Δ = 2, where the DetLOCAL complexity
of every LCL is either Ω(n) or O(log* n)).
"""

from __future__ import annotations

from ..graph import Graph, GraphError


def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices."""
    return Graph(n, [])


def path_graph(n: int) -> Graph:
    """The path on ``n`` vertices, ``0 - 1 - ... - n-1``."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n`` vertices.

    Raises
    ------
    GraphError
        If ``n < 3`` (shorter cycles are not simple graphs).
    """
    if n < 3:
        raise GraphError(f"cycle needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def star_graph(leaves: int) -> Graph:
    """A star: vertex 0 joined to ``leaves`` leaves."""
    return Graph(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


def complete_graph(n: int) -> Graph:
    """The complete graph on ``n`` vertices."""
    return Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with left side ``0..a-1`` and right side ``a..a+b-1``."""
    return Graph(a + b, [(u, a + v) for u in range(a) for v in range(b)])


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube (2^dim vertices, girth 4).

    A deterministic ``dim``-regular bipartite graph; useful as a fixed
    regular edge-colorable instance (coordinate = edge color).
    """
    if dim < 0:
        raise GraphError(f"dimension must be non-negative, got {dim}")
    n = 1 << dim
    edges = []
    for v in range(n):
        for bit in range(dim):
            u = v ^ (1 << bit)
            if u > v:
                edges.append((v, u))
    return Graph(n, edges)

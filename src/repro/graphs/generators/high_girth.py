"""High-girth regular graph construction with *verified* girth.

The paper's lower bounds (Theorem 4, Theorem 5) and the
indistinguishability experiments (E12) need Δ-regular graphs whose girth
is Ω(log_Δ n): within radius < girth/2, every vertex's view is a tree, so
a tree algorithm cannot distinguish the graph from a tree.

The existence results the paper cites ([29] Dahan, [30] Bollobás) are
non-constructive or intricate; our substitute is random regular graphs
plus **girth repair**: while a cycle shorter than the target exists, pick
an edge on a shortest cycle and double-edge-swap it with a random edge
elsewhere.  Each swap destroys a witness cycle and creates a new short
cycle only with small probability, so the process converges whenever the
target is below the girth capacity ~log_{Δ-1} n of the family.  The final
girth is *checked*, never assumed.

For bipartite instances the swaps stay inside one permutation class, so
both bipartiteness and the free proper Δ-edge coloring (matching index =
color) are preserved.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Set, Tuple

from ..graph import Graph, GraphError
from .bipartite import EdgeColoring
from .regular import random_regular_graph


def girth_target(n: int, degree: int, slack: float = 0.5) -> int:
    """A girth target ``max(4, floor(slack * log_{Δ-1} n))``; with
    ``slack <= ~0.8`` girth repair reaches it quickly."""
    if degree <= 2:
        return 4
    return max(4, int(slack * math.log(max(n, 2)) / math.log(degree - 1)))


def high_girth_regular_graph(
    n: int,
    degree: int,
    min_girth: int,
    rng: random.Random,
    max_swaps: int = 200_000,
) -> Graph:
    """A ``degree``-regular simple graph on ``n`` vertices with verified
    girth >= ``min_girth``, by girth repair on a random regular graph.

    Raises
    ------
    GraphError
        If repair does not converge in ``max_swaps`` swaps (target above
        the family's girth capacity for this ``n``/``degree``).
    """
    if degree <= 1:
        return random_regular_graph(n, degree, rng)
    graph = random_regular_graph(n, degree, rng)
    edges: Set[Tuple[int, int]] = set(graph.edges())
    swaps = 0
    edge_list = sorted(edges)
    while True:
        graph = Graph(n, edge_list)
        batch = graph.short_cycles(min_girth)
        if not batch:
            return graph
        # Break each witness cycle: swap one of its edges with a random
        # disjoint edge, keeping the graph simple.
        for cycle in batch:
            for _ in range(1000):
                swaps += 1
                if swaps > max_swaps:
                    raise GraphError(
                        f"girth repair for {degree}-regular n={n} did not "
                        f"reach girth {min_girth} within {max_swaps} swaps"
                    )
                i = rng.randrange(len(cycle))
                u, v = cycle[i], cycle[(i + 1) % len(cycle)]
                old_a = (min(u, v), max(u, v))
                if old_a not in edges:
                    break  # already re-routed by an earlier swap
                x, y = edge_list[rng.randrange(len(edge_list))]
                if (min(x, y), max(x, y)) not in edges:
                    continue  # stale entry from this batch's swaps
                if rng.random() < 0.5:
                    x, y = y, x
                if len({u, v, x, y}) < 4:
                    continue
                new_a = (min(u, x), max(u, x))
                new_b = (min(v, y), max(v, y))
                old_b = (min(x, y), max(x, y))
                if new_a in edges or new_b in edges:
                    continue
                edges.remove(old_a)
                edges.remove(old_b)
                edges.add(new_a)
                edges.add(new_b)
                break
        edge_list = sorted(edges)


def high_girth_bipartite_graph(
    half: int,
    degree: int,
    min_girth: int,
    rng: random.Random,
    max_swaps: int = 200_000,
) -> Tuple[Graph, EdgeColoring]:
    """A ``degree``-regular bipartite graph on ``2 * half`` vertices with
    verified girth >= ``min_girth``, plus its proper ``degree``-edge
    coloring (matching index), by color-preserving girth repair on the
    permutation model.

    This is exactly the input family of Theorem 4: Δ-regular, high
    girth, bipartite (hence Δ-edge colorable, and any Δ-coloring of it
    is also a valid Δ-sinkless coloring).
    """
    if degree < 0 or half < 0:
        raise GraphError("half and degree must be non-negative")
    if degree > half:
        raise GraphError(
            f"degree {degree} impossible with {half} vertices per side"
        )
    if degree == 0:
        return Graph(2 * half, []), {}
    # perms[c][left] = right-side partner (local index) in matching c.
    perms: List[List[int]] = []
    for _ in range(degree):
        perm = list(range(half))
        rng.shuffle(perm)
        perms.append(perm)

    def build() -> Tuple[Optional[Graph], EdgeColoring, Optional[Tuple[int, int]]]:
        used: Dict[Tuple[int, int], int] = {}
        for c, perm in enumerate(perms):
            for left, right in enumerate(perm):
                key = (left, half + right)
                if key in used:
                    # Collision: colors `used[key]` and `c` both carry
                    # this edge; report (color, left index) to repair.
                    return None, {}, (c, left)
                used[key] = c
        return Graph(2 * half, sorted(used)), dict(used), None

    def swap_in_color(c: int, left_a: int, left_b: int) -> None:
        perm = perms[c]
        perm[left_a], perm[left_b] = perm[left_b], perm[left_a]

    swaps = 0
    while True:
        graph, coloring, collision = build()
        if graph is None:
            # Parallel edge across two matchings: re-route the colliding
            # left vertex inside one of the offending colors.
            assert collision is not None
            c, left = collision
            other = rng.randrange(half)
            if other == left:
                other = (other + 1) % half
            swap_in_color(c, left, other)
            swaps += 1
            if swaps > max_swaps:
                raise GraphError("bipartite repair did not simplify graph")
            continue
        batch = graph.short_cycles(min_girth)
        if not batch:
            return graph, coloring
        for cycle in batch:
            # Pick an edge on the witness cycle, swap in its color class.
            i = rng.randrange(len(cycle))
            u, v = cycle[i], cycle[(i + 1) % len(cycle)]
            left = min(u, v)
            if (min(u, v), max(u, v)) not in coloring:
                # A previous swap in this batch re-routed this edge.
                continue
            c = coloring[(min(u, v), max(u, v))]
            other = rng.randrange(half)
            if other == left:
                other = (other + 1) % half
            swap_in_color(c, left, other)
            swaps += 1
        if swaps > max_swaps:
            raise GraphError(
                f"bipartite girth repair for degree={degree} half={half} "
                f"did not reach girth {min_girth} within {max_swaps} swaps"
            )


def tree_like_radius(graph: Graph) -> Optional[int]:
    """The largest radius ``t`` such that every radius-``t`` ball in
    ``graph`` is acyclic (i.e. ``t = ceil(girth / 2) - 1``), or ``None``
    if the graph itself is acyclic (every radius works)."""
    girth = graph.girth()
    if girth is None:
        return None
    return (girth + 1) // 2 - 1

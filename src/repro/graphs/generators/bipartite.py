"""Δ-regular bipartite graphs from the permutation model.

Theorem 4 needs, for every Δ >= 3, bipartite Δ-regular graphs with girth
Ω(log_Δ n).  It also needs a *proper Δ-edge coloring* of the instance
(the inputs to Δ-sinkless coloring / orientation carry one).

The permutation model delivers both at once: take two sides of ``n/2``
vertices each and Δ independent random perfect matchings between them
(i.e., Δ random permutations).  The union is Δ-regular and bipartite,
and **the index of the matching an edge came from is a proper Δ-edge
coloring** — matchings touch every vertex exactly once.  The model
produces simple graphs (no two permutations agreeing anywhere) with
probability bounded away from 0, and girth Ω(log_Δ n) with constant
probability, so rejection sampling is cheap.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..graph import Graph, GraphError

EdgeColoring = Dict[Tuple[int, int], int]


def random_regular_bipartite_graph(
    half: int, degree: int, rng: random.Random, max_tries: int = 200
) -> Tuple[Graph, EdgeColoring]:
    """A random ``degree``-regular bipartite graph on ``2 * half``
    vertices, together with the proper ``degree``-edge coloring induced
    by the permutation model.

    Left vertices are ``0 .. half-1``, right vertices ``half .. 2*half-1``.

    Returns
    -------
    (graph, coloring):
        ``coloring[(u, v)]`` with ``u < v`` is the color in
        ``0 .. degree-1`` of edge ``{u, v}``.

    Raises
    ------
    GraphError
        If ``degree > half`` or all tries produce a multigraph.
    """
    if degree < 0 or half < 0:
        raise GraphError("half and degree must be non-negative")
    if degree > half:
        raise GraphError(
            f"degree {degree} impossible with {half} vertices per side"
        )
    if degree == 0:
        return Graph(2 * half, []), {}
    if degree == half == 1:
        return Graph(2, [(0, 1)]), {(0, 1): 0}
    perms: List[List[int]] = []
    for _ in range(degree):
        perm = list(range(half))
        rng.shuffle(perm)
        perms.append(perm)
    # Repair collisions (two matchings carrying the same edge) by
    # re-routing inside one offending matching.  Plain rejection has
    # acceptance probability ~exp(-(Δ choose 2)), hopeless already for
    # moderate Δ; each repair swap removes a collision and creates a new
    # one only with probability O(Δ/half).
    budget = max_tries * max(1, half)
    for _ in range(budget):
        collision = _first_collision(perms)
        if collision is None:
            edges: List[Tuple[int, int]] = []
            coloring: EdgeColoring = {}
            for color, perm in enumerate(perms):
                for left, right_local in enumerate(perm):
                    key = (left, half + right_local)
                    edges.append(key)
                    coloring[key] = color
            return Graph(2 * half, edges), coloring
        color, left = collision
        other = rng.randrange(half)
        if other == left:
            other = (other + 1) % half
        perm = perms[color]
        perm[left], perm[other] = perm[other], perm[left]
    raise GraphError(
        f"failed to sample a simple {degree}-regular bipartite graph "
        f"({half} per side) within the repair budget"
    )


def _first_collision(
    perms: List[List[int]],
) -> Optional[Tuple[int, int]]:
    """The first (color, left-vertex) whose edge duplicates an earlier
    matching's edge, or ``None`` if the union is simple."""
    half = len(perms[0]) if perms else 0
    seen = [set() for _ in range(half)]
    for color, perm in enumerate(perms):
        for left, right_local in enumerate(perm):
            if right_local in seen[left]:
                return color, left
            seen[left].add(right_local)
    return None


def double_cover(graph: Graph) -> Graph:
    """The bipartite double cover of ``graph``.

    Vertices ``(v, side)`` for side in {0, 1}; every edge ``{u, v}``
    becomes ``{(u, 0), (v, 1)}`` and ``{(v, 0), (u, 1)}``.  Preserves
    regularity, is always bipartite, and at least doubles odd girth —
    a deterministic trick to turn a good regular graph into a good
    regular *bipartite* graph.  Vertex ``(v, side)`` is numbered
    ``v + side * n``.
    """
    n = graph.num_vertices
    edges = []
    for u, v in graph.edges():
        edges.append((u, v + n))
        edges.append((v, u + n))
    return Graph(2 * n, edges)

"""Regular graph generators.

The lower-bound constructions of Section IV run on Δ-regular graphs with
girth Ω(log_Δ n); the paper cites existence results ([29], [30]) and uses
them non-constructively.  We *generate* such graphs: random regular graphs
(configuration model) and random regular bipartite graphs (permutation
model, see :mod:`.bipartite`) have girth Ω(log_Δ n) with constant
probability, and :mod:`.high_girth` retries until an explicit girth target
is verified.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..graph import Graph, GraphError


def random_regular_graph(
    n: int, degree: int, rng: random.Random, max_tries: int = 200
) -> Graph:
    """A uniformly-flavored random ``degree``-regular simple graph on
    ``n`` vertices via the configuration (pairing) model with rejection.

    Each vertex contributes ``degree`` half-edge stubs; stubs are paired
    uniformly at random, and the pairing is rejected if it creates a self
    loop or parallel edge.  For ``degree`` fixed and ``n`` large the
    rejection probability is bounded away from 1, so a handful of tries
    suffices.

    Raises
    ------
    GraphError
        If ``n * degree`` is odd, ``degree >= n``, or all tries fail.
    """
    if degree < 0 or n < 0:
        raise GraphError("n and degree must be non-negative")
    if (n * degree) % 2 != 0:
        raise GraphError(f"n*degree must be even, got n={n} degree={degree}")
    if degree >= n and n > 0:
        raise GraphError(f"degree {degree} impossible on {n} vertices")
    if degree == 0:
        return Graph(n, [])
    for _ in range(max_tries):
        edges = _pairing_with_repair(n, degree, rng)
        if edges is not None:
            return Graph(n, edges)
    raise GraphError(
        f"failed to sample a simple {degree}-regular graph on {n} vertices "
        f"after {max_tries} tries"
    )


def _pairing_with_repair(
    n: int, degree: int, rng: random.Random, max_swaps: int = 100_000
) -> Optional[List[Tuple[int, int]]]:
    """One configuration-model pairing, then random double-edge swaps
    until no self loops or parallel edges remain.

    Full rejection has acceptance probability ~exp(-(d²-1)/4), hopeless
    for d >= 5; swap repair converges in O(#conflicts) expected swaps and
    leaves the distribution asymptotically uniform (the standard
    practical compromise, cf. the NetworkX implementation).
    """
    stubs = [v for v in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    pairs: List[List[int]] = [
        [stubs[i], stubs[i + 1]] for i in range(0, len(stubs), 2)
    ]

    def key(pair: List[int]) -> Tuple[int, int]:
        a, b = pair
        return (a, b) if a < b else (b, a)

    counts: Dict[Tuple[int, int], int] = {}
    for pair in pairs:
        counts[key(pair)] = counts.get(key(pair), 0) + 1

    def is_bad(pair: List[int]) -> bool:
        return pair[0] == pair[1] or counts[key(pair)] > 1

    bad = [i for i, pair in enumerate(pairs) if is_bad(pair)]
    swaps = 0
    while bad:
        if swaps >= max_swaps:
            return None
        swaps += 1
        i = bad[-1]
        if not is_bad(pairs[i]):
            bad.pop()
            continue
        j = rng.randrange(len(pairs))
        if j == i:
            continue
        # Swap one endpoint between pairs i and j.
        for pair in (pairs[i], pairs[j]):
            counts[key(pair)] -= 1
        side = rng.randrange(2)
        pairs[i][1], pairs[j][side] = pairs[j][side], pairs[i][1]
        for pair in (pairs[i], pairs[j]):
            counts[key(pair)] = counts.get(key(pair), 0) + 1
        if is_bad(pairs[j]):
            bad.append(j)
    return [key(pair) for pair in pairs]


def circulant_graph(n: int, offsets: List[int]) -> Graph:
    """The circulant graph ``C_n(offsets)``: vertex ``v`` is adjacent to
    ``v ± s (mod n)`` for each offset ``s``.

    A deterministic ``2|offsets|``-regular graph (when all offsets are
    distinct, nonzero, and no offset equals ``n/2``); with offsets spread
    out, a cheap source of regular graphs of moderate girth.
    """
    if n < 3:
        raise GraphError(f"circulant needs at least 3 vertices, got {n}")
    edges = set()
    for s in offsets:
        s %= n
        if s == 0:
            raise GraphError("offset 0 would create self loops")
        for v in range(n):
            u = (v + s) % n
            key = (v, u) if v < u else (u, v)
            edges.add(key)
    return Graph(n, sorted(edges))


def ring_of_cycles(num_blocks: int, block_size: int) -> Graph:
    """``num_blocks`` disjoint cycles of ``block_size`` vertices each —
    a disconnected 2-regular graph used in Δ = 2 tests."""
    if block_size < 3:
        raise GraphError(f"cycle blocks need >= 3 vertices, got {block_size}")
    edges = []
    for b in range(num_blocks):
        base = b * block_size
        for i in range(block_size):
            edges.append((base + i, base + (i + 1) % block_size))
    return Graph(num_blocks * block_size, edges)

"""Tree generators.

Trees are the paper's central graph class: the headline separation
(Theorems 5, 10, 11) is about Δ-coloring trees.  The experiments need
trees of controlled maximum degree Δ, both *balanced* (complete Δ-ary,
diameter Θ(log_Δ n)) and *random* (degree-capped random attachment,
Prüfer-uniform).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..graph import Graph, GraphError


def complete_dary_tree(arity: int, depth: int) -> Graph:
    """A complete rooted tree where every internal vertex has ``arity``
    children, of the given ``depth`` (depth 0 is a single vertex).

    The maximum degree of the result is ``arity + 1`` (internal,
    non-root vertices), so a degree-Δ instance uses ``arity = Δ - 1``.
    Vertices are numbered in BFS order with the root at 0.
    """
    if arity < 1:
        raise GraphError(f"arity must be >= 1, got {arity}")
    if depth < 0:
        raise GraphError(f"depth must be >= 0, got {depth}")
    edges = []
    level: List[int] = [0]
    next_vertex = 1
    for _ in range(depth):
        new_level: List[int] = []
        for parent in level:
            for _ in range(arity):
                edges.append((parent, next_vertex))
                new_level.append(next_vertex)
                next_vertex += 1
        level = new_level
    return Graph(next_vertex, edges)


def complete_regular_tree(degree: int, depth: int) -> Graph:
    """The complete Δ-regular tree of the given depth: the root has
    ``degree`` children and every other internal vertex has
    ``degree - 1`` children (so all internal vertices have degree Δ).

    This is the extremal instance of Theorem 5: diameter 2·depth =
    Θ(log_{Δ-1} n), and low-degree peeling strips it exactly one level
    per round — deterministic Δ-coloring on it must pay the full
    Ω(log_Δ n).
    """
    if degree < 2:
        raise GraphError(f"degree must be >= 2, got {degree}")
    if depth < 0:
        raise GraphError(f"depth must be >= 0, got {depth}")
    edges = []
    level: List[int] = [0]
    next_vertex = 1
    for level_index in range(depth):
        arity = degree if level_index == 0 else degree - 1
        new_level: List[int] = []
        for parent in level:
            for _ in range(arity):
                edges.append((parent, next_vertex))
                new_level.append(next_vertex)
                next_vertex += 1
        level = new_level
    return Graph(next_vertex, edges)


def complete_regular_tree_with_size(degree: int, min_vertices: int) -> Graph:
    """The smallest complete Δ-regular tree with >= ``min_vertices``
    vertices."""
    depth = 0
    while True:
        g = complete_regular_tree(degree, depth)
        if g.num_vertices >= min_vertices:
            return g
        depth += 1


def complete_tree_with_max_degree(max_degree: int, min_vertices: int) -> Graph:
    """The smallest complete (Δ-1)-ary tree with max degree ``max_degree``
    and at least ``min_vertices`` vertices.

    Convenience constructor for experiments sweeping n at fixed Δ.
    """
    if max_degree < 2:
        raise GraphError(f"max degree must be >= 2, got {max_degree}")
    arity = max_degree - 1
    depth = 1
    while True:
        size = _complete_tree_size(arity, depth)
        if size >= min_vertices:
            return complete_dary_tree(arity, depth)
        depth += 1


def _complete_tree_size(arity: int, depth: int) -> int:
    if arity == 1:
        return depth + 1
    return (arity ** (depth + 1) - 1) // (arity - 1)


def random_tree_prufer(n: int, rng: random.Random) -> Graph:
    """A uniformly random labeled tree on ``n`` vertices via a Prüfer
    sequence.  Maximum degree is not controlled (typically Θ(log n /
    log log n))."""
    if n < 1:
        raise GraphError(f"tree needs at least 1 vertex, got {n}")
    if n == 1:
        return Graph(1, [])
    if n == 2:
        return Graph(2, [(0, 1)])
    seq = [rng.randrange(n) for _ in range(n - 2)]
    return tree_from_prufer(seq)


def tree_from_prufer(seq: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence into the tree it encodes.

    A sequence of length ``n - 2`` over ``{0, .., n-1}`` encodes a unique
    labeled tree on ``n`` vertices.
    """
    n = len(seq) + 2
    degree = [1] * n
    for v in seq:
        if not 0 <= v < n:
            raise GraphError(f"Prüfer symbol {v} out of range for n={n}")
        degree[v] += 1
    edges = []
    # Min-leaf elimination without a heap: classic two-pointer scan.
    ptr = 0
    leaf = -1
    for v in seq:
        if leaf < 0:
            while degree[ptr] != 1:
                ptr += 1
            leaf = ptr
        edges.append((leaf, v))
        degree[leaf] -= 1
        degree[v] -= 1
        if degree[v] == 1 and v < ptr:
            leaf = v
        else:
            leaf = -1
    last = [v for v in range(n) if degree[v] == 1]
    edges.append((last[0], last[1]))
    return Graph(n, edges)


def random_tree_bounded_degree(
    n: int, max_degree: int, rng: random.Random
) -> Graph:
    """A random tree on ``n`` vertices with maximum degree ≤ ``max_degree``.

    Built by random attachment: each new vertex picks a uniformly random
    existing vertex that still has residual degree.  This is the workhorse
    instance family for the Δ-coloring experiments: the realized maximum
    degree equals ``max_degree`` for all but tiny ``n``.
    """
    if n < 1:
        raise GraphError(f"tree needs at least 1 vertex, got {n}")
    if max_degree < 2 and n > 2:
        raise GraphError(
            f"cannot build a tree on {n} > 2 vertices with max degree {max_degree}"
        )
    edges = []
    residual: List[int] = []  # vertices with spare degree, with multiplicity 1
    degree = [0] * n
    if n >= 2:
        residual.append(0)
    for v in range(1, n):
        idx = rng.randrange(len(residual))
        parent = residual[idx]
        edges.append((parent, v))
        degree[parent] += 1
        degree[v] += 1
        if degree[parent] >= max_degree:
            residual.pop(idx)
        if degree[v] < max_degree:
            residual.append(v)
    return Graph(n, edges)


def random_tree_preferential(
    n: int, max_degree: int, rng: random.Random, seed_hub: bool = False
) -> Graph:
    """A preferential-attachment random tree with degree cap
    ``max_degree``: each new vertex attaches to an existing vertex with
    probability proportional to its degree (capped vertices excluded).

    Unlike uniform attachment, this reliably *realizes* the cap — the
    generator of choice for experiments pinning Δ (e.g. Δ = 55 for
    Theorem 11) at moderate n.  With ``seed_hub`` the first
    ``max_degree`` vertices attach to vertex 0, *guaranteeing* the
    realized maximum degree equals the cap whenever n > max_degree.
    """
    if n < 1:
        raise GraphError(f"tree needs at least 1 vertex, got {n}")
    if max_degree < 2 and n > 2:
        raise GraphError(
            f"cannot build a tree on {n} > 2 vertices with max degree {max_degree}"
        )
    edges = []
    degree = [0] * n
    pool: List[int] = [0]  # vertex tokens, multiplicity = degree (min 1)
    start = 1
    if seed_hub:
        hub_children = min(n - 1, max_degree)
        for v in range(1, hub_children + 1):
            edges.append((0, v))
            degree[0] += 1
            degree[v] += 1
            pool.append(v)
            if degree[0] < max_degree:
                pool.append(0)
        start = hub_children + 1
    for v in range(start, n):
        parent = -1
        for _ in range(10 * max_degree):
            candidate = pool[rng.randrange(len(pool))]
            if degree[candidate] < max_degree:
                parent = candidate
                break
        if parent < 0:
            # Pool saturated with capped vertices: rebuild it.
            pool = [
                u
                for u in range(v)
                for _ in range(max(1, degree[u]))
                if degree[u] < max_degree
            ]
            if not pool:
                raise GraphError(
                    f"all vertices capped at degree {max_degree} before "
                    f"reaching n={n}"
                )
            parent = pool[rng.randrange(len(pool))]
        edges.append((parent, v))
        degree[parent] += 1
        degree[v] += 1
        pool.append(parent)
        pool.append(v)
    return Graph(n, edges)


def spider_graph(legs: int, leg_length: int) -> Graph:
    """A spider: ``legs`` paths of ``leg_length`` edges sharing one center.

    Center has degree ``legs``; every other vertex has degree ≤ 2.  Used
    as an adversarial tree (one high-degree hub, long chains).
    """
    if legs < 0 or leg_length < 0:
        raise GraphError("legs and leg_length must be non-negative")
    edges = []
    n = 1
    for _ in range(legs):
        prev = 0
        for _ in range(leg_length):
            edges.append((prev, n))
            prev = n
            n += 1
    return Graph(n, edges)


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar: a path of ``spine`` vertices, each with
    ``legs_per_vertex`` pendant leaves."""
    if spine < 1:
        raise GraphError(f"spine must have at least 1 vertex, got {spine}")
    edges = [(i, i + 1) for i in range(spine - 1)]
    n = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((i, n))
            n += 1
    return Graph(n, edges)


def random_forest(
    n: int, trees: int, max_degree: Optional[int], rng: random.Random
) -> Graph:
    """A forest on ``n`` vertices with ``trees`` components.

    Component sizes are balanced (within one vertex of each other).  Each
    component is a bounded-degree random tree if ``max_degree`` is given,
    otherwise Prüfer-uniform.
    """
    if trees < 1 or trees > max(n, 1):
        raise GraphError(f"cannot split {n} vertices into {trees} trees")
    sizes = [n // trees + (1 if i < n % trees else 0) for i in range(trees)]
    edges = []
    offset = 0
    for size in sizes:
        if size == 0:
            continue
        if max_degree is None:
            part = random_tree_prufer(size, rng)
        else:
            part = random_tree_bounded_degree(size, max_degree, rng)
        edges.extend((offset + u, offset + v) for u, v in part.edges())
        offset += size
    return Graph(n, edges)

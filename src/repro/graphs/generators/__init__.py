"""Graph generators for every instance family the experiments use."""

from .basic import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from .bipartite import (
    double_cover,
    random_regular_bipartite_graph,
)
from .high_girth import (
    girth_target,
    high_girth_bipartite_graph,
    high_girth_regular_graph,
    tree_like_radius,
)
from .regular import (
    circulant_graph,
    random_regular_graph,
    ring_of_cycles,
)
from .trees import (
    caterpillar_graph,
    complete_dary_tree,
    complete_regular_tree,
    complete_regular_tree_with_size,
    complete_tree_with_max_degree,
    random_forest,
    random_tree_bounded_degree,
    random_tree_preferential,
    random_tree_prufer,
    spider_graph,
    tree_from_prufer,
)

__all__ = [
    "caterpillar_graph",
    "circulant_graph",
    "complete_bipartite_graph",
    "complete_dary_tree",
    "complete_graph",
    "complete_regular_tree",
    "complete_regular_tree_with_size",
    "complete_tree_with_max_degree",
    "cycle_graph",
    "double_cover",
    "empty_graph",
    "girth_target",
    "high_girth_bipartite_graph",
    "high_girth_regular_graph",
    "hypercube_graph",
    "path_graph",
    "random_forest",
    "random_regular_bipartite_graph",
    "random_regular_graph",
    "random_tree_bounded_degree",
    "random_tree_preferential",
    "random_tree_prufer",
    "ring_of_cycles",
    "spider_graph",
    "star_graph",
    "tree_from_prufer",
    "tree_like_radius",
]

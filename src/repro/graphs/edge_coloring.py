"""Edge colorings: construction and validation.

The Δ-sinkless problems (Section II) take as *input* a Δ-regular graph
equipped with a proper Δ-edge coloring.  Bipartite instances get their
coloring for free from the permutation model
(:func:`repro.graphs.generators.bipartite.random_regular_bipartite_graph`);
this module supplies colorings for everything else:

- :func:`misra_gries_edge_coloring` — proper (Δ+1)-edge coloring of any
  simple graph (Vizing's bound, constructive).
- :func:`bipartite_regular_edge_coloring` — proper Δ-edge coloring of a
  Δ-regular bipartite graph by repeated perfect-matching extraction
  (König's theorem, via Hopcroft–Karp-style augmenting paths).
- :func:`is_proper_edge_coloring` / :func:`ports_coloring` — validation
  and the per-vertex port view consumed by the simulation engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .graph import Graph, GraphError

EdgeColoring = Dict[Tuple[int, int], int]


def edge_key(u: int, v: int) -> Tuple[int, int]:
    """Canonical dictionary key for the undirected edge {u, v}."""
    return (u, v) if u < v else (v, u)


def is_proper_edge_coloring(graph: Graph, coloring: EdgeColoring) -> bool:
    """Whether ``coloring`` assigns a color to every edge and no two
    edges sharing a vertex get the same color."""
    for u, v in graph.edges():
        if edge_key(u, v) not in coloring:
            return False
    for v in graph.vertices():
        seen: Set[int] = set()
        for u in graph.neighbors(v):
            c = coloring[edge_key(u, v)]
            if c in seen:
                return False
            seen.add(c)
    return True


def num_edge_colors(coloring: EdgeColoring) -> int:
    """Number of distinct colors used."""
    return len(set(coloring.values()))


def ports_coloring(graph: Graph, coloring: EdgeColoring) -> List[List[int]]:
    """Per-vertex port view of an edge coloring.

    ``result[v][p]`` is the color of the edge on port ``p`` of vertex
    ``v`` — the form in which a LOCAL algorithm receives the input edge
    coloring (a vertex knows the colors of its incident edges, indexed by
    port, and nothing else).
    """
    view: List[List[int]] = []
    for v in graph.vertices():
        view.append(
            [coloring[edge_key(v, u)] for u in graph.neighbors(v)]
        )
    return view


# ----------------------------------------------------------------------
# Misra–Gries (Δ+1)-edge coloring
# ----------------------------------------------------------------------
def misra_gries_edge_coloring(graph: Graph) -> EdgeColoring:
    """A proper edge coloring with at most Δ+1 colors (Misra & Gries 1992).

    Colors are ``0 .. Δ``.  This is a centralized substrate routine (the
    paper's inputs *carry* an edge coloring; producing one is not part of
    the measured distributed computation).
    """
    delta = graph.max_degree
    num_colors = delta + 1
    color: Dict[Tuple[int, int], int] = {}
    # used[v][c] = neighbor joined to v by an edge of color c, or -1.
    used: List[List[int]] = [[-1] * num_colors for _ in range(graph.num_vertices)]

    def free_color(v: int) -> int:
        for c in range(num_colors):
            if used[v][c] == -1:
                return c
        raise AssertionError("vertex has no free color — degree bound violated")

    def is_free(v: int, c: int) -> bool:
        return used[v][c] == -1

    def set_color(u: int, v: int, c: Optional[int]) -> None:
        old = color.get(edge_key(u, v))
        if old is not None:
            used[u][old] = -1
            used[v][old] = -1
        if c is None:
            color.pop(edge_key(u, v), None)
        else:
            color[edge_key(u, v)] = c
            used[u][c] = v
            used[v][c] = u

    def invert_cd_path(start: int, c: int, d: int) -> None:
        """Flip colors along the maximal path from ``start`` alternating
        colors d, c, d, c, ... (starting with an edge of color d)."""
        v = start
        want = d
        path: List[Tuple[int, int]] = []
        while used[v][want] != -1:
            u = used[v][want]
            path.append((v, u))
            v = u
            want = c if want == d else d
        # Uncolor the path, then recolor with swapped colors.
        swaps = []
        for x, y in path:
            old = color[edge_key(x, y)]
            swaps.append((x, y, c if old == d else d))
            set_color(x, y, None)
        for x, y, new in swaps:
            set_color(x, y, new)

    for u, v in graph.edges():
        # Build a maximal fan of u starting at v.
        fan = [v]
        in_fan = {v}
        grown = True
        while grown:
            grown = False
            tail = fan[-1]
            for w in graph.neighbors(u):
                if w in in_fan:
                    continue
                cw = color.get(edge_key(u, w))
                if cw is not None and is_free(tail, cw):
                    fan.append(w)
                    in_fan.add(w)
                    grown = True
                    break
        c = free_color(u)
        d = free_color(fan[-1])
        if not is_free(u, d):
            invert_cd_path(u, c, d)
        # After inversion d is free at u.  Choose w in the fan such that
        # d is free at w AND the prefix fan[0..w] is still a valid fan
        # under the post-inversion colors (the Misra-Gries lemma
        # guarantees such a w exists).
        w_index = None
        for j, x in enumerate(fan):
            if not is_free(x, d):
                continue
            prefix_ok = True
            for i in range(j):
                edge_color = color.get(edge_key(u, fan[i + 1]))
                if edge_color is None or not is_free(fan[i], edge_color):
                    prefix_ok = False
                    break
            if prefix_ok:
                w_index = j
                break
        if w_index is None:
            raise AssertionError(
                "Misra-Gries invariant violated: no rotatable fan prefix"
            )
        # Rotate the fan prefix: shift colors down toward v.  Uncolor
        # first, then recolor — a naive in-place shift would transiently
        # give two edges at u the same color and desync the used-table.
        shifted = [
            color[edge_key(u, fan[i + 1])] for i in range(w_index)
        ]
        for i in range(w_index + 1):
            set_color(u, fan[i], None)
        for i in range(w_index):
            set_color(u, fan[i], shifted[i])
        set_color(u, fan[w_index], d)

    return color


# ----------------------------------------------------------------------
# Δ-edge coloring of Δ-regular bipartite graphs via matchings
# ----------------------------------------------------------------------
def bipartite_sides(graph: Graph) -> Optional[Tuple[Set[int], Set[int]]]:
    """Two-color the graph if bipartite, returning the two sides, else
    ``None``."""
    side: Dict[int, int] = {}
    for start in graph.vertices():
        if start in side:
            continue
        side[start] = 0
        stack = [start]
        while stack:
            x = stack.pop()
            for y in graph.neighbors(x):
                if y not in side:
                    side[y] = 1 - side[x]
                    stack.append(y)
                elif side[y] == side[x]:
                    return None
    left = {v for v, s in side.items() if s == 0}
    right = {v for v, s in side.items() if s == 1}
    return left, right


def bipartite_regular_edge_coloring(graph: Graph) -> EdgeColoring:
    """A proper Δ-edge coloring of a Δ-regular bipartite graph.

    König's theorem: a Δ-regular bipartite graph decomposes into Δ
    perfect matchings.  We peel matchings one at a time with augmenting
    paths (Kuhn's algorithm on the residual graph).

    Raises
    ------
    GraphError
        If the graph is not bipartite or not regular.
    """
    if graph.num_edges == 0:
        return {}
    sides = bipartite_sides(graph)
    if sides is None:
        raise GraphError("graph is not bipartite")
    if not graph.is_regular():
        raise GraphError("graph is not regular")
    left = sorted(sides[0])
    degree = graph.degree(left[0]) if left else 0

    remaining: Dict[int, List[int]] = {
        v: list(graph.neighbors(v)) for v in graph.vertices()
    }
    coloring: EdgeColoring = {}
    for c in range(degree):
        match = _perfect_matching_on_left(left, remaining)
        for u, v in match.items():
            coloring[edge_key(u, v)] = c
            remaining[u].remove(v)
            remaining[v].remove(u)
    return coloring


def _perfect_matching_on_left(
    left: List[int], adjacency: Dict[int, List[int]]
) -> Dict[int, int]:
    """A matching saturating ``left`` in the bipartite residual graph
    given by ``adjacency`` (Kuhn's augmenting-path algorithm).  In a
    regular residual graph a perfect matching always exists."""
    match_right: Dict[int, int] = {}

    def try_augment(u: int, visited: Set[int]) -> bool:
        for v in adjacency[u]:
            if v in visited:
                continue
            visited.add(v)
            if v not in match_right or try_augment(match_right[v], visited):
                match_right[v] = u
                return True
        return False

    for u in left:
        if not try_augment(u, set()):
            raise GraphError(
                "no perfect matching in residual graph — input was not a "
                "regular bipartite graph"
            )
    return {u: v for v, u in match_right.items()}

"""Graph substrate: port-numbered graphs, generators, edge colorings."""

from . import generators, io, metrics
from .edge_coloring import (
    EdgeColoring,
    bipartite_regular_edge_coloring,
    bipartite_sides,
    edge_key,
    is_proper_edge_coloring,
    misra_gries_edge_coloring,
    num_edge_colors,
    ports_coloring,
)
from .graph import Graph, GraphError, from_edge_list

__all__ = [
    "EdgeColoring",
    "Graph",
    "GraphError",
    "bipartite_regular_edge_coloring",
    "bipartite_sides",
    "edge_key",
    "from_edge_list",
    "generators",
    "io",
    "metrics",
    "is_proper_edge_coloring",
    "misra_gries_edge_coloring",
    "num_edge_colors",
    "ports_coloring",
]

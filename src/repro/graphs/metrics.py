"""Structural graph metrics used by the experiments and by Remark 1.

The paper's Remark 1 notes that Theorem 3 (and the toolbox generally)
works when complexities depend on quantitative graph parameters beyond
n and Δ — local sparsity, arboricity/degeneracy, neighborhood growth.
These estimators supply those parameters for instance characterization
and for choosing peeling thresholds (Theorem 9 generalizes to
arboricity-λ graphs with threshold ~2λ).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import Graph


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    histogram: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def degeneracy(graph: Graph) -> Tuple[int, List[int]]:
    """The degeneracy d and a d-elimination order (min-degree peeling).

    Every subgraph of the graph has a vertex of degree <= d; the
    returned order lists vertices so that each has <= d neighbors
    *later* in the order.  Degeneracy sandwiches arboricity:
    arboricity <= degeneracy <= 2·arboricity − 1.
    """
    n = graph.num_vertices
    remaining_degree = [graph.degree(v) for v in range(n)]
    removed = [False] * n
    # Bucket queue over degrees.
    buckets: Dict[int, set] = {}
    for v in range(n):
        buckets.setdefault(remaining_degree[v], set()).add(v)
    order: List[int] = []
    best = 0
    for _ in range(n):
        d = 0
        while d not in buckets or not buckets[d]:
            d += 1
        v = min(buckets[d])
        buckets[d].discard(v)
        removed[v] = True
        order.append(v)
        best = max(best, d)
        for u in graph.neighbors(v):
            if removed[u]:
                continue
            old = remaining_degree[u]
            buckets[old].discard(u)
            remaining_degree[u] = old - 1
            buckets.setdefault(old - 1, set()).add(u)
    return best, order


def arboricity_bounds(graph: Graph) -> Tuple[int, int]:
    """(lower, upper) bounds on the arboricity.

    Lower: the Nash-Williams density bound on the whole graph,
    ``ceil(m / (n - 1))`` (for n >= 2).  Upper: the degeneracy (every
    d-degenerate graph decomposes into d forests).
    """
    n = graph.num_vertices
    m = graph.num_edges
    lower = 0
    if n >= 2 and m > 0:
        lower = -(-m // (n - 1))  # ceil division
    upper, _ = degeneracy(graph)
    return max(lower, 1 if m else 0), max(upper, lower)


def peeling_profile(graph: Graph, threshold: int) -> List[int]:
    """Sizes of the layers produced by iterated <=-threshold peeling —
    the H-partition structure of Theorem 9, computed centrally for
    instance characterization (the distributed version is
    :class:`repro.algorithms.tree_coloring.PeelingAlgorithm`).

    Raises
    ------
    ValueError
        If peeling stalls (threshold below the graph's degeneracy).
    """
    n = graph.num_vertices
    active = [True] * n
    degree = [graph.degree(v) for v in range(n)]
    remaining = n
    sizes: List[int] = []
    while remaining:
        peel = [
            v for v in range(n) if active[v] and degree[v] <= threshold
        ]
        if not peel:
            raise ValueError(
                f"peeling stalled with {remaining} vertices left; "
                f"threshold {threshold} is below the degeneracy"
            )
        for v in peel:
            active[v] = False
            for u in graph.neighbors(v):
                if active[u]:
                    degree[u] -= 1
        remaining -= len(peel)
        sizes.append(len(peel))
    return sizes


def ball_growth(graph: Graph, radius: int, samples: int = 16) -> List[float]:
    """Average ball sizes |N^r(v)| for r = 0..radius over evenly spaced
    sample vertices — the neighborhood-growth parameter of [28]."""
    n = graph.num_vertices
    if n == 0:
        return [0.0] * (radius + 1)
    step = max(1, n // samples)
    chosen = list(range(0, n, step))
    totals = [0] * (radius + 1)
    for v in chosen:
        dist = graph.bfs_distances(v, cutoff=radius)
        for r in range(radius + 1):
            totals[r] += sum(1 for d in dist.values() if d <= r)
    return [t / len(chosen) for t in totals]

"""Port-numbered graph structure used by the LOCAL simulation engine.

The LOCAL model's communication network is an undirected graph in which
every vertex numbers its incident edges with *ports* ``0 .. deg(v)-1``.
A vertex addresses its neighbors only through port numbers; it does not
a priori know the identity of the vertex on the other end of a port.

:class:`Graph` stores, for every vertex, the ordered list of incident
half-edges.  For vertex ``v`` and port ``p`` we record both the neighbor
``u = endpoint(v, p)`` and the *reverse port* ``q = reverse_port(v, p)``
such that ``endpoint(u, q) == v``.  Reverse ports let the engine route a
message sent by ``v`` on port ``p`` into the correct inbox slot of ``u``,
exactly as a physical bidirectional link would.

Graphs are immutable after construction.  All vertices are integers
``0 .. n-1``; these indices are *simulation handles* and are never exposed
to DetLOCAL/RandLOCAL algorithms as identifiers (IDs are assigned
separately, see :mod:`repro.core.ids`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

Edge = Tuple[int, int]


class GraphError(ValueError):
    """Raised when a graph is constructed from invalid input."""


class Graph:
    """An immutable undirected port-numbered graph.

    Parameters
    ----------
    n:
        Number of vertices.  Vertices are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops and parallel edges are
        rejected: the LOCAL-model problems in this project are defined on
        simple graphs.

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)])
    >>> g.degree(1)
    2
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_n", "_adj", "_rev", "_m", "_edge_list")

    def __init__(self, n: int, edges: Iterable[Edge]):
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        adj: List[List[int]] = [[] for _ in range(n)]
        rev: List[List[int]] = [[] for _ in range(n)]
        seen = set()
        edge_list: List[Edge] = []
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self loop at vertex {u} is not allowed")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise GraphError(f"parallel edge ({u}, {v}) is not allowed")
            seen.add(key)
            edge_list.append(key)
            pu = len(adj[u])
            pv = len(adj[v])
            adj[u].append(v)
            adj[v].append(u)
            rev[u].append(pv)
            rev[v].append(pu)
        self._n = n
        self._adj = adj
        self._rev = rev
        self._m = len(edge_list)
        self._edge_list = edge_list

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._m

    def vertices(self) -> range:
        """All vertices, as a range."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """All edges as ``(u, v)`` with ``u < v``, in insertion order."""
        return iter(self._edge_list)

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adj[v])

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return max(len(a) for a in self._adj)

    def neighbors(self, v: int) -> Sequence[int]:
        """Neighbors of ``v`` in port order.  Do not mutate the result."""
        return self._adj[v]

    def endpoint(self, v: int, port: int) -> int:
        """The vertex at the other end of ``v``'s port ``port``."""
        return self._adj[v][port]

    def reverse_port(self, v: int, port: int) -> int:
        """The port of ``endpoint(v, port)`` that leads back to ``v``."""
        return self._rev[v][port]

    def reverse_ports(self, v: int) -> List[int]:
        """All reverse ports of ``v`` at once: element ``p`` is the port
        of ``endpoint(v, p)`` that leads back to ``v``.  Returns a fresh
        list (callers may keep or mutate it)."""
        return list(self._rev[v])

    def port_of(self, v: int, u: int) -> int:
        """The port of ``v`` whose endpoint is ``u``.

        Raises
        ------
        GraphError
            If ``u`` is not a neighbor of ``v``.
        """
        try:
            return self._adj[v].index(u)
        except ValueError:
            raise GraphError(f"{u} is not a neighbor of {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adj[u]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:
        return hash((self._n, tuple(tuple(a) for a in self._adj)))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_regular(self, d: Optional[int] = None) -> bool:
        """Whether every vertex has the same degree (``d`` if given)."""
        if self._n == 0:
            return True
        degrees = {len(a) for a in self._adj}
        if len(degrees) != 1:
            return False
        if d is None:
            return True
        return degrees == {d}

    def connected_components(self) -> List[List[int]]:
        """Connected components, each a sorted vertex list."""
        seen = [False] * self._n
        components: List[List[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            comp = []
            while stack:
                v = stack.pop()
                comp.append(v)
                for u in self._adj[v]:
                    if not seen[u]:
                        seen[u] = True
                        stack.append(u)
            comp.sort()
            components.append(comp)
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        return len(self.connected_components()) <= 1

    def is_forest(self) -> bool:
        """Whether the graph is acyclic."""
        return self._m == self._n - len(self.connected_components())

    def is_tree(self) -> bool:
        """Whether the graph is connected and acyclic."""
        return self.is_forest() and self.is_connected()

    def bfs_distances(self, source: int, cutoff: Optional[int] = None) -> Dict[int, int]:
        """Map of vertex -> distance from ``source``, up to ``cutoff``."""
        dist = {source: 0}
        frontier = [source]
        d = 0
        while frontier and (cutoff is None or d < cutoff):
            d += 1
            nxt = []
            for v in frontier:
                for u in self._adj[v]:
                    if u not in dist:
                        dist[u] = d
                        nxt.append(u)
            frontier = nxt
        return dist

    def ball(self, center: int, radius: int) -> List[int]:
        """Sorted vertices within distance ``radius`` of ``center``."""
        return sorted(self.bfs_distances(center, cutoff=radius))

    def girth(self) -> Optional[int]:
        """Length of the shortest cycle, or ``None`` if acyclic.

        Runs one truncated BFS per vertex; exact for simple graphs.
        """
        cycle = self.shortest_cycle()
        return len(cycle) if cycle is not None else None

    def shortest_cycle(
        self, shorter_than: Optional[int] = None
    ) -> Optional[List[int]]:
        """A shortest cycle as a vertex list, or ``None`` if acyclic.

        One truncated BFS per root; when a non-tree edge closes a cycle,
        the witness is reconstructed through the BFS-tree paths (trimmed
        at their meeting point, so the reported length is exact).

        With ``shorter_than`` set, only cycles of length strictly below
        it are searched for (``None`` returned otherwise) — the BFS depth
        is then bounded, which is much faster on high-girth graphs.
        """
        best: Optional[List[int]] = None
        for root in range(self._n):
            dist = {root: 0}
            parent = {root: -1}
            frontier = [root]
            while frontier:
                bound = shorter_than
                if best is not None and (bound is None or len(best) < bound):
                    bound = len(best)
                if bound is not None and 2 * dist[frontier[0]] >= bound:
                    break
                nxt = []
                for v in frontier:
                    for u in self._adj[v]:
                        if u not in dist:
                            dist[u] = dist[v] + 1
                            parent[u] = v
                            nxt.append(u)
                        elif parent[v] != u and dist[u] >= dist[v]:
                            cycle = _close_cycle(parent, v, u)
                            if (
                                cycle is not None
                                and (best is None or len(cycle) < len(best))
                                and (
                                    shorter_than is None
                                    or len(cycle) < shorter_than
                                )
                            ):
                                best = cycle
                frontier = nxt
        return best

    def short_cycles(self, shorter_than: int) -> List[List[int]]:
        """A greedy batch of vertex-disjoint cycles, each of length
        strictly below ``shorter_than``.

        Used by girth repair: fixing a whole batch between rescans is
        much cheaper than one full scan per cycle.  The batch is not
        guaranteed maximal or shortest-first.
        """
        blocked = [False] * self._n
        found: List[List[int]] = []
        for root in range(self._n):
            if blocked[root]:
                continue
            dist = {root: 0}
            parent = {root: -1}
            frontier = [root]
            witness: Optional[List[int]] = None
            while frontier and witness is None:
                if 2 * dist[frontier[0]] >= shorter_than:
                    break
                nxt = []
                for v in frontier:
                    if blocked[v]:
                        continue
                    for u in self._adj[v]:
                        if blocked[u]:
                            continue
                        if u not in dist:
                            dist[u] = dist[v] + 1
                            parent[u] = v
                            nxt.append(u)
                        elif parent[v] != u and dist[u] >= dist[v]:
                            cycle = _close_cycle(parent, v, u)
                            if cycle is not None and len(cycle) < shorter_than:
                                witness = cycle
                                break
                    if witness is not None:
                        break
                frontier = nxt
            if witness is not None:
                for x in witness:
                    blocked[x] = True
                found.append(witness)
        return found

    def diameter(self) -> int:
        """Diameter of a connected graph.

        Raises
        ------
        GraphError
            If the graph is empty or disconnected.
        """
        if self._n == 0:
            raise GraphError("diameter of the empty graph is undefined")
        if not self.is_connected():
            raise GraphError("diameter of a disconnected graph is undefined")
        best = 0
        for v in range(self._n):
            best = max(best, max(self.bfs_distances(v).values()))
        return best

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, keep: Iterable[int]) -> Tuple["Graph", List[int]]:
        """The subgraph induced by ``keep``.

        Returns
        -------
        (subgraph, originals):
            ``originals[i]`` is the original index of subgraph vertex ``i``.
        """
        originals = sorted(set(keep))
        index = {v: i for i, v in enumerate(originals)}
        edges = [
            (index[u], index[v])
            for u, v in self._edge_list
            if u in index and v in index
        ]
        return Graph(len(originals), edges), originals

    def power_graph(self, k: int) -> "Graph":
        """The graph ``G^k``: same vertices, edges between distinct
        vertices at distance at most ``k`` in ``G``."""
        if k < 1:
            raise GraphError(f"power must be >= 1, got {k}")
        edges = []
        for v in range(self._n):
            for u, d in self.bfs_distances(v, cutoff=k).items():
                if u > v and d >= 1:
                    edges.append((v, u))
        return Graph(self._n, edges)

    def distance_k_graph(self, k: int) -> "Graph":
        """The graph with edges between vertices at distance *exactly* k."""
        if k < 1:
            raise GraphError(f"distance must be >= 1, got {k}")
        edges = []
        for v in range(self._n):
            for u, d in self.bfs_distances(v, cutoff=k).items():
                if u > v and d == k:
                    edges.append((v, u))
        return Graph(self._n, edges)


def _close_cycle(
    parent: Dict[int, int], v: int, u: int
) -> Optional[List[int]]:
    """The simple cycle formed by BFS-tree paths of ``v`` and ``u`` plus
    the non-tree edge ``{v, u}``, trimmed at the paths' meeting point."""

    def path_to_root(x: int) -> List[int]:
        out = [x]
        while parent[x] != -1:
            x = parent[x]
            out.append(x)
        return out

    pv = path_to_root(v)
    pu = path_to_root(u)
    in_pv = {x: i for i, x in enumerate(pv)}
    # First vertex of u's path that also lies on v's path is the meeting
    # point (LCA in the BFS tree).
    for j, x in enumerate(pu):
        if x in in_pv:
            i = in_pv[x]
            cycle = pv[: i + 1] + pu[:j][::-1]
            return cycle if len(cycle) >= 3 else None
    return None


def from_edge_list(edges: Iterable[Edge], n: Optional[int] = None) -> Graph:
    """Build a :class:`Graph` from an edge list, inferring ``n`` if absent."""
    edge_list = list(edges)
    if n is None:
        n = 1 + max((max(u, v) for u, v in edge_list), default=-1)
    return Graph(n, edge_list)

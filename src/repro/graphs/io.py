"""Graph and experiment-artifact serialization.

Reproducibility plumbing: instances and labelings can be written to a
portable JSON format so an experiment's exact inputs travel with its
recorded outputs (the benchmarks keep only printed tables; tests and
downstream users can persist full instances).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Union

from .edge_coloring import EdgeColoring, edge_key
from .graph import Graph

PathLike = Union[str, pathlib.Path]

#: Format tag written into every file, for forward compatibility.
FORMAT = "repro-graph-v1"


def graph_to_dict(
    graph: Graph,
    edge_coloring: Optional[EdgeColoring] = None,
    labeling: Optional[List[Any]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A JSON-ready description of a graph and optional attachments.

    Edge order is preserved, so port numbers survive a round trip —
    essential, since port-numbered views are part of the model.
    """
    payload: Dict[str, Any] = {
        "format": FORMAT,
        "n": graph.num_vertices,
        "edges": [list(e) for e in graph.edges()],
    }
    if edge_coloring is not None:
        payload["edge_coloring"] = [
            [u, v, color] for (u, v), color in sorted(edge_coloring.items())
        ]
    if labeling is not None:
        payload["labeling"] = _encode_labels(labeling)
    if metadata:
        payload["metadata"] = dict(metadata)
    return payload


def graph_from_dict(payload: Dict[str, Any]) -> Graph:
    """Rebuild the graph (attachments via the ``load_*`` helpers)."""
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"unsupported format {payload.get('format')!r}; expected {FORMAT}"
        )
    return Graph(payload["n"], [tuple(e) for e in payload["edges"]])


def edge_coloring_from_dict(payload: Dict[str, Any]) -> EdgeColoring:
    """Extract the edge coloring (empty dict if absent)."""
    return {
        edge_key(u, v): color
        for u, v, color in payload.get("edge_coloring", [])
    }


def labeling_from_dict(payload: Dict[str, Any]) -> Optional[List[Any]]:
    """Extract the vertex labeling, or ``None`` if absent."""
    if "labeling" not in payload:
        return None
    return _decode_labels(payload["labeling"])


def save_graph(
    path: PathLike,
    graph: Graph,
    edge_coloring: Optional[EdgeColoring] = None,
    labeling: Optional[List[Any]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a graph (plus attachments) as JSON."""
    payload = graph_to_dict(graph, edge_coloring, labeling, metadata)
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def load_graph(path: PathLike) -> Dict[str, Any]:
    """Read a saved file; returns the payload dict (use the ``*_from_
    dict`` helpers to materialize the pieces)."""
    return json.loads(pathlib.Path(path).read_text())


def _encode_labels(labeling: List[Any]) -> List[Any]:
    """JSON-encode labels, preserving tuples (JSON would silently turn
    them into lists)."""
    encoded = []
    for label in labeling:
        if isinstance(label, tuple):
            encoded.append({"t": list(label)})
        else:
            encoded.append(label)
    return encoded


def _decode_labels(encoded: List[Any]) -> List[Any]:
    decoded = []
    for item in encoded:
        if isinstance(item, dict) and set(item) == {"t"}:
            decoded.append(tuple(item["t"]))
        else:
            decoded.append(item)
    return decoded

"""Command-line front door: run the paper's experiments from a shell.

``python -m repro.cli list`` shows the available demos;
``python -m repro.cli separation --delta 9 --sizes 100,2000,20000``
runs the headline experiment and prints its table.  Everything the CLI
does is a thin wrapper over the library — the same calls the examples
and benchmarks make.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from pathlib import Path
from typing import List, Optional

from .algorithms import (
    barenboim_elkin_coloring,
    delta_plus_one_coloring,
    deterministic_mis,
    luby_mis,
    pettie_su_tree_coloring,
)
from .algorithms.delta55 import chang_kopelowitz_pettie_coloring
from .analysis import render_table
from .core.errors import ReproError
from .graphs.generators import (
    complete_regular_tree_with_size,
    random_regular_graph,
    random_tree_bounded_degree,
    random_tree_preferential,
)
from .lcl import KColoring, MaximalIndependentSet
from .lowerbounds import corollary2_rounds, theorem5_rounds


def _sizes(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x]


def _rand_delta_coloring(tree, delta, seed):
    """Theorem 10 for Δ >= 9, the Theorem 11 machinery below that."""
    if delta >= 9:
        return pettie_su_tree_coloring(tree, seed=seed)
    return chang_kopelowitz_pettie_coloring(
        tree, seed=seed, min_delta=delta
    )


def cmd_separation(args: argparse.Namespace) -> int:
    delta = args.delta
    rows = []
    checker = KColoring(delta)
    for target in _sizes(args.sizes):
        tree = complete_regular_tree_with_size(delta, target)
        n = tree.num_vertices
        det = barenboim_elkin_coloring(tree, delta)
        rand = _rand_delta_coloring(tree, delta, args.seed)
        checker.check(tree, det.labeling)
        checker.check(tree, rand.labeling)
        rows.append(
            [
                n,
                det.rounds,
                rand.rounds,
                f"{theorem5_rounds(n, delta):.1f}",
                f"{corollary2_rounds(n, delta):.1f}",
            ]
        )
    print(f"Δ-coloring complete Δ-regular trees, Δ = {delta}")
    print(
        render_table(
            ["n", "det", "rand", "det LB", "rand LB"], rows
        )
    )
    return 0


def cmd_coloring(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    tree = random_tree_preferential(
        args.n, args.delta, rng, seed_hub=True
    )
    delta = tree.max_degree
    rand = _rand_delta_coloring(tree, delta, args.seed)
    KColoring(delta).check(tree, rand.labeling)
    stats = rand.log.stats
    print(
        render_table(
            ["metric", "value"],
            [
                ["n", tree.num_vertices],
                ["Δ", delta],
                ["rounds", rand.rounds],
                ["bad vertices after phase 1", stats.bad_vertices],
                ["largest shattered component", stats.max_component],
            ],
        )
    )
    return 0


def cmd_mis(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    g = random_regular_graph(args.n, args.delta, rng)
    problem = MaximalIndependentSet()
    a = luby_mis(g, seed=args.seed)
    b = deterministic_mis(g)
    problem.check(g, a.labeling)
    problem.check(g, b.labeling)
    print(
        render_table(
            ["algorithm", "rounds"],
            [["Luby (RandLOCAL)", a.rounds], ["coloring-based (DetLOCAL)", b.rounds]],
        )
    )
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    g = random_regular_graph(args.n, args.delta, rng)
    report = delta_plus_one_coloring(g)
    KColoring(args.delta + 1).check(g, report.labeling)
    print(
        render_table(
            ["phase", "rounds"],
            sorted(report.breakdown.items()),
        )
    )
    print(f"total: {report.rounds} rounds")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import perf

    report = perf.run_perf_suite(
        workers=args.workers,
        include_reference=not args.no_reference,
        full=args.full,
    )
    rows = []
    for name, metric in sorted(report["metrics"].items()):
        normalized = metric["normalized"]
        rows.append(
            [
                name,
                f"{metric['value']:.3f}",
                f"{normalized:.3f}" if normalized is not None else "-",
            ]
        )
    print(
        render_table(["metric", "value", "normalized/Mops"], rows)
    )
    print(
        f"calibration: {report['calibration_ops_per_sec']:.0f} ops/s, "
        f"{report['recorded']['cpu_count']} cpu(s)"
    )
    tracing = report["raw"].get("tracing_overhead")
    if tracing:
        print(
            "tracing overhead (recorded, not gated): "
            f"jsonl {tracing['tracing_overhead_ratio']:.2f}x, "
            f"metrics {tracing['metrics_overhead_ratio']:.2f}x "
            "vs bare engine"
        )
    backends = report["raw"].get("backends")
    if backends:
        others = ", ".join(
            f"{name} {timing['speedup_vs_fast']:.2f}x"
            for name, timing in sorted(backends.items())
            if name != "fast"
        )
        print(
            "backend speedups vs fast (ColorBidding, "
            f"n={int(backends['fast']['n'])}): {others}"
        )
    e5_full = report["raw"].get("e5_1e6_vectorized")
    if e5_full:
        print(
            f"E5 n={int(e5_full['n'])}: vectorized "
            f"{e5_full['vectorized_seconds']:.1f}s vs fast "
            f"{e5_full['fast_seconds']:.1f}s "
            f"({e5_full['speedup_vs_fast']:.1f}x)"
        )
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        perf.save_baseline(report, args.output)
        print(f"report written to {args.output}")
    if args.update:
        perf.save_baseline(report, args.update)
        print(f"baseline refreshed at {args.update}")
    if args.compare:
        if not Path(args.compare).exists():
            print(
                f"repro bench: baseline does not exist: {args.compare}",
                file=sys.stderr,
            )
            return 2
        baseline = perf.load_baseline(args.compare)
        rows_cmp = perf.compare_to_baseline(
            report, baseline, tolerance=args.tolerance
        )
        print(perf.render_comparison(rows_cmp, args.tolerance))
        if perf.has_regression(rows_cmp):
            return 1
    return 0


def _traced_workload(args: argparse.Namespace, observer) -> None:
    """Run the chosen demo workload with ``observer`` attached to
    every run_local call it makes."""
    from .core import observe_runs

    rng = random.Random(args.seed)
    with observe_runs(observer):
        if args.workload == "coloring":
            tree = random_tree_bounded_degree(args.n, args.delta, rng)
            _rand_delta_coloring(tree, tree.max_degree, args.seed)
        else:
            g = random_regular_graph(args.n, args.delta, rng)
            luby_mis(g, seed=args.seed)


def cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .core.engine import observe_runs
    from .obs import JsonlTraceObserver

    if getattr(args, "trace_command", None) == "query":
        return cmd_trace_query(args)
    if args.output is None:
        print(
            "repro trace: --output PATH is required in record mode "
            "(or use 'repro trace query' to analyze an existing trace)",
            file=sys.stderr,
        )
        return 2
    if args.n < 2 or args.delta < 2:
        print(
            f"repro trace: need n >= 2 and delta >= 2, got "
            f"n={args.n} delta={args.delta}",
            file=sys.stderr,
        )
        return 2
    Path(args.output).parent.mkdir(parents=True, exist_ok=True)
    observer = JsonlTraceObserver(
        args.output,
        payload_values=args.values,
        topology=not args.no_topology,
        node_steps=args.steps,
    )
    # Plane-2 sidecars ride along without touching the deterministic
    # trace bytes: timing goes to its own JSONL, progress to stderr.
    sidecars = []
    if args.timing_sidecar:
        from .obs import TimingSidecarObserver

        Path(args.timing_sidecar).parent.mkdir(
            parents=True, exist_ok=True
        )
        sidecars.append(TimingSidecarObserver(args.timing_sidecar))
    if args.progress:
        from .obs import ProgressReporter

        sidecars.append(ProgressReporter(label="trace"))
    try:
        with observe_runs(*sidecars) if sidecars else _null_context():
            _traced_workload(args, observer)
    finally:
        observer.close()
        for sidecar in sidecars:
            if hasattr(sidecar, "close"):
                sidecar.close()
    print(
        f"trace written: {args.output} "
        f"({observer.events_written} events, workload={args.workload}, "
        f"n={args.n}, delta={args.delta}, seed={args.seed})"
    )
    if args.timing_sidecar:
        print(f"timing sidecar written: {args.timing_sidecar}")
    return 0


def _null_context():
    import contextlib

    return contextlib.nullcontext()


def cmd_trace_query(args: argparse.Namespace) -> int:
    import json as _json

    from .obs import iter_trace
    from .obs.query import (
        aggregate_trace,
        dump_jsonl,
        filter_events,
        merge_aggregates,
        render_aggregate,
        render_timeline,
        round_timeline,
        vertex_history,
    )

    paths = args.traces
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(
                f"repro trace query: trace does not exist: {p}",
                file=sys.stderr,
            )
        return 2
    if args.op != "aggregate" and len(paths) > 1:
        print(
            f"repro trace query: --op {args.op} takes exactly one "
            "trace (cross-trace merge is aggregate-only)",
            file=sys.stderr,
        )
        return 2
    out = sys.stdout
    out_file = None
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        out_file = open(args.output, "w", encoding="utf-8")
        out = out_file
    try:
        if args.op == "aggregate":
            # One streaming pass per trace; never loads a trace whole.
            aggregates = [
                aggregate_trace(iter_trace(p), run=args.run)
                for p in paths
            ]
            merged = (
                merge_aggregates(aggregates)
                if len(aggregates) > 1
                else aggregates[0]
            )
            if args.format == "json":
                out.write(_json.dumps(merged, sort_keys=True))
                out.write("\n")
            else:
                out.write(render_aggregate(merged))
                out.write("\n")
        elif args.op == "timeline":
            rows = round_timeline(
                iter_trace(paths[0]),
                run=args.run if args.run is not None else 0,
            )
            if args.format == "json":
                out.write(_json.dumps(rows))
                out.write("\n")
            else:
                out.write(render_timeline(rows))
                out.write("\n")
        elif args.op == "vertex":
            if args.vertex is None:
                print(
                    "repro trace query: --op vertex needs --vertex V",
                    file=sys.stderr,
                )
                return 2
            history = vertex_history(
                iter_trace(paths[0]),
                args.vertex,
                run=args.run if args.run is not None else 0,
            )
            dump_jsonl(history, out)
        else:  # filter
            count = dump_jsonl(
                filter_events(
                    iter_trace(paths[0]),
                    run=args.run,
                    kinds=args.kind or None,
                    vertex=args.vertex,
                    round_min=args.round_min,
                    round_max=args.round_max,
                ),
                out,
            )
            if out_file is not None:
                print(f"{count} matching event(s)")
    except ValueError as exc:
        print(f"repro trace query: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: that is a normal way
        # to end a streaming query, not an error.  Point stdout at
        # /dev/null so interpreter-exit flushing cannot raise again.
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        if out_file is not None:
            out_file.close()
    if out_file is not None:
        print(f"query output written to {args.output}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from .obs import profile_trace, render_profile_report

    if args.trace is not None:
        trace_path = args.trace
        if not Path(trace_path).exists():
            print(
                f"repro profile: trace does not exist: {trace_path}",
                file=sys.stderr,
            )
            return 2
        cleanup = False
    else:
        # Driver mode: the Theorem 10 randomized Δ-coloring run whose
        # Phase 1 the profiler measures (BAD = unresolved sentinel).
        if args.delta < 9:
            print(
                "repro profile: driver mode needs --delta >= 9 "
                "(Theorem 10's color-bidding phase); "
                "use --trace to profile any recorded run",
                file=sys.stderr,
            )
            return 2
        if args.n < 2:
            print(
                f"repro profile: need n >= 2, got n={args.n}",
                file=sys.stderr,
            )
            return 2
        from .obs import JsonlTraceObserver

        if args.keep_trace:
            trace_path = args.keep_trace
            Path(trace_path).parent.mkdir(parents=True, exist_ok=True)
            cleanup = False
        else:
            fd, trace_path = tempfile.mkstemp(
                prefix="repro-profile-", suffix=".jsonl"
            )
            import os

            os.close(fd)
            cleanup = True
        observer = JsonlTraceObserver(
            trace_path, resume=bool(args.resume)
        )
        sidecars = []
        if args.progress:
            from .obs import ProgressReporter

            sidecars.append(ProgressReporter(label="profile"))
        if args.timing_sidecar:
            from .obs import TimingSidecarObserver

            Path(args.timing_sidecar).parent.mkdir(
                parents=True, exist_ok=True
            )
            sidecars.append(
                TimingSidecarObserver(args.timing_sidecar)
            )
        try:
            import contextlib

            from .core import observe_runs

            scope = contextlib.nullcontext()
            if args.checkpoint_dir:
                from .core.checkpoint import checkpointing

                scope = checkpointing(
                    args.checkpoint_dir,
                    every_rounds=args.checkpoint_every,
                    resume=args.resume,
                )
            tree = random_tree_bounded_degree(
                args.n, args.delta, random.Random(args.seed)
            )
            with scope, observe_runs(observer, *sidecars):
                pettie_su_tree_coloring(tree, seed=args.seed)
        finally:
            observer.close()
            for sidecar in sidecars:
                if hasattr(sidecar, "close"):
                    sidecar.close()
    try:
        from .algorithms.rand_tree_coloring import BAD

        unresolved = BAD if args.trace is None else args.unresolved
        profile = profile_trace(
            trace_path,
            run=args.run,
            threshold=args.threshold,
            **(
                {"unresolved": unresolved}
                if unresolved is not None
                else {}
            ),
        )
    except ValueError as exc:
        print(f"repro profile: {exc}", file=sys.stderr)
        return 2
    finally:
        if cleanup:
            import os

            os.unlink(trace_path)
    report = render_profile_report(profile)
    print(report)
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
            fh.write("\n")
        print(f"report written to {args.output}")
    return 0 if profile.ok() else 1


def cmd_faults(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .faults.experiment import failure_rate_experiment

    try:
        rates = [float(x) for x in args.rates.split(",") if x]
    except ValueError:
        print(
            f"repro faults: --rates must be comma-separated floats, "
            f"got {args.rates!r}",
            file=sys.stderr,
        )
        return 2
    progress = None
    if args.progress:
        from .obs.timing import sweep_progress_printer

        progress = sweep_progress_printer(label="repro faults")
    try:
        record = failure_rate_experiment(
            n=args.n,
            delta=args.delta,
            rates=rates,
            trials=args.trials,
            kind=args.kind,
            round_budget=args.budget if args.budget > 0 else None,
            workers=args.workers,
            retries=args.retries,
            journal=args.journal,
            progress=progress,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    except ValueError as exc:
        print(f"repro faults: {exc}", file=sys.stderr)
        return 2
    text = record.render()
    print(text)
    _warn_skipped_cells(record)
    if args.output:
        Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.write("\n")
        print(f"report written to {args.output}")
    if args.export_metrics:
        from .obs.export import write_metrics_export

        summary = next(iter(record.telemetry.values()), None)
        if summary is None:
            print(
                "repro faults: no telemetry to export",
                file=sys.stderr,
            )
        else:
            Path(args.export_metrics).parent.mkdir(
                parents=True, exist_ok=True
            )
            fmt = write_metrics_export(summary, args.export_metrics)
            print(
                f"metrics exported to {args.export_metrics} ({fmt})"
            )
    return 0 if record.all_checks_pass else 1


def _warn_skipped_cells(record) -> None:
    """Surface cells a sweep excluded from its aggregates on stderr —
    silent sample shrinkage invalidates probability estimates."""
    for series in record.series:
        skipped = series.skipped
        if skipped:
            print(
                f"repro: warning: {len(skipped)} cell(s) skipped in "
                f"series {series.name!r}: "
                + "; ".join(
                    f"x={o.x} seed={o.seed} [{o.status}] {o.error}"
                    for o in skipped
                ),
                file=sys.stderr,
            )


def cmd_run(args: argparse.Namespace) -> int:
    """One checkpointed workload run, optionally supervised.

    Three modes, chosen by flags:

    - plain: no ``--checkpoint-dir`` — just run the workload;
    - checkpointed: ``--checkpoint-dir`` without supervision flags —
      run in-process under an ambient checkpointing scope (pair with
      ``--resume`` to continue a killed run byte-identically);
    - supervised: any of ``--retries/--deadline/--watchdog/--max-rss``
      — run in a watched child process via :mod:`repro.supervise`,
      retrying from the newest snapshot and degrading on memory
      pressure.
    """
    import contextlib
    import json as _json
    import os

    if args.n < 2 or args.delta < 2:
        print(
            f"repro run: need n >= 2 and delta >= 2, got "
            f"n={args.n} delta={args.delta}",
            file=sys.stderr,
        )
        return 2
    supervised = (
        args.retries > 0
        or args.deadline is not None
        or args.watchdog is not None
        or args.max_rss is not None
    )
    if supervised and not args.checkpoint_dir:
        print(
            "repro run: supervision flags (--retries/--deadline/"
            "--watchdog/--max-rss) need --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print(
            "repro run: --resume needs --checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    # Under supervision every retry is a resume, so the trace sink
    # must never self-truncate; the checkpoint scope's rewind decides
    # whether the prior bytes survive.
    trace_resume = supervised or args.resume

    def execute() -> dict:
        """The workload plus its observers; runs in-process or inside
        the supervised child.  Observers are created *here* so the
        child owns them — a forked file handle shared with the parent
        would interleave writes."""
        from .core import observe_runs

        observers = []
        if args.trace:
            from .obs import JsonlTraceObserver

            Path(args.trace).parent.mkdir(parents=True, exist_ok=True)
            observers.append(
                JsonlTraceObserver(args.trace, resume=trace_resume)
            )
        if args.timing_sidecar:
            from .obs import TimingSidecarObserver

            # Append mode: the supervising parent writes supervisor_*
            # rows to the same sidecar, and each retry keeps the dead
            # attempt's rows (plane-2 is never rewound).
            observers.append(
                TimingSidecarObserver(
                    open(args.timing_sidecar, "a", encoding="utf-8")
                )
            )
        if args.progress:
            from .obs import ProgressReporter

            observers.append(ProgressReporter(label="run"))
        try:
            rng = random.Random(args.seed)
            attach = (
                observe_runs(*observers)
                if observers
                else contextlib.nullcontext()
            )
            with attach:
                if args.workload == "coloring":
                    tree = random_tree_bounded_degree(
                        args.n, args.delta, rng
                    )
                    report = _rand_delta_coloring(
                        tree, tree.max_degree, args.seed
                    )
                else:
                    g = random_regular_graph(args.n, args.delta, rng)
                    report = luby_mis(g, seed=args.seed)
        finally:
            for obs in observers:
                if hasattr(obs, "close"):
                    obs.close()
        # A summary, not the report: the labeling is n entries and a
        # supervised child ships this value up a pipe.
        return {
            "workload": args.workload,
            "n": args.n,
            "delta": args.delta,
            "seed": args.seed,
            "rounds": report.rounds,
            "breakdown": report.breakdown,
        }

    if args.timing_sidecar:
        Path(args.timing_sidecar).parent.mkdir(
            parents=True, exist_ok=True
        )
        if not args.resume and os.path.exists(args.timing_sidecar):
            # One truncation up front; everyone appends after this.
            open(args.timing_sidecar, "w", encoding="utf-8").close()

    if not supervised:
        scope = contextlib.nullcontext()
        if args.checkpoint_dir:
            from .core.checkpoint import checkpointing

            scope = checkpointing(
                args.checkpoint_dir,
                every_rounds=args.checkpoint_every,
                resume=args.resume,
            )
        with scope:
            summary = execute()
        print(_json.dumps(summary, sort_keys=True))
        return 0

    from .supervise import supervise_run

    Path(args.checkpoint_dir).mkdir(parents=True, exist_ok=True)
    if not args.resume:
        # A fresh supervised run must not resurrect an older run's
        # snapshots; the supervisor itself always resumes between its
        # own retries, so stale slots are cleared up front instead.
        for name in sorted(os.listdir(args.checkpoint_dir)):
            if name.endswith((".ckpt", ".done")):
                os.unlink(os.path.join(args.checkpoint_dir, name))
    sidecar = None
    sidecar_stream = None
    if args.timing_sidecar:
        from .obs import TimingSidecarObserver

        sidecar_stream = open(
            args.timing_sidecar, "a", encoding="utf-8"
        )
        sidecar = TimingSidecarObserver(sidecar_stream)
    try:
        outcome = supervise_run(
            execute,
            checkpoint_dir=args.checkpoint_dir,
            every_rounds=args.checkpoint_every,
            retries=args.retries,
            deadline=args.deadline,
            watchdog=args.watchdog,
            max_rss_kb=(
                args.max_rss * 1024
                if args.max_rss is not None
                else None
            ),
            sidecar=sidecar,
        )
    finally:
        if sidecar is not None:
            sidecar.close()
        if sidecar_stream is not None:
            sidecar_stream.close()
    if args.audit:
        from .core.atomicio import atomic_write_text

        Path(args.audit).parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            args.audit,
            _json.dumps(outcome.to_dict(), sort_keys=True, indent=2)
            + "\n",
        )
        print(f"audit record written to {args.audit}")
    if outcome.ok:
        print(
            _json.dumps(
                {**outcome.result, "attempts": outcome.attempts},
                sort_keys=True,
            )
        )
        return 0
    print(
        f"repro run: {outcome.error} "
        f"(after {outcome.attempts} attempt(s))",
        file=sys.stderr,
    )
    return 1


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis.reporting import main as report_main

    return report_main([args.results_dir])


def cmd_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .verify import run_verification, write_counterexamples
    from .verify.relations import standard_relations

    if args.list_relations:
        for relation in standard_relations():
            print(f"{relation.name:<20}  {relation.description}")
        return 0
    try:
        report = run_verification(
            drivers=args.driver or None,
            relation_names=args.relation or None,
            trials=args.trials,
            master_seed=args.seed,
            quick=args.quick,
            shrink=not args.no_shrink,
        )
    except KeyError as exc:
        print(
            f"repro verify: unknown driver or relation: {exc}",
            file=sys.stderr,
        )
        return 2
    for line in report.summary_lines():
        print(line)
    if args.report:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        written = write_counterexamples(report, args.report)
        print(
            f"counterexample report: {args.report} "
            f"({written} entries)"
        )
    if not report.ok:
        for example in report.counterexamples():
            print(
                f"repro verify: [{example.relation}] {example.driver}: "
                f"{example.message} (instance {example.instance}, "
                f"shrunk from n={example.shrunk_from_n})",
                file=sys.stderr,
            )
        return 1
    return 0


def _changed_python_files(ref: str) -> Optional[set]:
    """Absolute paths of ``.py`` files changed since ``ref`` (committed,
    staged, or unstaged) plus untracked ones; None when git fails."""
    import subprocess

    changed: set = set()
    commands = (
        ["git", "diff", "--name-only", ref, "--", "*.py"],
        [
            "git",
            "ls-files",
            "--others",
            "--exclude-standard",
            "--",
            "*.py",
        ],
    )
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            print(
                f"repro lint: --changed-from failed: {detail.strip()}",
                file=sys.stderr,
            )
            return None
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add(Path(line.strip()).resolve())
    return changed


def cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck import analyze_paths, default_target

    paths = args.paths or [str(default_target())]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        # A typo'd path must not read as a clean gate.
        for p in missing:
            print(f"repro lint: path does not exist: {p}", file=sys.stderr)
        return 2
    if args.cache:
        from .staticcheck.cache import cached_analyze

        result, _hit = cached_analyze(paths, Path(args.cache))
    else:
        result = analyze_paths(paths)
    base_dir = Path.cwd()
    if args.update_baseline:
        if not args.baseline:
            print(
                "repro lint: --update-baseline needs --baseline PATH",
                file=sys.stderr,
            )
            return 2
        from .staticcheck.baseline import write_baseline

        count = write_baseline(Path(args.baseline), result, base_dir)
        print(f"baseline written: {args.baseline} ({count} entries)")
        return 0
    if args.baseline:
        from .staticcheck.baseline import apply_baseline, load_baseline

        try:
            entries = load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"repro lint: unreadable baseline {args.baseline}: "
                f"{exc}",
                file=sys.stderr,
            )
            return 2
        apply_baseline(result, entries, Path(args.baseline), base_dir)
    if args.changed_from:
        changed = _changed_python_files(args.changed_from)
        if changed is None:
            return 2
        # The whole corpus is still analyzed (call-graph context), but
        # only findings in changed files gate this run.  Stale-baseline
        # findings always surface — they point at the baseline file.
        result.diagnostics = [
            d
            for d in result.diagnostics
            if d.rule_id == "BASELINE"
            or Path(d.path).resolve() in changed
        ]
    if args.format == "json":
        print(result.to_json())
    elif args.format == "sarif":
        from .staticcheck.sarif import render_sarif

        print(render_sarif(result, base_dir))
    else:
        print(result.render_text())
    if args.sarif_output:
        from .staticcheck.sarif import render_sarif

        Path(args.sarif_output).parent.mkdir(
            parents=True, exist_ok=True
        )
        with open(args.sarif_output, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(result, base_dir))
            fh.write("\n")
    if not result.ok:
        return 1
    if args.strict and not result.clean:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    from .core.backend import backend_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "LOCAL-model separation laboratory (Chang-Kopelowitz-"
            "Pettie 2016 reproduction)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="engine backend every run_local call in this command "
        "uses (default: the REPRO_BACKEND env var, else 'fast')",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="worker count for '--backend sharded' (exported as "
        "REPRO_SHARDS so spawned children inherit it; default: the "
        "env var, else 2)",
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser(
        "separation", help="the headline det-vs-rand Δ-coloring sweep"
    )
    p.add_argument("--delta", type=int, default=9)
    p.add_argument("--sizes", default="100,1000,10000")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_separation)

    p = sub.add_parser(
        "coloring", help="run Theorem 10 on one random tree"
    )
    p.add_argument("--n", type=int, default=5000)
    p.add_argument("--delta", type=int, default=16)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_coloring)

    p = sub.add_parser("mis", help="Luby vs deterministic MIS")
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--delta", type=int, default=6)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_mis)

    p = sub.add_parser(
        "baseline", help="the (Δ+1)-coloring pipeline with phase breakdown"
    )
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--delta", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_baseline)

    p = sub.add_parser(
        "report", help="pass/fail matrix over recorded experiment results"
    )
    p.add_argument("results_dir", nargs="?", default="benchmarks/results")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench",
        help=(
            "engine/sweep perf suite; --compare gates against a "
            "committed baseline (exit 1 on regression)"
        ),
    )
    p.add_argument(
        "--compare",
        metavar="BASELINE",
        help="baseline JSON to compare against "
        "(e.g. benchmarks/BENCH_baseline.json)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed relative drop before a metric counts as a "
        "regression (default: 0.35)",
    )
    p.add_argument(
        "--update",
        metavar="BASELINE",
        help="write this run's report as the new baseline",
    )
    p.add_argument(
        "--output",
        metavar="PATH",
        help="also write the report JSON here (e.g. under "
        "benchmarks/results/ for CI artifacts)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-pool size for the sweep macro-benchmark "
        "(default: 4)",
    )
    p.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the O(n)-per-round reference engine timing "
        "(faster runs while iterating)",
    )
    p.add_argument(
        "--full",
        action="store_true",
        help="also run the n=10^6 E5 vectorized-vs-fast measurement "
        "(minutes of wall clock; used when refreshing the committed "
        "baseline)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help=(
            "record a demo workload's JSONL event stream, or query "
            "an existing trace ('repro trace query ...')"
        ),
    )
    p.add_argument(
        "--workload",
        choices=("coloring", "mis"),
        default="coloring",
        help="coloring = randomized Δ-coloring driver (Theorem 10), "
        "mis = Luby's MIS (default: coloring)",
    )
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--delta", type=int, default=9)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--output",
        metavar="PATH",
        help="JSONL file to write (overwritten); required in record "
        "mode",
    )
    p.add_argument(
        "--values",
        action="store_true",
        help="include published payload values on publish events",
    )
    p.add_argument(
        "--no-topology",
        action="store_true",
        help="omit the edge list from run_start events (smaller "
        "traces; disables component profiling)",
    )
    p.add_argument(
        "--steps",
        action="store_true",
        help="emit one event per vertex step (large traces)",
    )
    p.add_argument(
        "--timing-sidecar",
        metavar="PATH",
        help="also write the plane-2 timing/resource JSONL sidecar "
        "here (wall clock, RSS, backend attribution — excluded from "
        "the deterministic byte-identity contract)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="render live round progress on stderr while recording",
    )
    p.set_defaults(func=cmd_trace, trace_command=None)
    trace_sub = p.add_subparsers(dest="trace_command")
    q = trace_sub.add_parser(
        "query",
        help=(
            "streaming analytics over recorded traces: filter, "
            "aggregate, per-round timeline, per-vertex history "
            "(never loads a trace fully into memory)"
        ),
    )
    q.add_argument(
        "traces",
        nargs="+",
        metavar="TRACE",
        help="JSONL trace file(s); several are merged (aggregate op "
        "only)",
    )
    q.add_argument(
        "--op",
        choices=("aggregate", "timeline", "vertex", "filter"),
        default="aggregate",
        help="aggregate = whole-trace totals (default); timeline = "
        "one row per round; vertex = one vertex's event history; "
        "filter = re-emit matching events as JSONL",
    )
    q.add_argument(
        "--run",
        type=int,
        default=None,
        help="restrict to this run index (default: all runs for "
        "aggregate/filter, run 0 for timeline/vertex)",
    )
    q.add_argument(
        "--vertex",
        type=int,
        default=None,
        help="vertex id (required for --op vertex; optional filter "
        "predicate otherwise)",
    )
    q.add_argument(
        "--kind",
        action="append",
        metavar="EVENT",
        help="filter op: keep only this event kind (repeatable)",
    )
    q.add_argument("--round-min", type=int, default=None)
    q.add_argument("--round-max", type=int, default=None)
    q.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="aggregate/timeline output format (default: text); "
        "vertex/filter always emit JSONL",
    )
    q.add_argument(
        "--output",
        metavar="PATH",
        help="write the query result here instead of stdout",
    )
    q.set_defaults(func=cmd_trace, trace_command="query")

    p = sub.add_parser(
        "profile",
        help=(
            "shattering profiler: halt-fraction curve F(t) and "
            "surviving-component sizes vs Theorem 3's predictions "
            "(exit 1 when the measured shape fails the checks)"
        ),
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="profile an existing JSONL trace instead of running the "
        "randomized Δ-coloring driver",
    )
    p.add_argument(
        "--run",
        type=int,
        default=0,
        help="which run of a multi-run trace to profile (default: 0, "
        "the driver's Phase 1)",
    )
    p.add_argument(
        "--unresolved",
        type=int,
        default=None,
        help="halt output marking an abandoned vertex (trace mode "
        "only; driver mode always uses the BAD sentinel)",
    )
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--delta", type=int, default=9)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--threshold",
        type=float,
        default=0.9,
        help="halt fraction defining the shattering round "
        "(default: 0.9)",
    )
    p.add_argument(
        "--output",
        metavar="PATH",
        help="also write the text report here",
    )
    p.add_argument(
        "--keep-trace",
        metavar="PATH",
        help="driver mode: keep the intermediate JSONL trace at PATH "
        "instead of a deleted tempfile",
    )
    p.add_argument(
        "--timing-sidecar",
        metavar="PATH",
        help="driver mode: write the plane-2 timing/resource JSONL "
        "sidecar here",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="driver mode: render live round progress on stderr",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="driver mode: write round-boundary engine snapshots here",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="ROUNDS",
        help="snapshot cadence in rounds (default: 256)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="driver mode: resume from the newest snapshot in "
        "--checkpoint-dir (byte-identical to an uninterrupted run)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "faults",
        help=(
            "E6F: empirical Theorem 10 failure rate under injected "
            "fault rates (exit 1 when the record's checks fail)"
        ),
    )
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--delta", type=int, default=9)
    p.add_argument(
        "--rates",
        default="0,0.001,0.01,0.05",
        help="comma-separated fault rates; must start with the "
        "fault-free control 0 (default: 0,0.001,0.01,0.05)",
    )
    p.add_argument(
        "--trials",
        type=int,
        default=10,
        help="runs per rate (default: 10)",
    )
    p.add_argument(
        "--kind",
        choices=("drop", "crash", "corrupt"),
        default="drop",
        help="fault family to inject (default: drop)",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=4096,
        help="round budget injected into every run; 0 disables "
        "(default: 4096)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for the sweep (default: serial)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="bounded per-cell retries with derived seeds (default: 0)",
    )
    p.add_argument(
        "--journal",
        metavar="PATH",
        help="JSONL checkpoint journal; re-running with the same "
        "journal resumes an interrupted sweep",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="in-run round-boundary snapshots per cell; with "
        "--journal, a relaunched sweep resumes its in-flight cell "
        "mid-run instead of from round 0",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="ROUNDS",
        help="snapshot cadence inside each cell (default: 256)",
    )
    p.add_argument(
        "--output",
        metavar="PATH",
        help="also write the rendered record here",
    )
    p.add_argument(
        "--export-metrics",
        metavar="PATH",
        help="export the merged sweep telemetry here (.prom/.txt = "
        "Prometheus text exposition, anything else = canonical JSON)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="render a live cells-done ticker on stderr",
    )
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "run",
        help=(
            "one checkpointed demo workload run; supervision flags "
            "(--retries/--deadline/--watchdog/--max-rss) move it into "
            "a watched child process that retries from the newest "
            "snapshot"
        ),
    )
    p.add_argument(
        "--workload",
        choices=("coloring", "mis"),
        default="coloring",
        help="coloring = the randomized Δ-coloring driver, "
        "mis = Luby's MIS (default: coloring)",
    )
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--delta", type=int, default=9)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write round-boundary engine snapshots here",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="ROUNDS",
        help="snapshot cadence in rounds (default: 256)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest snapshot in --checkpoint-dir; "
        "the continued run (and its trace bytes) is identical to an "
        "uninterrupted one",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="supervised: bounded retries with exponential backoff, "
        "each resuming from the newest snapshot (default: 0)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervised: wall-clock budget across all attempts",
    )
    p.add_argument(
        "--watchdog",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervised: kill and retry a child silent longer than "
        "this (heartbeats ride the checkpoint cadence)",
    )
    p.add_argument(
        "--max-rss",
        type=int,
        default=None,
        metavar="MIB",
        help="supervised: RSS ceiling; a child crossing it restarts "
        "one rung down the degradation ladder (smaller vector "
        "buffers, then the scalar backend)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="record the deterministic JSONL trace here",
    )
    p.add_argument(
        "--timing-sidecar",
        metavar="PATH",
        help="write the plane-2 timing/resource JSONL sidecar here "
        "(supervisor lifecycle rows are appended to the same file)",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="render live round progress on stderr",
    )
    p.add_argument(
        "--audit",
        metavar="PATH",
        help="supervised: write the RunOutcome audit record here "
        "(JSON)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "verify",
        help=(
            "property-based verification sweep: certify every shipped "
            "driver's labelings ball-by-ball and check the metamorphic "
            "relation catalogue (exit 1 on any counterexample)"
        ),
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="tier-1 profile: one trial per cell at each driver's "
        "quick size",
    )
    p.add_argument(
        "--trials",
        type=int,
        default=None,
        help="seeded trials per (driver, relation) cell "
        "(default: 3, or 1 with --quick)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0xC0FFEE,
        help="master seed; the whole sweep is a pure function of it",
    )
    p.add_argument(
        "--driver",
        action="append",
        metavar="NAME",
        help="restrict to this driver (repeatable; default: all "
        "registered drivers)",
    )
    p.add_argument(
        "--relation",
        action="append",
        metavar="NAME",
        help="restrict to this relation (repeatable; see "
        "--list-relations)",
    )
    p.add_argument(
        "--report",
        metavar="PATH",
        help="write shrunk counterexamples as JSONL here (file is "
        "created even when empty)",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="report the originally-failing instance without "
        "halve-and-retest minimization",
    )
    p.add_argument(
        "--list-relations",
        action="store_true",
        help="print the relation catalogue and exit",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "lint",
        help=(
            "static LOCAL-model conformance analysis: pattern rules "
            "LM001-LM009 plus the dataflow radius/determinism proofs "
            "LM010/LM011; exit 1 on error-severity findings"
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text); sarif emits a SARIF "
        "2.1.0 log for code-scanning upload",
    )
    p.add_argument(
        "--sarif-output",
        metavar="PATH",
        help="also write a SARIF 2.1.0 log here (independent of "
        "--format)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="also exit 1 on warning-severity findings",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-findings inventory: matched findings are "
        "demoted to the suppressed count; stale entries surface as "
        "BASELINE warnings",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from this run's findings and "
        "exit 0",
    )
    p.add_argument(
        "--cache",
        metavar="FILE",
        help="incremental result cache: a warm run over an unchanged "
        "corpus replays the stored findings without re-analyzing",
    )
    p.add_argument(
        "--changed-from",
        metavar="REF",
        help="gate only findings in .py files changed since the git "
        "ref (the full corpus is still analyzed for call-graph "
        "context)",
    )
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be a positive integer")
        from .backends.sharded import SHARDS_ENV_VAR

        os.environ[SHARDS_ENV_VAR] = str(args.shards)
    try:
        if args.backend is not None:
            from .core.backend import use_backend

            with use_backend(args.backend):
                return args.func(args)
        return args.func(args)
    except ReproError as exc:
        # Structured rendering: the error context (node, round, run
        # metadata) the taxonomy carries beats a raw traceback for
        # "which vertex broke in which round of which run".
        print(
            f"repro {args.command}: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        for line in exc.context_lines():
            print(f"  {line}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

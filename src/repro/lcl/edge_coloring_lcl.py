"""Proper k-edge coloring as an LCL.

Labels are per-vertex tuples assigning a color to every port; radius-1
checkability covers both endpoint agreement and properness at each
vertex.  The ``(2Δ-1)``-edge coloring instance is one of the survey
problems from Section I.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .problem import Labeling, LCLProblem
from ..graphs.graph import Graph


class EdgeColoringLCL(LCLProblem):
    """Proper edge coloring with colors ``0 .. k-1``, labels = per-port
    color tuples that must agree across every edge."""

    radius = 1

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"number of colors must be >= 1, got {k}")
        self.k = k
        self.name = f"{k}-edge-coloring"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        label = labeling[v]
        degree = graph.degree(v)
        if not isinstance(label, tuple) or len(label) != degree:
            return f"label {label!r} is not a tuple of {degree} port colors"
        seen = set()
        for port in range(degree):
            c = label[port]
            if not isinstance(c, int) or not 0 <= c < self.k:
                return f"port {port} color {c!r} not in 0..{self.k - 1}"
            if c in seen:
                return f"two incident edges share color {c}"
            seen.add(c)
            u = graph.endpoint(v, port)
            back = graph.reverse_port(v, port)
            other = labeling[u]
            if (
                isinstance(other, tuple)
                and len(other) == graph.degree(u)
                and other[back] != c
            ):
                return (
                    f"edge to {u} colored {c} here but {other[back]} there"
                )
        return None

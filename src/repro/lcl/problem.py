"""Locally Checkable Labelings (Naor–Stockmeyer), as executable checkers.

An LCL problem (Section II) is given by a radius ``r``, a finite label
alphabet Σ, and a set C of acceptable labeled radius-``r``
neighborhoods: a labeling is a solution iff *every* vertex's radius-``r``
labeled neighborhood is acceptable.

:class:`LCLProblem` encodes exactly that structure: subclasses implement
:meth:`LCLProblem.check_vertex`, which may inspect only ``N^r(v)``, and
the generic :meth:`LCLProblem.violations` applies it everywhere.  The
per-vertex check *is* the O(1)-round distributed verifier that makes the
problem an LCL.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..core.errors import VerificationError
from ..graphs.graph import Graph

#: A labeling assigns one label (an element of the problem's Σ) per vertex.
Labeling = Sequence[Any]


@dataclass(frozen=True)
class Violation:
    """One locally-detected violation."""

    vertex: int
    message: str

    def __str__(self) -> str:
        return f"vertex {self.vertex}: {self.message}"


class LCLProblem(abc.ABC):
    """Base class for locally checkable labeling problems."""

    #: Human-readable problem name.
    name: str = "lcl"
    #: Checking radius r; every problem in this project has r = 1.
    radius: int = 1

    @abc.abstractmethod
    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Check the labeled radius-r neighborhood of ``v``.

        Returns ``None`` if acceptable, else a violation message.
        Implementations must only consult vertices within distance
        :attr:`radius` of ``v`` (that is what makes the problem an LCL).
        """

    def violations(
        self,
        graph: Graph,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> List[Violation]:
        """All violations in the labeling (empty iff it is a solution)."""
        if len(labeling) != graph.num_vertices:
            raise VerificationError(
                f"{self.name}: labeling has {len(labeling)} entries for "
                f"{graph.num_vertices} vertices"
            )
        found = []
        for v in graph.vertices():
            message = self.check_vertex(graph, v, labeling, inputs)
            if message is not None:
                found.append(Violation(v, message))
        return found

    def is_solution(
        self,
        graph: Graph,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Whether the labeling is a legal solution."""
        return not self.violations(graph, labeling, inputs)

    def check(
        self,
        graph: Graph,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Raise :class:`VerificationError` listing the first few
        violations, if any."""
        found = self.violations(graph, labeling, inputs)
        if found:
            preview = "; ".join(str(x) for x in found[:5])
            more = f" (+{len(found) - 5} more)" if len(found) > 5 else ""
            raise VerificationError(f"{self.name}: {preview}{more}")

"""Locally Checkable Labelings (Naor–Stockmeyer), as executable checkers.

An LCL problem (Section II) is given by a radius ``r``, a finite label
alphabet Σ, and a set C of acceptable labeled radius-``r``
neighborhoods: a labeling is a solution iff *every* vertex's radius-``r``
labeled neighborhood is acceptable.

:class:`LCLProblem` encodes exactly that structure: subclasses implement
:meth:`LCLProblem.check_vertex`, which may inspect only ``N^r(v)``, and
the generic :meth:`LCLProblem.violations` applies it everywhere.  The
per-vertex check *is* the O(1)-round distributed verifier that makes the
problem an LCL.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..core.errors import VerificationError
from ..graphs.graph import Graph

#: A labeling assigns one label (an element of the problem's Σ) per vertex.
Labeling = Sequence[Any]


class BallRestrictedLabeling:
    """A labeling masked down to one radius-``r`` ball.

    Reading a label outside the ball raises :class:`VerificationError`
    instead of returning a value — the executable form of the LCL
    axiom that :meth:`LCLProblem.check_vertex` may consult only
    ``N^r(v)``.  :meth:`LCLProblem.check_ball` wraps every certificate
    check in one of these, so a checker that silently peeks farther
    than its declared radius fails loudly rather than passing as
    "local".
    """

    __slots__ = ("_labeling", "_allowed", "_center", "_radius")

    def __init__(
        self,
        labeling: Labeling,
        allowed: Sequence[int],
        center: int,
        radius: int,
    ) -> None:
        self._labeling = labeling
        self._allowed = frozenset(allowed)
        self._center = center
        self._radius = radius

    def __getitem__(self, vertex: int) -> Any:
        if vertex not in self._allowed:
            raise VerificationError(
                f"non-local read: label of vertex {vertex} is outside "
                f"the radius-{self._radius} ball of vertex "
                f"{self._center}"
            )
        return self._labeling[vertex]

    def __len__(self) -> int:
        return len(self._labeling)


@dataclass(frozen=True)
class Violation:
    """One locally-detected violation."""

    vertex: int
    message: str

    def __str__(self) -> str:
        return f"vertex {self.vertex}: {self.message}"


class LCLProblem(abc.ABC):
    """Base class for locally checkable labeling problems."""

    #: Human-readable problem name.
    name: str = "lcl"
    #: Checking radius r; every problem in this project has r = 1.
    radius: int = 1

    @abc.abstractmethod
    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Check the labeled radius-r neighborhood of ``v``.

        Returns ``None`` if acceptable, else a violation message.
        Implementations must only consult vertices within distance
        :attr:`radius` of ``v`` (that is what makes the problem an LCL).
        """

    def ball(self, graph: Graph, v: int) -> List[int]:
        """The vertices of ``N^r(v)`` — the exact view
        :meth:`check_vertex` is entitled to read (sorted)."""
        return graph.ball(v, self.radius)

    def check_ball(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        """Check one radius-``r`` ball *independently*, with locality
        enforced.

        The labeling handed to :meth:`check_vertex` is restricted to
        ``N^r(v)``; a checker implementation reading outside its ball
        raises :class:`VerificationError` instead of silently passing.
        This is the entry point the certificate checker
        (:mod:`repro.verify.certify`) uses — every ball is checked in
        isolation, exactly like the O(1)-round distributed verifier
        the LCL definition promises.
        """
        restricted = BallRestrictedLabeling(
            labeling, self.ball(graph, v), v, self.radius
        )
        return self.check_vertex(graph, v, restricted, inputs)

    def violations(
        self,
        graph: Graph,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> List[Violation]:
        """All violations in the labeling (empty iff it is a solution)."""
        if len(labeling) != graph.num_vertices:
            raise VerificationError(
                f"{self.name}: labeling has {len(labeling)} entries for "
                f"{graph.num_vertices} vertices"
            )
        found = []
        for v in graph.vertices():
            message = self.check_vertex(graph, v, labeling, inputs)
            if message is not None:
                found.append(Violation(v, message))
        return found

    def is_solution(
        self,
        graph: Graph,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Whether the labeling is a legal solution."""
        return not self.violations(graph, labeling, inputs)

    def check(
        self,
        graph: Graph,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Raise :class:`VerificationError` listing the first few
        violations, if any."""
        found = self.violations(graph, labeling, inputs)
        if found:
            preview = "; ".join(str(x) for x in found[:5])
            more = f" (+{len(found) - 5} more)" if len(found) > 5 else ""
            raise VerificationError(f"{self.name}: {preview}{more}")

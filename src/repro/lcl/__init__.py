"""LCL problem specifications and verifiers (Section II of the paper)."""

from .coloring import (
    KColoring,
    ProperColoring,
    WeakColoring,
    list_coloring_respects,
    palette_size,
)
from .edge_coloring_lcl import EdgeColoringLCL
from .matching import UNMATCHED, MaximalMatching, matching_edges
from .mis import IN, OUT, MaximalIndependentSet, independent_set_from_labeling
from .problem import (
    BallRestrictedLabeling,
    Labeling,
    LCLProblem,
    Violation,
)
from .ruling_set import RulingSet
from .sinkless import (
    SinklessColoring,
    SinklessOrientation,
    count_sinks,
    orientation_out_degrees,
)

__all__ = [
    "BallRestrictedLabeling",
    "EdgeColoringLCL",
    "IN",
    "KColoring",
    "LCLProblem",
    "Labeling",
    "MaximalIndependentSet",
    "MaximalMatching",
    "OUT",
    "ProperColoring",
    "RulingSet",
    "SinklessColoring",
    "SinklessOrientation",
    "UNMATCHED",
    "Violation",
    "WeakColoring",
    "count_sinks",
    "independent_set_from_labeling",
    "list_coloring_respects",
    "matching_edges",
    "orientation_out_degrees",
    "palette_size",
]

"""Vertex coloring LCLs: k-coloring and list-coloring variants."""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .problem import Labeling, LCLProblem
from ..graphs.graph import Graph


class KColoring(LCLProblem):
    """Proper vertex coloring with colors ``0 .. k-1`` (Section II).

    The paper's headline problem is the instance ``k = Δ``
    (Δ-coloring); ``k = Δ + 1`` is the classic symmetry-breaking
    benchmark.
    """

    radius = 1

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"number of colors must be >= 1, got {k}")
        self.k = k
        self.name = f"{k}-coloring"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        color = labeling[v]
        if not isinstance(color, int) or not 0 <= color < self.k:
            return f"label {color!r} is not a color in 0..{self.k - 1}"
        for u in graph.neighbors(v):
            if labeling[u] == color:
                return f"neighbor {u} has the same color {color}"
        return None


class ProperColoring(LCLProblem):
    """Proper coloring with an *unbounded* palette of non-negative
    integers — properness only, no palette-size constraint.

    Useful for checking intermediate colorings (e.g. Linial's O(Δ²)
    stage) where the palette is a moving target; pair with
    :func:`palette_size` to assert the size separately.
    """

    radius = 1
    name = "proper-coloring"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        color = labeling[v]
        if not isinstance(color, int) or color < 0:
            return f"label {color!r} is not a non-negative integer color"
        for u in graph.neighbors(v):
            if labeling[u] == color:
                return f"neighbor {u} has the same color {color}"
        return None


class WeakColoring(LCLProblem):
    """Weak c-coloring: every non-isolated vertex has at least one
    neighbor with a different color (Naor–Stockmeyer's example of a
    nontrivial O(1)-checkable problem)."""

    radius = 1

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"number of colors must be >= 1, got {k}")
        self.k = k
        self.name = f"weak-{k}-coloring"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        color = labeling[v]
        if not isinstance(color, int) or not 0 <= color < self.k:
            return f"label {color!r} is not a color in 0..{self.k - 1}"
        if graph.degree(v) == 0:
            return None
        if all(labeling[u] == color for u in graph.neighbors(v)):
            return "all neighbors share this vertex's color"
        return None


def palette_size(labeling: Sequence[int]) -> int:
    """Number of distinct colors a labeling uses."""
    return len(set(labeling))


def list_coloring_respects(
    graph: Graph, labeling: Sequence[int], lists: Sequence[Sequence[int]]
) -> bool:
    """Whether a proper coloring also respects per-vertex allowed lists
    (the list-coloring constraint used inside Theorem 9's layer steps)."""
    for v in graph.vertices():
        if labeling[v] not in lists[v]:
            return False
        for u in graph.neighbors(v):
            if labeling[u] == labeling[v]:
                return False
    return True

"""(α, β)-ruling sets as LCLs.

A set S ⊆ V is an (α, β)-ruling set if every two distinct members are
at distance >= α and every vertex is within distance β of a member.
MIS is the (2, 1) case; t-ruling sets ((2, t) here) are the relaxation
behind several of the shattering-based algorithms the paper cites
([18], [22]).  The problem is an LCL of radius max(α-1, β): both the
spacing and the domination conditions are ball-checkable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .problem import Labeling, LCLProblem
from ..graphs.graph import Graph


class RulingSet(LCLProblem):
    """(α, β)-ruling set with labels Σ = {0, 1} (1 = in S)."""

    def __init__(self, alpha: int, beta: int):
        if alpha < 1 or beta < 0:
            raise ValueError(
                f"need alpha >= 1 and beta >= 0, got ({alpha}, {beta})"
            )
        self.alpha = alpha
        self.beta = beta
        self.radius = max(alpha - 1, beta)
        self.name = f"({alpha},{beta})-ruling-set"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        label = labeling[v]
        if label not in (0, 1):
            return f"label {label!r} is not in {{0, 1}}"
        distances = graph.bfs_distances(v, cutoff=self.radius)
        if label == 1:
            for u, d in distances.items():
                if u != v and 1 <= d < self.alpha and labeling[u] == 1:
                    return (
                        f"member {u} at distance {d} < α={self.alpha}"
                    )
        nearest = min(
            (d for u, d in distances.items() if labeling[u] == 1),
            default=None,
        )
        if nearest is None or nearest > self.beta:
            return f"no member within β={self.beta}"
        return None

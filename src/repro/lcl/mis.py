"""Maximal independent set as an LCL (Section II)."""

from __future__ import annotations

from typing import Any, Dict, Optional

from .problem import Labeling, LCLProblem
from ..graphs.graph import Graph

#: Label meaning "in the independent set".
IN = 1
#: Label meaning "not in the independent set".
OUT = 0


class MaximalIndependentSet(LCLProblem):
    """MIS with labels Σ = {0, 1}: ``N(v) ∩ I = ∅`` iff ``v ∈ I``.

    - Independence: a 1-labeled vertex has no 1-labeled neighbor.
    - Maximality: a 0-labeled vertex has at least one 1-labeled
      neighbor (otherwise it could join).
    """

    radius = 1
    name = "maximal-independent-set"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        label = labeling[v]
        if label not in (IN, OUT):
            return f"label {label!r} is not in {{0, 1}}"
        neighbor_in = any(labeling[u] == IN for u in graph.neighbors(v))
        if label == IN and neighbor_in:
            return "vertex in MIS has a neighbor in MIS"
        if label == OUT and not neighbor_in:
            return "vertex outside MIS has no neighbor in MIS"
        return None


def independent_set_from_labeling(labeling: Labeling) -> set:
    """The set of vertices labeled IN."""
    return {v for v, label in enumerate(labeling) if label == IN}

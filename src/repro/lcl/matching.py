"""Maximal matching as an LCL.

Labels encode, per vertex, the port of its matched edge (or ``None``).
Radius 1 suffices: consistency is that the two endpoints of a matched
edge point at each other; maximality is that no edge has both endpoints
unmatched.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .problem import Labeling, LCLProblem
from ..graphs.graph import Graph

#: Label of an unmatched vertex.
UNMATCHED = None


class MaximalMatching(LCLProblem):
    """Maximal matching with labels Σ = {None, 0, 1, .., Δ-1}."""

    radius = 1
    name = "maximal-matching"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        port = labeling[v]
        if port is UNMATCHED:
            for u in graph.neighbors(v):
                if labeling[u] is UNMATCHED:
                    return f"edge to {u} has both endpoints unmatched"
            return None
        if not isinstance(port, int) or not 0 <= port < graph.degree(v):
            return f"label {port!r} is not a valid port"
        u = graph.endpoint(v, port)
        back = labeling[u]
        if (
            back is UNMATCHED
            or not isinstance(back, int)
            or not 0 <= back < graph.degree(u)
            or graph.endpoint(u, back) != v
        ):
            return f"matched to {u} but {u} does not point back"
        return None


def matching_edges(graph: Graph, labeling: Labeling) -> set:
    """The matched edge set ``{(u, v): u < v}`` encoded by a labeling."""
    edges = set()
    for v in graph.vertices():
        port = labeling[v]
        if port is not UNMATCHED:
            u = graph.endpoint(v, port)
            edges.add((v, u) if v < u else (u, v))
    return edges

"""The Brandt et al. problems: Δ-sinkless orientation and Δ-sinkless
coloring (Section II definitions).

Both problems take as *input* a Δ-regular graph with a proper Δ-edge
coloring.  The coloring is passed to the checker through
``inputs["edge_colors"]`` — a per-vertex list of port colors, as produced
by :func:`repro.graphs.edge_coloring.ports_coloring`.

Labels:

- Sinkless orientation: Σ = {→, ←}^Δ, encoded as a tuple of booleans per
  port — ``True`` meaning the edge is oriented *outward* from the vertex.
  Consistency (checkable at radius 1): the two endpoints of every edge
  declare opposite directions.  Forbidden configuration: a vertex with
  out-degree 0 (a *sink*).
- Sinkless coloring: a vertex color in ``0 .. Δ-1``.  Forbidden
  configuration: an edge whose two endpoints and the edge itself all
  share one color.  (Any proper Δ-coloring is in particular a sinkless
  coloring — the bridge Theorem 4 exploits.)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .problem import Labeling, LCLProblem
from ..graphs.graph import Graph


def _port_colors(
    inputs: Optional[Dict[str, Any]], v: int
) -> Optional[List[int]]:
    if inputs is None or "edge_colors" not in inputs:
        return None
    return inputs["edge_colors"][v]


class SinklessOrientation(LCLProblem):
    """Δ-sinkless orientation: orient all edges so every vertex has
    out-degree >= 1."""

    radius = 1
    name = "sinkless-orientation"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        label = labeling[v]
        degree = graph.degree(v)
        if (
            not isinstance(label, tuple)
            or len(label) != degree
            or not all(isinstance(x, bool) for x in label)
        ):
            return f"label {label!r} is not a tuple of {degree} booleans"
        if degree > 0 and not any(label):
            return "vertex is a sink (out-degree 0)"
        for port in range(degree):
            u = graph.endpoint(v, port)
            back = graph.reverse_port(v, port)
            other = labeling[u]
            if (
                isinstance(other, tuple)
                and len(other) == graph.degree(u)
                and other[back] == label[port]
            ):
                return (
                    f"edge to {u} has inconsistent orientation "
                    f"(both endpoints claim {label[port]})"
                )
        return None


class SinklessColoring(LCLProblem):
    """Δ-sinkless coloring: vertex colors in ``0 .. Δ-1`` such that no
    edge has ``color(u) == color(v) == color({u, v})``."""

    radius = 1

    def __init__(self, delta: int):
        if delta < 1:
            raise ValueError(f"Δ must be >= 1, got {delta}")
        self.delta = delta
        self.name = f"{delta}-sinkless-coloring"

    def check_vertex(
        self,
        graph: Graph,
        v: int,
        labeling: Labeling,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> Optional[str]:
        color = labeling[v]
        if not isinstance(color, int) or not 0 <= color < self.delta:
            return f"label {color!r} is not a color in 0..{self.delta - 1}"
        port_colors = _port_colors(inputs, v)
        if port_colors is None:
            return "checker needs inputs['edge_colors'] (the Δ-edge coloring)"
        for port in range(graph.degree(v)):
            u = graph.endpoint(v, port)
            if labeling[u] == color and port_colors[port] == color:
                return (
                    f"monochromatic configuration: edge to {u} and both "
                    f"endpoints all have color {color}"
                )
        return None


def orientation_out_degrees(graph: Graph, labeling: Labeling) -> List[int]:
    """Out-degree of every vertex under an orientation labeling."""
    return [sum(1 for x in labeling[v] if x) for v in graph.vertices()]


def count_sinks(graph: Graph, labeling: Labeling) -> int:
    """Number of vertices with out-degree 0 (ignoring isolated vertices)."""
    return sum(
        1
        for v in graph.vertices()
        if graph.degree(v) > 0 and not any(labeling[v])
    )

"""Streaming trace analytics: query JSONL traces without loading them.

A deterministic trace (:mod:`repro.obs.trace`, schema versions 1–3)
from a large run easily outgrows memory — a million-vertex Theorem 10
run emits tens of millions of events.  Everything here therefore works
as a **single forward pass** over :func:`~repro.obs.trace.iter_trace`:

- :func:`filter_events` — a generator applying run/kind/vertex/round
  predicates; O(1) memory.
- :func:`aggregate_trace` — whole-trace totals (events per kind,
  rounds, messages, payload bytes, halts/failures/faults per run);
  O(runs) memory.
- :func:`round_timeline` — one row per round (active/awake/halted,
  publish count and bytes, failures, faults); O(rounds) memory.
- :func:`vertex_history` — every event touching one vertex, in stream
  order; O(matching events) memory.
- :func:`merge_aggregates` — combine per-cell aggregates from a sweep
  into one, order-insensitively (the cross-cell analogue of
  :func:`repro.obs.metrics.merge_summaries`).

The same pass shape backs the ``repro trace query`` CLI, so querying a
10 GB trace needs the memory of its answer, not of the trace.
"""

from __future__ import annotations

import json
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

#: Stamped on aggregate dicts so merged artifacts self-identify.
AGGREGATE_SCHEMA = "repro.obs.query.aggregate"
AGGREGATE_VERSION = 1

_EVENT_KINDS = (
    "run_start",
    "round_start",
    "step",
    "publish",
    "halt",
    "failure",
    "fault",
    "round_end",
    "run_end",
)


def filter_events(
    events: Iterable[Dict[str, Any]],
    *,
    run: Optional[int] = None,
    kinds: Optional[Sequence[str]] = None,
    vertex: Optional[int] = None,
    round_min: Optional[int] = None,
    round_max: Optional[int] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield events matching every given predicate, preserving order.

    ``kinds`` naming an unknown event kind raises ``ValueError`` — a
    typo'd ``--kind pubish`` must not read as "no matches".
    """
    if kinds is not None:
        unknown = [k for k in kinds if k not in _EVENT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown event kind(s) {unknown}; "
                f"expected one of {list(_EVENT_KINDS)}"
            )
        kind_set = frozenset(kinds)
    else:
        kind_set = None
    for event in events:
        if run is not None and event.get("run") != run:
            continue
        if kind_set is not None and event.get("event") not in kind_set:
            continue
        if vertex is not None and event.get("v") != vertex:
            continue
        r = event.get("round")
        if round_min is not None and (r is None or r < round_min):
            continue
        if round_max is not None and (r is None or r > round_max):
            continue
        yield event


def aggregate_trace(
    events: Iterable[Dict[str, Any]], *, run: Optional[int] = None
) -> Dict[str, Any]:
    """Whole-trace totals in one streaming pass.

    Returns a plain JSON-safe dict::

        {"schema": ..., "version": 1,
         "runs": <runs seen>, "events": <total>,
         "events_by_kind": {"publish": ..., ...},
         "rounds_total": ..., "messages_total": ...,
         "payload_bytes_total": ..., "halted_total": ...,
         "failed_total": ..., "faults_total": ...,
         "per_run": [{"run": k, "algorithm": ..., "n": ...,
                      "rounds": ..., "events": ...}, ...]}

    ``rounds_total`` sums each run's final ``round_end`` index + 1, so
    bulk-skipped sleeping rounds count exactly once like any other.
    """
    by_kind = {kind: 0 for kind in _EVENT_KINDS}
    total = 0
    messages = 0
    payload_bytes = 0
    halted = 0
    failed = 0
    faults = 0
    per_run: Dict[int, Dict[str, Any]] = {}
    for event in events:
        k = event.get("run")
        if run is not None and k != run:
            continue
        kind = event.get("event")
        total += 1
        if kind in by_kind:
            by_kind[kind] += 1
        if k is not None:
            stats = per_run.get(k)
            if stats is None:
                stats = per_run[k] = {
                    "run": k,
                    "algorithm": None,
                    "n": None,
                    "rounds": 0,
                    "events": 0,
                }
            stats["events"] += 1
        else:
            stats = None
        if kind == "run_start":
            if stats is not None:
                stats["algorithm"] = event.get("algorithm")
                stats["n"] = event.get("n")
        elif kind == "round_end":
            messages += event.get("messages", 0)
            if stats is not None:
                stats["rounds"] = max(
                    stats["rounds"], event.get("round", -1) + 1
                )
        elif kind == "publish":
            payload_bytes += event.get("bytes", 0)
        elif kind == "halt":
            halted += 1
        elif kind == "failure":
            failed += 1
        elif kind == "fault":
            faults += 1
    return {
        "schema": AGGREGATE_SCHEMA,
        "version": AGGREGATE_VERSION,
        "runs": len(per_run),
        "events": total,
        "events_by_kind": by_kind,
        "rounds_total": sum(s["rounds"] for s in per_run.values()),
        "messages_total": messages,
        "payload_bytes_total": payload_bytes,
        "halted_total": halted,
        "failed_total": failed,
        "faults_total": faults,
        "per_run": [per_run[k] for k in sorted(per_run)],
    }


def merge_aggregates(
    aggregates: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Combine :func:`aggregate_trace` dicts from several traces.

    Order-insensitive over the scalar totals (sums commute); the
    ``per_run`` sections are concatenated in argument order with run
    indices left untouched, since runs from different cells are
    distinct runs even when their indices collide.  Refuses foreign
    schemas and versions newer than this reader.
    """
    if not aggregates:
        raise ValueError("merge_aggregates needs at least one aggregate")
    for agg in aggregates:
        schema = agg.get("schema")
        if schema != AGGREGATE_SCHEMA:
            raise ValueError(
                f"cannot merge aggregate with schema {schema!r}; "
                f"expected {AGGREGATE_SCHEMA!r}"
            )
        version = agg.get("version")
        if not isinstance(version, int) or version > AGGREGATE_VERSION:
            raise ValueError(
                f"cannot merge aggregate version {version!r}; this "
                f"reader understands <= {AGGREGATE_VERSION}"
            )
    merged = {
        "schema": AGGREGATE_SCHEMA,
        "version": AGGREGATE_VERSION,
        "runs": sum(a["runs"] for a in aggregates),
        "events": sum(a["events"] for a in aggregates),
        "events_by_kind": {
            kind: sum(
                a.get("events_by_kind", {}).get(kind, 0)
                for a in aggregates
            )
            for kind in _EVENT_KINDS
        },
        "rounds_total": sum(a["rounds_total"] for a in aggregates),
        "messages_total": sum(a["messages_total"] for a in aggregates),
        "payload_bytes_total": sum(
            a["payload_bytes_total"] for a in aggregates
        ),
        "halted_total": sum(a["halted_total"] for a in aggregates),
        "failed_total": sum(a["failed_total"] for a in aggregates),
        "faults_total": sum(a["faults_total"] for a in aggregates),
        "per_run": [r for a in aggregates for r in a.get("per_run", [])],
    }
    return merged


def round_timeline(
    events: Iterable[Dict[str, Any]], *, run: int = 0
) -> List[Dict[str, Any]]:
    """One row per round of ``run``, in round order.

    Each row: ``{"round", "active", "awake", "halted", "publishes",
    "payload_bytes", "steps", "failures", "faults"}``.  The setup
    phase (round ``-1``) gets a row only when it emitted events.
    Streaming: memory is O(rounds), not O(events).
    """
    rows: Dict[int, Dict[str, Any]] = {}
    saw_run = False

    def row(r: int) -> Dict[str, Any]:
        entry = rows.get(r)
        if entry is None:
            entry = rows[r] = {
                "round": r,
                "active": 0,
                "awake": 0,
                "halted": 0,
                "publishes": 0,
                "payload_bytes": 0,
                "steps": 0,
                "failures": 0,
                "faults": 0,
            }
        return entry

    for event in events:
        if event.get("run") != run:
            continue
        saw_run = True
        kind = event.get("event")
        r = event.get("round")
        if r is None:
            continue
        if kind == "round_start":
            row(r)["active"] = event.get("active", 0)
        elif kind == "round_end":
            entry = row(r)
            entry["awake"] = event.get("awake", 0)
            entry["halted"] = event.get("halted", 0)
        elif kind == "publish":
            entry = row(r)
            entry["publishes"] += 1
            entry["payload_bytes"] += event.get("bytes", 0)
        elif kind == "step":
            row(r)["steps"] += 1
        elif kind == "halt":
            # halted comes from round_end (authoritative even for
            # rounds whose halt events were bulk-elided); setup halts
            # have no round_end, so count them directly.
            if r < 0:
                row(r)["halted"] += 1
        elif kind == "failure":
            row(r)["failures"] += 1
        elif kind == "fault":
            row(r)["faults"] += 1
    if not saw_run:
        raise ValueError(f"trace has no events for run {run}")
    return [rows[r] for r in sorted(rows)]


def vertex_history(
    events: Iterable[Dict[str, Any]],
    vertex: int,
    *,
    run: int = 0,
) -> List[Dict[str, Any]]:
    """Every event touching ``vertex`` in ``run``, in stream order.

    Covers ``step``/``publish``/``halt``/``failure``/``fault`` events;
    run- and round-boundary events carry no vertex and are skipped.
    """
    history: List[Dict[str, Any]] = []
    saw_run = False
    for event in events:
        if event.get("run") != run:
            continue
        saw_run = True
        if event.get("v") == vertex:
            history.append(event)
    if not saw_run:
        raise ValueError(f"trace has no events for run {run}")
    return history


def render_aggregate(aggregate: Dict[str, Any]) -> str:
    """Plain-text report for :func:`aggregate_trace` output."""
    from ..analysis.tables import render_kv, render_table

    head = render_kv(
        "trace aggregate",
        [
            ["runs", aggregate["runs"]],
            ["events", aggregate["events"]],
            ["rounds", aggregate["rounds_total"]],
            ["messages", aggregate["messages_total"]],
            ["payload bytes", aggregate["payload_bytes_total"]],
            ["halts", aggregate["halted_total"]],
            ["failures", aggregate["failed_total"]],
            ["faults", aggregate["faults_total"]],
        ],
    )
    kinds = render_table(
        ["event", "count"],
        [
            [kind, count]
            for kind, count in aggregate["events_by_kind"].items()
            if count
        ],
    )
    runs = render_table(
        ["run", "algorithm", "n", "rounds", "events"],
        [
            [r["run"], r["algorithm"], r["n"], r["rounds"], r["events"]]
            for r in aggregate["per_run"]
        ],
    )
    return "\n\n".join([head, kinds, runs])


def render_timeline(rows: Sequence[Dict[str, Any]]) -> str:
    """Plain-text table for :func:`round_timeline` output."""
    from ..analysis.tables import render_table

    return render_table(
        [
            "round",
            "active",
            "awake",
            "halted",
            "publishes",
            "bytes",
            "failures",
            "faults",
        ],
        [
            [
                r["round"],
                r["active"],
                r["awake"],
                r["halted"],
                r["publishes"],
                r["payload_bytes"],
                r["failures"],
                r["faults"],
            ]
            for r in rows
        ],
    )


def dump_jsonl(events: Iterable[Dict[str, Any]], stream) -> int:
    """Write events back out as canonical JSONL; returns the count."""
    count = 0
    for event in events:
        stream.write(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
        )
        stream.write("\n")
        count += 1
    return count


__all__ = [
    "AGGREGATE_SCHEMA",
    "AGGREGATE_VERSION",
    "aggregate_trace",
    "dump_jsonl",
    "filter_events",
    "merge_aggregates",
    "render_aggregate",
    "render_timeline",
    "round_timeline",
    "vertex_history",
]

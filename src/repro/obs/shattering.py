"""The shattering profiler: Theorem 3, measured per run.

The paper's Theorem 3 (graph shattering) says optimal RandLOCAL
algorithms behave like Phase 1 of the tree-coloring algorithm: after
``O(log_Δ log n)`` rounds *most* vertices have fixed their output, and
the vertices still undecided induce components of size
``poly(Δ) · log n`` — small enough to finish with a deterministic
algorithm.  This module makes that measurable from a JSONL trace
(:mod:`repro.obs.trace`):

- the **halt-fraction curve** F(t) — the fraction of vertices resolved
  by the end of each round;
- the **surviving-subgraph component-size distribution** after each
  round (the trace's ``run_start`` line carries the topology);
- a **shattering-round estimate** — the first round where F(t) crosses
  the threshold (default 0.9);
- pass/fail **checks** against the paper's predicted shape, rendered
  by :func:`render_profile_report` and exposed through the
  ``repro profile`` CLI.

Vertices that halt with the *unresolved sentinel* (e.g. the ``BAD``
marker Phase 1 of :func:`repro.algorithms.pettie_su_tree_coloring`
assigns to vertices it abandons) count as **survivors**, not as
resolved — the engine-level halt just hands them to the next phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..analysis.tables import render_kv, render_table

#: Default F(t) threshold for the shattering-round estimate.
DEFAULT_THRESHOLD = 0.9

#: "No sentinel": with this default every halt counts as resolved.
_NO_SENTINEL = object()


@dataclass
class RoundShatterStats:
    """One point of the halt-fraction curve."""

    #: Round index (0-based engine rounds).
    round: int
    #: Vertices resolved by the end of this round (cumulative).
    resolved: int
    #: ``resolved / n`` — the curve value F(t).
    halt_fraction: float
    #: Vertices still unresolved.
    survivors: int
    #: Connected components induced by the survivors.
    num_components: int
    #: Largest surviving component (0 when none survive).
    max_component: int


@dataclass
class ShatteringProfile:
    """Everything the profiler measured for one engine run."""

    algorithm: str
    n: int
    num_edges: int
    max_degree: int
    rounds: int
    threshold: float
    #: Vertices resolved during ``setup`` (before round 0).
    setup_resolved: int
    curve: List[RoundShatterStats] = field(default_factory=list)
    #: First round where F(t) >= threshold (None if never crossed).
    shattering_round: Optional[int] = None
    #: The whp component bound Δ⁴ · ln n from the Theorem 10 analysis
    #: (same formula as ``ShatteringStats.paper_bound``).
    paper_bound: float = 0.0

    @property
    def final(self) -> Optional[RoundShatterStats]:
        return self.curve[-1] if self.curve else None

    @property
    def final_fraction(self) -> float:
        final = self.final
        if final is not None:
            return final.halt_fraction
        return self.setup_resolved / self.n if self.n else 0.0

    @property
    def max_surviving_component(self) -> int:
        """Largest surviving component at the shattering round (or at
        the final round if the threshold was never crossed)."""
        if self.shattering_round is not None:
            for stats in self.curve:
                if stats.round == self.shattering_round:
                    return stats.max_component
        final = self.final
        return final.max_component if final is not None else self.n

    def checks(self) -> List[Tuple[str, bool, str]]:
        """Pass/fail verdicts against Theorem 3's predicted shape."""
        frac = self.final_fraction
        comp = self.max_surviving_component
        return [
            (
                "halt_fraction",
                frac >= self.threshold,
                f"F(final) = {frac:.4f} vs threshold {self.threshold}",
            ),
            (
                "component_bound",
                comp <= self.paper_bound,
                f"max surviving component {comp} vs "
                f"poly(log n) bound {self.paper_bound:.1f}",
            ),
            (
                "shattered",
                self.shattering_round is not None,
                f"shattering round = {self.shattering_round}",
            ),
        ]

    def ok(self) -> bool:
        return all(passed for _, passed, _ in self.checks())


def _components(
    survivors: List[bool], adjacency: List[List[int]]
) -> Tuple[int, int]:
    """(count, max size) of components induced by surviving vertices."""
    seen = [False] * len(survivors)
    count = 0
    largest = 0
    for start, alive in enumerate(survivors):
        if not alive or seen[start]:
            continue
        count += 1
        size = 0
        stack = [start]
        seen[start] = True
        while stack:
            v = stack.pop()
            size += 1
            for u in adjacency[v]:
                if survivors[u] and not seen[u]:
                    seen[u] = True
                    stack.append(u)
        largest = max(largest, size)
    return count, largest


def profile_events(
    events: Iterable[Dict[str, Any]],
    *,
    run: int = 0,
    threshold: float = DEFAULT_THRESHOLD,
    unresolved: Any = _NO_SENTINEL,
) -> ShatteringProfile:
    """Compute a :class:`ShatteringProfile` from trace event dicts.

    ``events`` may be any iterable — including the generator
    :func:`repro.obs.trace.iter_trace` yields — and is consumed in a
    **single forward pass**, so a million-vertex trace profiles in the
    memory of its topology, not of its event stream.

    ``unresolved`` is the halt-output sentinel marking vertices an
    algorithm abandoned rather than resolved (``BAD`` = -1 for the
    tree-coloring Phase 1); pass nothing to count every halt.
    Requires the trace's ``run_start`` line to carry topology
    (``edges``), i.e. written without ``topology=False``.
    """
    stream = iter(events)
    start = None
    for event in stream:
        if event.get("event") == "run_start" and event.get("run") == run:
            start = event
            break
    if start is None:
        raise ValueError(f"trace has no run_start event for run {run}")
    if "edges" not in start:
        raise ValueError(
            "trace was written without topology; rerun the trace "
            "without --no-topology to profile components"
        )
    n = start["n"]
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u, v in start["edges"]:
        adjacency[u].append(v)
        adjacency[v].append(u)

    resolved = [False] * n
    done = 0
    setup_resolved = 0
    curve: List[RoundShatterStats] = []
    shattering_round: Optional[int] = None
    rounds = 0
    for event in stream:
        if event.get("run") != run:
            continue
        kind = event["event"]
        if kind == "halt":
            value = event.get("value")
            if unresolved is _NO_SENTINEL or value != unresolved:
                v = event["v"]
                if not resolved[v]:
                    resolved[v] = True
                    done += 1
                if event["round"] < 0:
                    setup_resolved += 1
        elif kind == "round_end":
            rounds = event["round"] + 1
            fraction = done / n if n else 1.0
            num_components, largest = _components(
                [not r for r in resolved], adjacency
            )
            curve.append(
                RoundShatterStats(
                    round=event["round"],
                    resolved=done,
                    halt_fraction=fraction,
                    survivors=n - done,
                    num_components=num_components,
                    max_component=largest,
                )
            )
            if shattering_round is None and fraction >= threshold:
                shattering_round = event["round"]
        elif kind == "run_end":
            break

    return ShatteringProfile(
        algorithm=start["algorithm"],
        n=n,
        num_edges=start["m"],
        max_degree=start["max_degree"],
        rounds=rounds,
        threshold=threshold,
        setup_resolved=setup_resolved,
        curve=curve,
        shattering_round=shattering_round,
        paper_bound=(start["max_degree"] ** 4)
        * math.log(max(n, 2)),
    )


def profile_trace(
    path: str,
    *,
    run: int = 0,
    threshold: float = DEFAULT_THRESHOLD,
    unresolved: Any = _NO_SENTINEL,
) -> ShatteringProfile:
    """Profile a JSONL trace file, streaming (see
    :func:`profile_events` — the file is never loaded whole)."""
    from .trace import iter_trace

    return profile_events(
        iter_trace(path),
        run=run,
        threshold=threshold,
        unresolved=unresolved,
    )


def render_profile_report(profile: ShatteringProfile) -> str:
    """Plain-text report tying the measured curve to Theorem 3."""
    expected_rounds = (
        math.log(math.log(max(profile.n, 3)))
        / math.log(max(profile.max_degree, 2))
        if profile.n > 2
        else 0.0
    )
    header = render_kv(
        f"shattering profile: {profile.algorithm}",
        [
            ["n", profile.n],
            ["edges", profile.num_edges],
            ["max degree", profile.max_degree],
            ["rounds", profile.rounds],
            ["resolved in setup", profile.setup_resolved],
            ["threshold", profile.threshold],
            ["shattering round", profile.shattering_round],
            ["O(log_d log n) scale", f"{expected_rounds:.2f}"],
            [
                "component bound d^4 ln n",
                f"{profile.paper_bound:.1f}",
            ],
        ],
    )
    table = render_table(
        ["round", "resolved", "F(t)", "survivors", "comps", "max comp"],
        [
            [
                s.round,
                s.resolved,
                f"{s.halt_fraction:.4f}",
                s.survivors,
                s.num_components,
                s.max_component,
            ]
            for s in profile.curve
        ],
    )
    verdicts = "\n".join(
        f"[{'ok' if passed else 'FAIL'}] {name}: {detail}"
        for name, passed, detail in profile.checks()
    )
    interpretation = (
        "Theorem 3 (graph shattering): an optimal RandLOCAL algorithm "
        "resolves most vertices within O(log_d log n) rounds; the "
        "unresolved survivors induce components of size poly(d) log n, "
        "finished by a deterministic algorithm.  The F(t) curve above "
        "should rise past the threshold within a few rounds and the "
        "surviving max component should stay under the bound."
    )
    return "\n\n".join([header, table, verdicts, interpretation])


__all__ = [
    "DEFAULT_THRESHOLD",
    "RoundShatterStats",
    "ShatteringProfile",
    "profile_events",
    "profile_trace",
    "render_profile_report",
]

"""JSONL trace streaming with a versioned, deterministic schema.

:class:`JsonlTraceObserver` writes one JSON object per engine event,
one per line.  Determinism is a hard contract (an acceptance criterion
of the telemetry layer): the bytes are identical across repeated runs
of the same seed and across the fast/reference engines, because

- keys are sorted and separators are fixed (no whitespace variance);
- no wall-clock timestamps and no engine-identifying fields appear;
- values are canonicalized by :func:`_json_safe` — sets are sorted,
  tuples become lists, and objects whose ``repr`` would embed a memory
  address are replaced by a stable type marker.

Schema (``schema``/``version`` stamped on the ``run_start`` line):

- ``run_start``: algorithm, model, n, m, max_degree, max_rounds, seed,
  and (unless ``topology=False``) the edge list — everything the
  shattering profiler needs to work from the trace alone.
- ``round_start`` / ``round_end``: round boundaries with activity
  counts; bulk-skipped sleeping rounds appear like any other round.
- ``publish`` (with estimated ``bytes``; the value itself only under
  ``payload_values=True``), ``halt`` (always carries the output value
  — profilers key on it), ``failure``.
- ``fault`` (v2): an injected fault from :mod:`repro.faults` — carries
  the fault ``kind`` (``crash``/``drop``/``duplicate``/``corrupt``/
  ``budget``) plus ``port``/``detail`` when set; ``v`` is ``null`` for
  run-level faults (budget exhaustion).
- ``run_end``: rounds, messages, failure count.

Per-vertex ``step`` events are off by default (``node_steps=True`` to
enable) — they dominate trace size without serving the built-in
profilers.

Version history: v1 had no ``fault`` events; v2 added them (and
nothing else), so every v1 trace is also a valid v2 trace.  The reader
accepts both and rejects versions newer than it understands.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

from ..core.engine import RunMeta, RunResult
from ..core.errors import FaultEvent
from .metrics import estimate_payload_bytes
from .observer import RunObserver

TRACE_SCHEMA = "repro.obs.trace"
TRACE_VERSION = 2

#: Schema versions :func:`read_trace` / :func:`iter_trace` understand.
SUPPORTED_TRACE_VERSIONS = (1, 2)


def _json_safe(value: Any) -> Any:
    """Canonical JSON form of an arbitrary published/output value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [_json_safe(item) for item in value]
        return sorted(
            items,
            key=lambda x: json.dumps(x, sort_keys=True, default=str),
        )
    if isinstance(value, dict):
        return {
            _key_str(k): _json_safe(v) for k, v in value.items()
        }
    if type(value).__repr__ is object.__repr__:
        # Default repr embeds a memory address — never let one reach
        # the stream, it would break byte-identity across runs.
        return {"__opaque__": type(value).__name__}
    return {"__repr__": repr(value)}


def _key_str(key: Any) -> str:
    if isinstance(key, str):
        return key
    return json.dumps(_json_safe(key), sort_keys=True, default=str)


def _dumps(obj: Dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class JsonlTraceObserver(RunObserver):
    """Stream engine events to a JSONL file (or open text stream).

    Parameters
    ----------
    target:
        Path to (over)write, or an already-open text stream (not
        closed by :meth:`close` in that case).
    payload_values:
        Include published values on ``publish`` lines (off by default;
        halt outputs are always included).
    topology:
        Include the edge list on ``run_start`` lines so profiles can
        be computed from the trace alone.
    node_steps:
        Emit a ``step`` line per vertex step (off by default; traces
        grow by n × rounds lines when enabled).
    """

    def __init__(
        self,
        target: Union[str, TextIO],
        *,
        payload_values: bool = False,
        topology: bool = True,
        node_steps: bool = False,
    ) -> None:
        if isinstance(target, str):
            self._stream: TextIO = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.payload_values = payload_values
        self.topology = topology
        self.node_steps = node_steps
        self.events_written = 0
        self._run = -1

    # -- plumbing -------------------------------------------------------
    def _emit(self, obj: Dict[str, Any]) -> None:
        self._stream.write(_dumps(obj))
        self._stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "JsonlTraceObserver":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- engine callbacks ----------------------------------------------
    def on_run_start(self, meta: RunMeta) -> None:
        self._run += 1
        line: Dict[str, Any] = {
            "event": "run_start",
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "run": self._run,
            "algorithm": meta.algorithm,
            "model": meta.model.name,
            "n": meta.n,
            "m": meta.num_edges,
            "max_degree": meta.max_degree,
            "max_rounds": meta.max_rounds,
            "seed": meta.seed,
        }
        if self.topology and meta.graph is not None:
            line["edges"] = [[u, v] for u, v in meta.graph.edges()]
        self._emit(line)

    def on_round_start(self, round_index: int, active: int) -> None:
        self._emit(
            {
                "event": "round_start",
                "run": self._run,
                "round": round_index,
                "active": active,
            }
        )

    def on_node_step(
        self, round_index: int, vertex: int, ctx: Any
    ) -> None:
        if self.node_steps:
            self._emit(
                {
                    "event": "step",
                    "run": self._run,
                    "round": round_index,
                    "v": vertex,
                }
            )

    def on_publish(
        self, round_index: int, vertex: int, value: Any
    ) -> None:
        line: Dict[str, Any] = {
            "event": "publish",
            "run": self._run,
            "round": round_index,
            "v": vertex,
            "bytes": estimate_payload_bytes(value),
        }
        if self.payload_values:
            line["value"] = _json_safe(value)
        self._emit(line)

    def on_halt(self, round_index: int, vertex: int, output: Any) -> None:
        self._emit(
            {
                "event": "halt",
                "run": self._run,
                "round": round_index,
                "v": vertex,
                "value": _json_safe(output),
            }
        )

    def on_failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        self._emit(
            {
                "event": "failure",
                "run": self._run,
                "round": round_index,
                "v": vertex,
                "reason": reason,
            }
        )

    def on_fault(
        self,
        round_index: int,
        vertex: Optional[int],
        fault: FaultEvent,
    ) -> None:
        line: Dict[str, Any] = {
            "event": "fault",
            "run": self._run,
            "round": round_index,
            "v": vertex,
        }
        line.update(fault.as_record())
        self._emit(line)

    def on_round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        self._emit(
            {
                "event": "round_end",
                "run": self._run,
                "round": round_index,
                "awake": awake,
                "halted": halted,
                "messages": messages,
            }
        )

    def on_run_end(self, result: RunResult) -> None:
        self._emit(
            {
                "event": "run_end",
                "run": self._run,
                "rounds": result.rounds,
                "messages": result.messages,
                "failures": len(result.failures),
            }
        )
        self._stream.flush()


def read_trace(
    path: str, run: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event dicts.

    With ``run`` given, only that run's events are returned; raises
    ``ValueError`` if the trace contains no such run.
    """
    events = list(iter_trace(path))
    if run is None:
        return events
    selected = [e for e in events if e.get("run") == run]
    if not selected:
        raise ValueError(f"trace {path!r} has no events for run {run}")
    return selected


def iter_trace(path: str) -> Iterator[Dict[str, Any]]:
    """Stream a JSONL trace without loading it whole.

    Accepts every schema version in :data:`SUPPORTED_TRACE_VERSIONS`
    (v1 traces from before fault events read fine); a ``run_start``
    declaring an unknown or future version raises ``ValueError``
    instead of silently misreading events this reader predates.
    """
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            event: Dict[str, Any] = json.loads(line)
            if event.get("event") == "run_start":
                _check_readable(event, path)
            yield event


def _check_readable(run_start: Dict[str, Any], path: str) -> None:
    # Hand-built or pre-versioning traces omit the schema/version keys
    # entirely and stay readable; a *declared* foreign schema or an
    # unknown version is rejected rather than misparsed.
    schema = run_start.get("schema")
    if schema is not None and schema != TRACE_SCHEMA:
        raise ValueError(
            f"trace {path!r} declares schema {schema!r}; "
            f"expected {TRACE_SCHEMA!r}"
        )
    version = run_start.get("version")
    if version is not None and version not in SUPPORTED_TRACE_VERSIONS:
        raise ValueError(
            f"trace {path!r} declares schema version {version!r}; this "
            f"reader understands versions {SUPPORTED_TRACE_VERSIONS}"
        )


__all__ = [
    "JsonlTraceObserver",
    "SUPPORTED_TRACE_VERSIONS",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "iter_trace",
    "read_trace",
]

"""JSONL trace streaming with a versioned, deterministic schema.

:class:`JsonlTraceObserver` writes one JSON object per engine event,
one per line.  Determinism is a hard contract (an acceptance criterion
of the telemetry layer): the bytes are identical across repeated runs
of the same seed and across the fast/reference engines, because

- keys are sorted and separators are fixed (no whitespace variance);
- no wall-clock timestamps and no engine-identifying fields appear;
- values are canonicalized by :func:`_json_safe` — sets are sorted,
  tuples become lists, and objects whose ``repr`` would embed a memory
  address are replaced by a stable type marker.

Schema (``schema``/``version`` stamped on the ``run_start`` line):

- ``run_start``: algorithm, model, n, m, max_degree, max_rounds, seed,
  and (unless ``topology=False``) the edge list — everything the
  shattering profiler needs to work from the trace alone.
- ``round_start`` / ``round_end``: round boundaries with activity
  counts; bulk-skipped sleeping rounds appear like any other round.
- ``publish`` (with estimated ``bytes``; the value itself only under
  ``payload_values=True``), ``halt`` (always carries the output value
  — profilers key on it), ``failure``.
- ``fault`` (v2): an injected fault from :mod:`repro.faults` — carries
  the fault ``kind`` (``crash``/``drop``/``duplicate``/``corrupt``/
  ``budget``) plus ``port``/``detail`` when set; ``v`` is ``null`` for
  run-level faults (budget exhaustion).
- ``run_end``: rounds, messages, failure count.

Per-vertex ``step`` events are off by default (``node_steps=True`` to
enable) — they dominate trace size without serving the built-in
profilers.

Version history: v1 had no ``fault`` events; v2 added them (and
nothing else), so every v1 trace is also a valid v2 trace.  v3 added
the constant ``emission_modes`` header field on ``run_start``,
declaring that the trace may have been produced by per-event *or*
batched (columnar) emission — deliberately **not** recording which:
event bodies are byte-identical across both, so the bytes must not
betray the backend.  The reader accepts v1–v3 and rejects versions
newer than it understands.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

from ..core.engine import RunMeta, RunResult, SETUP_ROUND
from ..core.errors import FaultEvent
from .metrics import estimate_payload_bytes
from .observer import BatchRunObserver, RoundBatch, iter_scalar_events

TRACE_SCHEMA = "repro.obs.trace"
TRACE_VERSION = 3

#: Schema versions :func:`read_trace` / :func:`iter_trace` understand.
SUPPORTED_TRACE_VERSIONS = (1, 2, 3)

#: v3 header metadata: the emission strategies a writer of this version
#: may use.  A constant — the same trace bytes must come out of the
#: per-event scalar engines and the batched vectorized backend, so the
#: header cannot depend on which one actually ran (design invariant;
#: timing and backend attribution live in the nondeterministic sidecar,
#: :mod:`repro.obs.timing`).
EMISSION_MODES = ("per-event", "batched")


def _json_safe(value: Any) -> Any:
    """Canonical JSON form of an arbitrary published/output value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [_json_safe(item) for item in value]
        return sorted(
            items,
            key=lambda x: json.dumps(x, sort_keys=True, default=str),
        )
    if isinstance(value, dict):
        return {
            _key_str(k): _json_safe(v) for k, v in value.items()
        }
    if type(value).__repr__ is object.__repr__:
        # Default repr embeds a memory address — never let one reach
        # the stream, it would break byte-identity across runs.
        return {"__opaque__": type(value).__name__}
    return {"__repr__": repr(value)}


def _key_str(key: Any) -> str:
    if isinstance(key, str):
        return key
    return json.dumps(_json_safe(key), sort_keys=True, default=str)


def _dumps(obj: Dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _value_json(value: Any) -> str:
    """Serialized form of one value field, byte-identical to how
    :func:`_dumps` renders it nested (same sort/separators)."""
    if type(value) is int:  # the hot case: halt outputs, publish ints
        return repr(value)
    return json.dumps(
        _json_safe(value), sort_keys=True, separators=(",", ":")
    )


class JsonlTraceObserver(BatchRunObserver):
    """Stream engine events to a JSONL file (or open text stream).

    Batch-capable: on the scalar engines every event arrives through a
    per-event callback; on the vectorized backend whole rounds arrive
    through :meth:`on_round_batch` and are serialized with the exact
    same bytes (pinned by the observer-neutrality relation).  The
    backend identity announced via ``on_backend_info`` is deliberately
    *not* written — trace bytes must not betray the backend.

    Parameters
    ----------
    target:
        Path to (over)write, or an already-open text stream (not
        closed by :meth:`close` in that case).
    payload_values:
        Include published values on ``publish`` lines (off by default;
        halt outputs are always included).
    topology:
        Include the edge list on ``run_start`` lines so profiles can
        be computed from the trace alone.
    node_steps:
        Emit a ``step`` line per vertex step (off by default; traces
        grow by n × rounds lines when enabled).
    resume:
        Open an existing ``target`` path without truncating it, so a
        checkpointed run (see :mod:`repro.core.checkpoint`) can rewind
        the stream to its snapshot position and continue — the resumed
        trace is byte-identical to an uninterrupted run's.  Ignored for
        stream targets (the caller owns their position).

    The observer is checkpoint-capable: its resumable position is the
    (run counter, event counter, stream offset) triple, and restoring
    it truncates everything the killed process wrote past the
    snapshot.  ``restore_checkpoint(None)`` rewinds to a brand-new
    trace (offset 0).
    """

    checkpoint_capable = True

    def __init__(
        self,
        target: Union[str, TextIO],
        *,
        payload_values: bool = False,
        topology: bool = True,
        node_steps: bool = False,
        resume: bool = False,
    ) -> None:
        super().__init__()
        if isinstance(target, str):
            mode = "r+" if resume and os.path.exists(target) else "w"
            self._stream: TextIO = open(target, mode, encoding="utf-8")
            if mode == "r+":
                self._stream.seek(0, os.SEEK_END)
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.payload_values = payload_values
        self.topology = topology
        self.node_steps = node_steps
        self.events_written = 0
        self._run = -1

    # -- plumbing -------------------------------------------------------
    def _emit(self, obj: Dict[str, Any]) -> None:
        self._stream.write(_dumps(obj))
        self._stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    # -- checkpoint protocol -------------------------------------------
    def checkpoint_state(self) -> Any:
        """Resumable position: everything needed to continue the
        stream byte-identically from this round boundary."""
        self._stream.flush()
        return {
            "run": self._run,
            "events": self.events_written,
            "pos": self._stream.tell(),
        }

    def restore_checkpoint(self, state: Any) -> None:
        """Rewind to a snapshot position (``None``: rewind to a brand
        new, empty trace).

        A positional restore seeks without truncating: any bytes the
        killed process wrote past the snapshot are — by the determinism
        contract — a byte-identical prefix of what the resumed run will
        rewrite in place, and a multi-slot resume restores *forward*
        (done slot after done slot, then the in-flight snapshot), so
        truncating here would chop positions a later slot still needs.
        Only the fresh-start reset truncates."""
        self._batch_pending = None
        self._stream.flush()
        if state is None:
            self._run = -1
            self.events_written = 0
            self._stream.seek(0)
            self._stream.truncate()
        else:
            self._run = state["run"]
            self.events_written = state["events"]
            self._stream.seek(state["pos"])

    def __enter__(self) -> "JsonlTraceObserver":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- engine callbacks ----------------------------------------------
    def on_run_start(self, meta: RunMeta) -> None:
        self._run += 1
        line: Dict[str, Any] = {
            "event": "run_start",
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "emission_modes": list(EMISSION_MODES),
            "run": self._run,
            "algorithm": meta.algorithm,
            "model": meta.model.name,
            "n": meta.n,
            "m": meta.num_edges,
            "max_degree": meta.max_degree,
            "max_rounds": meta.max_rounds,
            "seed": meta.seed,
        }
        if self.topology and meta.graph is not None:
            line["edges"] = [[u, v] for u, v in meta.graph.edges()]
        self._emit(line)

    def on_round_start(self, round_index: int, active: int) -> None:
        self._emit(
            {
                "event": "round_start",
                "run": self._run,
                "round": round_index,
                "active": active,
            }
        )

    def on_node_step(
        self, round_index: int, vertex: int, ctx: Any
    ) -> None:
        if self.node_steps:
            self._emit(
                {
                    "event": "step",
                    "run": self._run,
                    "round": round_index,
                    "v": vertex,
                }
            )

    def on_publish(
        self, round_index: int, vertex: int, value: Any
    ) -> None:
        line: Dict[str, Any] = {
            "event": "publish",
            "run": self._run,
            "round": round_index,
            "v": vertex,
            "bytes": estimate_payload_bytes(value),
        }
        if self.payload_values:
            line["value"] = _json_safe(value)
        self._emit(line)

    def on_halt(self, round_index: int, vertex: int, output: Any) -> None:
        self._emit(
            {
                "event": "halt",
                "run": self._run,
                "round": round_index,
                "v": vertex,
                "value": _json_safe(output),
            }
        )

    def on_failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        self._emit(
            {
                "event": "failure",
                "run": self._run,
                "round": round_index,
                "v": vertex,
                "reason": reason,
            }
        )

    def on_fault(
        self,
        round_index: int,
        vertex: Optional[int],
        fault: FaultEvent,
    ) -> None:
        line: Dict[str, Any] = {
            "event": "fault",
            "run": self._run,
            "round": round_index,
            "v": vertex,
        }
        line.update(fault.as_record())
        self._emit(line)

    def on_round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        self._emit(
            {
                "event": "round_end",
                "run": self._run,
                "round": round_index,
                "awake": awake,
                "halted": halted,
                "messages": messages,
            }
        )

    def on_run_end(self, result: RunResult) -> None:
        self._emit(
            {
                "event": "run_end",
                "run": self._run,
                "rounds": result.rounds,
                "messages": result.messages,
                "failures": len(result.failures),
            }
        )
        self._stream.flush()

    # -- the columnar emission path ------------------------------------
    def on_run_fault(self, round_index: int, fault: FaultEvent) -> None:
        # Vectorized delivery of the scalar engines' vertex-``None``
        # ``on_fault`` (round-budget exhaustion) — same line.
        self.on_fault(round_index, None, fault)

    def on_round_batch(self, batch: RoundBatch) -> None:
        """Serialize one round batch — byte-identical to the per-event
        path.

        Publish/halt-heavy rounds (the n = 10^6 regime) take a direct
        string-building path: every hot line has only integer fields in
        a fixed sorted-key order, so the JSON is assembled with
        f-strings and written in one call instead of one
        ``json.dumps`` per event.  Rounds with faults, failures, or
        step lines replay :func:`iter_scalar_events` through the
        per-event callbacks — the exact same code that serves the
        scalar engines.
        """
        r = batch.round_index
        run = self._run
        if r != SETUP_ROUND:
            self._stream.write(
                f'{{"active":{batch.active},"event":"round_start",'
                f'"round":{r},"run":{run}}}\n'
            )
            self.events_written += 1
        if (
            batch.faults
            or len(batch.failed)
            or (self.node_steps and len(batch.stepped))
        ):
            for event in iter_scalar_events(batch):
                kind = event[0]
                if kind == "publish":
                    self.on_publish(event[1], event[2], event[3])
                elif kind == "halt":
                    self.on_halt(event[1], event[2], event[3])
                elif kind == "step":
                    self.on_node_step(event[1], event[2], None)
                elif kind == "failure":
                    self.on_failure(event[1], event[2], event[3])
                else:
                    self.on_fault(event[1], event[2], event[3])
        else:
            self._write_publish_halt(batch, r, run)
        if r != SETUP_ROUND:
            self._stream.write(
                f'{{"awake":{batch.awake},"event":"round_end",'
                f'"halted":{batch.halted},"messages":{batch.messages},'
                f'"round":{r},"run":{run}}}\n'
            )
            self.events_written += 1

    def _write_publish_halt(
        self, batch: RoundBatch, r: int, run: int
    ) -> None:
        published = batch.published
        pverts = (
            published.tolist()
            if hasattr(published, "tolist")
            else list(published)
        )
        lines: List[str] = []
        if pverts:
            pbytes = batch.publish_bytes()
            if hasattr(pbytes, "tolist"):
                pbytes = pbytes.tolist()
            values = (
                batch.publish_values() if self.payload_values else None
            )
            if values is None:
                pub_lines = [
                    f'{{"bytes":{b},"event":"publish","round":{r},'
                    f'"run":{run},"v":{v}}}'
                    for v, b in zip(pverts, pbytes)
                ]
            else:
                pub_lines = [
                    f'{{"bytes":{b},"event":"publish","round":{r},'
                    f'"run":{run},"v":{v},"value":{_value_json(val)}}}'
                    for v, b, val in zip(pverts, pbytes, values)
                ]
        else:
            pub_lines = []
        halted = batch.halted_verts
        if len(halted):
            hverts = (
                halted.tolist()
                if hasattr(halted, "tolist")
                else list(halted)
            )
            hvals = batch.halt_values
            halt_lines = [
                f'{{"event":"halt","round":{r},"run":{run},"v":{v},'
                f'"value":{_value_json(out)}}}'
                for v, out in zip(hverts, hvals)
            ]
            # Interleave in per-vertex ascending order, a vertex's
            # publish before its halt — the scalar event order.
            i = j = 0
            np_, nh = len(pub_lines), len(halt_lines)
            while i < np_ or j < nh:
                if j >= nh or (i < np_ and pverts[i] <= hverts[j]):
                    lines.append(pub_lines[i])
                    i += 1
                else:
                    lines.append(halt_lines[j])
                    j += 1
        else:
            lines = pub_lines
        if lines:
            self._stream.write("\n".join(lines))
            self._stream.write("\n")
            self.events_written += len(lines)


def read_trace(
    path: str, run: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into a list of event dicts.

    With ``run`` given, only that run's events are returned; raises
    ``ValueError`` if the trace contains no such run.
    """
    events = list(iter_trace(path))
    if run is None:
        return events
    selected = [e for e in events if e.get("run") == run]
    if not selected:
        raise ValueError(f"trace {path!r} has no events for run {run}")
    return selected


def iter_trace(path: str) -> Iterator[Dict[str, Any]]:
    """Stream a JSONL trace without loading it whole.

    Accepts every schema version in :data:`SUPPORTED_TRACE_VERSIONS`
    (v1 traces from before fault events read fine); a ``run_start``
    declaring an unknown or future version raises ``ValueError``
    instead of silently misreading events this reader predates.
    """
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            event: Dict[str, Any] = json.loads(line)
            if event.get("event") == "run_start":
                _check_readable(event, path)
            yield event


def _check_readable(run_start: Dict[str, Any], path: str) -> None:
    # Hand-built or pre-versioning traces omit the schema/version keys
    # entirely and stay readable; a *declared* foreign schema or an
    # unknown version is rejected rather than misparsed.
    schema = run_start.get("schema")
    if schema is not None and schema != TRACE_SCHEMA:
        raise ValueError(
            f"trace {path!r} declares schema {schema!r}; "
            f"expected {TRACE_SCHEMA!r}"
        )
    version = run_start.get("version")
    if version is not None and version not in SUPPORTED_TRACE_VERSIONS:
        raise ValueError(
            f"trace {path!r} declares schema version {version!r}; this "
            f"reader understands versions {SUPPORTED_TRACE_VERSIONS}"
        )


__all__ = [
    "EMISSION_MODES",
    "JsonlTraceObserver",
    "SUPPORTED_TRACE_VERSIONS",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "iter_trace",
    "read_trace",
]

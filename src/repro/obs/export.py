"""Export metric summaries to standard formats.

:func:`repro.obs.metrics.MetricsObserver.summary` (and the merged
summaries sweeps produce) are plain dicts; this module renders them

- as **Prometheus text exposition format** (version 0.0.4) — counters
  and gauges map directly, histograms become the conventional
  ``_count``/``_sum`` pair plus ``_min``/``_max`` gauges (the metrics
  registry keeps exact count/sum/min/max rather than buckets, so
  bucketed ``le`` series would be fabrication);
- as a **canonical JSON snapshot** — the summary dict wrapped with an
  export schema marker, serialized with sorted keys and fixed
  separators so repeated exports of the same summary are byte-equal.

Exports are *views* of the deterministic plane: exporting never
mutates a summary, and the bytes produced from a given summary are
stable.  Wall-clock scrape timestamps are deliberately omitted — a
scraper adds its own.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional

from ..core.atomicio import atomic_write_text
from .metrics import SUMMARY_VERSION

EXPORT_SCHEMA = "repro.obs.export"
EXPORT_VERSION = 1

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")


def _check_summary(summary: Dict[str, Any]) -> None:
    schema = summary.get("schema")
    if schema != "repro.obs.metrics":
        raise ValueError(
            f"cannot export summary with schema {schema!r}; expected "
            "'repro.obs.metrics' (MetricsObserver.summary() output)"
        )
    version = summary.get("version")
    if not isinstance(version, int) or version > SUMMARY_VERSION:
        raise ValueError(
            f"cannot export summary version {version!r}; this "
            f"exporter understands <= {SUMMARY_VERSION}"
        )


def _prom_name(prefix: str, name: str) -> str:
    candidate = prefix + _NAME_FIX.sub("_", name)
    if not _NAME_OK.match(candidate):
        candidate = "_" + candidate
    return candidate


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(
    summary: Dict[str, Any], *, prefix: str = "repro_"
) -> str:
    """Render a metrics summary as Prometheus text exposition format.

    Metric names are prefixed and sanitized (every character outside
    ``[a-zA-Z0-9_:]`` becomes ``_``); output is sorted by metric name
    so the bytes are a pure function of the summary.
    """
    _check_summary(summary)
    lines = []
    metrics = summary.get("metrics", {})
    for name in sorted(metrics):
        snap = metrics[name]
        kind = snap.get("type")
        base = _prom_name(prefix, name)
        if kind == "counter":
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base} {_prom_value(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_prom_value(snap['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {base} summary")
            lines.append(f"{base}_count {_prom_value(snap['count'])}")
            lines.append(f"{base}_sum {_prom_value(snap['total'])}")
            lines.append(f"# TYPE {base}_min gauge")
            lines.append(f"{base}_min {_prom_value(snap['min'])}")
            lines.append(f"# TYPE {base}_max gauge")
            lines.append(f"{base}_max {_prom_value(snap['max'])}")
        else:
            raise ValueError(
                f"metric {name!r} has unknown type {kind!r}"
            )
    derived = summary.get("derived") or {}
    for name in sorted(derived):
        value = derived[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        base = _prom_name(prefix + "derived_", name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_prom_value(value)}")
    runs = summary.get("runs")
    if isinstance(runs, int):
        base = _prom_name(prefix, "runs_observed")
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {runs}")
    return "\n".join(lines) + "\n"


def to_json_snapshot(summary: Dict[str, Any]) -> str:
    """Canonical JSON export (sorted keys, fixed separators)."""
    _check_summary(summary)
    return json.dumps(
        {
            "schema": EXPORT_SCHEMA,
            "version": EXPORT_VERSION,
            "summary": summary,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def write_metrics_export(
    summary: Dict[str, Any],
    path: str,
    *,
    fmt: Optional[str] = None,
    prefix: str = "repro_",
) -> str:
    """Write ``summary`` to ``path`` as Prometheus text or JSON.

    ``fmt`` is ``"prometheus"`` or ``"json"``; left ``None`` it is
    inferred from the extension (``.prom``/``.txt`` → Prometheus,
    everything else → JSON).  Returns the format used.
    """
    if fmt is None:
        fmt = (
            "prometheus"
            if path.endswith((".prom", ".txt"))
            else "json"
        )
    if fmt == "prometheus":
        text = to_prometheus(summary, prefix=prefix)
    elif fmt == "json":
        text = to_json_snapshot(summary) + "\n"
    else:
        raise ValueError(
            f"unknown export format {fmt!r}; "
            "expected 'prometheus' or 'json'"
        )
    atomic_write_text(path, text)
    return fmt


__all__ = [
    "EXPORT_SCHEMA",
    "EXPORT_VERSION",
    "to_json_snapshot",
    "to_prometheus",
    "write_metrics_export",
]

"""Plane 2: the nondeterministic timing/resource sidecar.

The deterministic plane (:class:`~repro.obs.metrics.MetricsObserver`,
:class:`~repro.obs.trace.JsonlTraceObserver`) is held to byte-identity
across engines, backends, and repeated runs of the same seed.  Wall
clock, memory, and GC activity can never meet that bar — so they live
here, in a **separate sidecar stream** that is *excluded from the
byte-identity contract by design*:

- :class:`TimingSidecarObserver` writes its own JSONL file
  (``schema repro.obs.timing``), never interleaved with the
  deterministic trace.  Two runs of the same seed produce identical
  traces and *different* sidecars; that is correct, not a bug.
- :class:`ProgressReporter` renders live progress (round counter,
  rounds/sec) to a terminal stream; it writes nothing durable.

Both are :class:`~repro.obs.observer.BatchRunObserver` subclasses that
implement **only** the batch callbacks — the inherited scalar shim
translates per-event streams from the fast/reference engines into the
same per-round batches the vectorized backend emits natively, so one
code path serves every engine.  ``on_backend_info`` (batch plane only)
attributes each run to the backend/kernel that executed it; scalar
engines never call it, so the attribution stays ``null`` there.

Nothing in this module imports numpy: the sidecar must work in the
no-numpy environment exactly as in the accelerated one.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from typing import Any, Dict, Optional, TextIO, Union

from ..core.engine import RunMeta, RunResult, SETUP_ROUND
from ..core.errors import FaultEvent
from .observer import BatchRunObserver, RoundBatch

#: Stamped on every ``timing_run_start`` line.  The sidecar schema is
#: versioned independently of the deterministic trace schema — readers
#: of one must never assume anything about the other.
TIMING_SCHEMA = "repro.obs.timing"
TIMING_VERSION = 1


def _rss_kb() -> Optional[int]:
    """Peak resident set size in KiB, or ``None`` where unavailable."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    rss = usage.ru_maxrss
    if sys.platform == "darwin":
        rss //= 1024
    return int(rss)


def _gc_collections() -> int:
    """Total collections across all GC generations."""
    return sum(stat.get("collections", 0) for stat in gc.get_stats())


class TimingSidecarObserver(BatchRunObserver):
    """Wall-clock/resource telemetry as a JSONL sidecar stream.

    Parameters
    ----------
    sink:
        Path or writable text stream for the sidecar JSONL.
    sample_every:
        Emit a ``timing_round`` line every this-many rounds (default
        64; per-round lines for million-round runs would dwarf the data
        they annotate).  Round 0 and the final round always sample.
    resources:
        Include RSS and GC readings (default True; the readings cost a
        couple of syscalls per sample).

    Every line carries ``t`` — seconds since the observer was attached
    (``time.perf_counter`` deltas, monotonic) — never absolute wall
    dates, so sidecars diff cleanly even though they are not
    byte-stable.

    The sidecar survives dying runs: ``on_run_abort`` writes a final
    ``timing_run_abort`` line and flushes, so a run killed by a
    failure, an injected fault budget, or ``KeyboardInterrupt`` keeps
    its timing plane up to the fatal round.  Supervisor layers (see
    :mod:`repro.supervise`) append their own lifecycle rows — retry,
    degradation, resume — through :meth:`record_event`.

    Being plane-2, the sidecar is excluded from the resume
    byte-identity contract: it is ``checkpoint_capable`` with a trivial
    (``None``) resumable position, and a resumed run simply *appends*
    to the sidecar — the interrupted rows remain, annotated by the
    supervisor's ``resume`` event, rather than being rewound.
    """

    #: Plane-2: participates in checkpointed runs without rewinding
    #: (see class docstring).
    checkpoint_capable = True

    def __init__(
        self,
        sink: Union[str, TextIO],
        *,
        sample_every: int = 64,
        resources: bool = True,
    ) -> None:
        super().__init__()
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if isinstance(sink, str):
            self._stream: TextIO = open(sink, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self.sample_every = sample_every
        self.resources = resources
        self.lines_written = 0
        self._t0 = time.perf_counter()
        self._run = -1
        self._run_t0 = 0.0
        self._last_sample_t = 0.0
        self._rounds = 0
        self._backend: Optional[str] = None
        self._kernel: Optional[str] = None

    # -- plumbing ---------------------------------------------------

    def _emit(self, obj: Dict[str, Any]) -> None:
        self._stream.write(
            json.dumps(obj, sort_keys=True, separators=(",", ":"))
        )
        self._stream.write("\n")
        self.lines_written += 1

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _resource_fields(self) -> Dict[str, Any]:
        if not self.resources:
            return {}
        return {"rss_kb": _rss_kb(), "gc_collections": _gc_collections()}

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "TimingSidecarObserver":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- batch-plane callbacks --------------------------------------

    def on_run_start(self, meta: RunMeta) -> None:
        super().on_run_start(meta)
        self._run += 1
        self._run_t0 = self._now()
        self._last_sample_t = self._run_t0
        self._rounds = 0
        self._backend = None
        self._kernel = None
        line = {
            "event": "timing_run_start",
            "schema": TIMING_SCHEMA,
            "version": TIMING_VERSION,
            "run": self._run,
            "algorithm": meta.algorithm,
            "n": meta.n,
            "t": round(self._run_t0, 6),
        }
        line.update(self._resource_fields())
        self._emit(line)

    def on_backend_info(self, backend: str, kernel: str) -> None:
        self._backend = backend
        self._kernel = kernel

    def on_round_batch(self, batch: RoundBatch) -> None:
        if batch.round_index == SETUP_ROUND:
            return
        self._rounds = batch.round_index + 1
        if (
            batch.round_index % self.sample_every != 0
            and batch.round_index != 0
        ):
            return
        now = self._now()
        dt = now - self._last_sample_t
        self._last_sample_t = now
        self._emit(
            {
                "event": "timing_round",
                "run": self._run,
                "round": batch.round_index,
                "active": batch.active,
                "t": round(now, 6),
                "dt": round(dt, 6),
            }
        )

    def on_run_fault(self, round_index: int, fault: FaultEvent) -> None:
        self._emit(
            {
                "event": "timing_run_fault",
                "run": self._run,
                "round": round_index,
                "kind": getattr(fault, "kind", None),
                "t": round(self._now(), 6),
            }
        )

    def restore_checkpoint(self, state: Any) -> None:
        # Plane-2: nothing to rewind — a resumed (or restarted) run
        # appends.  Only the scalar-shim batch buffer is reset.
        self._batch_pending = None

    def on_run_abort(
        self, round_index: int, error: BaseException
    ) -> None:
        """Finalize the sidecar for a dying run: one terminal line with
        the fatal round and error type, then a flush so the bytes
        survive the process (the engine re-raises right after)."""
        line = {
            "event": "timing_run_abort",
            "run": self._run,
            "round": round_index,
            "error": type(error).__name__,
            "t": round(self._now(), 6),
        }
        line.update(self._resource_fields())
        self._emit(line)
        self._stream.flush()

    def record_event(self, kind: str, **fields: Any) -> None:
        """Append a supervisor lifecycle row (retry, degradation,
        resume, outcome) and flush.  ``kind`` lands in the ``event``
        column prefixed ``supervisor_``; extra fields pass through."""
        line: Dict[str, Any] = dict(fields)
        line["event"] = f"supervisor_{kind}"
        line["t"] = round(self._now(), 6)
        self._emit(line)
        self._stream.flush()

    def on_run_end(self, result: RunResult) -> None:
        super().on_run_end(result)
        now = self._now()
        wall = now - self._run_t0
        line = {
            "event": "timing_run_end",
            "run": self._run,
            "rounds": result.rounds,
            "failures": len(result.failures),
            "backend": self._backend,
            "kernel": self._kernel,
            "t": round(now, 6),
            "wall_seconds": round(wall, 6),
            "rounds_per_sec": (
                round(result.rounds / wall, 3) if wall > 0 else None
            ),
        }
        line.update(self._resource_fields())
        self._emit(line)
        self._stream.flush()


def read_timing_sidecar(path: str):
    """Stream a timing sidecar's JSONL lines as dicts.

    Rejects files whose first line declares a foreign schema — a
    deterministic trace fed here by mistake should error loudly, not
    be half-parsed.
    """
    with open(path, "r", encoding="utf-8") as stream:
        first = True
        for raw in stream:
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw)
            if first:
                first = False
                schema = line.get("schema")
                if schema != TIMING_SCHEMA:
                    raise ValueError(
                        f"{path!r} declares schema {schema!r}; "
                        f"expected {TIMING_SCHEMA!r} — deterministic "
                        "traces belong to repro.obs.trace.read_trace"
                    )
                version = line.get("version")
                if version is not None and version > TIMING_VERSION:
                    raise ValueError(
                        f"{path!r} declares timing schema version "
                        f"{version!r}; this reader understands "
                        f"<= {TIMING_VERSION}"
                    )
            yield line


class ProgressReporter(BatchRunObserver):
    """Live run progress on a terminal stream (default stderr).

    Prints a throttled carriage-return status line per sampled round —
    run index, round counter, active vertices, rounds/sec — and a final
    newline-terminated summary per run.  Purely cosmetic: nothing it
    writes is machine-read, and it never touches the deterministic
    plane.
    """

    #: Nothing durable to rewind — a checkpointed run may keep its
    #: progress ticker attached.
    checkpoint_capable = True

    def restore_checkpoint(self, state: Any) -> None:
        self._batch_pending = None

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        min_interval: float = 0.2,
        label: str = "",
    ) -> None:
        super().__init__()
        self._stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.label = label
        self._run = -1
        self._run_t0 = 0.0
        self._last_print = 0.0
        self._algorithm = ""
        self._dirty = False

    def _write(self, text: str) -> None:
        try:
            self._stream.write(text)
            self._stream.flush()
        except (OSError, ValueError):  # closed/broken terminal: go mute
            pass

    def on_run_start(self, meta: RunMeta) -> None:
        super().on_run_start(meta)
        self._run += 1
        self._algorithm = meta.algorithm
        self._run_t0 = time.perf_counter()
        self._last_print = 0.0

    def on_round_batch(self, batch: RoundBatch) -> None:
        if batch.round_index == SETUP_ROUND:
            return
        now = time.perf_counter()
        if now - self._last_print < self.min_interval:
            return
        self._last_print = now
        elapsed = now - self._run_t0
        rps = (batch.round_index + 1) / elapsed if elapsed > 0 else 0.0
        prefix = f"{self.label}: " if self.label else ""
        self._write(
            f"\r{prefix}{self._algorithm} run {self._run} "
            f"round {batch.round_index} active {batch.active} "
            f"({rps:.1f} rounds/s)   "
        )
        self._dirty = True

    def on_run_end(self, result: RunResult) -> None:
        super().on_run_end(result)
        elapsed = time.perf_counter() - self._run_t0
        prefix = f"{self.label}: " if self.label else ""
        lead = "\r" if self._dirty else ""
        self._write(
            f"{lead}{prefix}{self._algorithm} run {self._run} done: "
            f"{result.rounds} rounds in {elapsed:.2f}s"
            f"{', ' + str(len(result.failures)) + ' failures' if result.failures else ''}"
            "          \n"
        )
        self._dirty = False


def sweep_progress_printer(
    stream: Optional[TextIO] = None, *, label: str = "sweep"
):
    """A ``run_sweep(progress=...)`` callback rendering cells-done
    counts as a carriage-return ticker on ``stream`` (default stderr)."""
    out = stream if stream is not None else sys.stderr

    def tick(done: int, total: int, outcome: Any) -> None:
        status = getattr(outcome, "status", None)
        tail = f" last={status}" if status else ""
        end = "\n" if done >= total else ""
        try:
            out.write(f"\r{label}: {done}/{total} cells{tail}   {end}")
            out.flush()
        except (OSError, ValueError):
            pass

    return tick


__all__ = [
    "TIMING_SCHEMA",
    "TIMING_VERSION",
    "ProgressReporter",
    "TimingSidecarObserver",
    "read_timing_sidecar",
    "sweep_progress_printer",
]

"""Metrics collection: registry primitives and the MetricsObserver.

:class:`MetricsRegistry` is a small counters/gauges/histograms registry
(the usual production-monitoring shapes, kept dependency-free);
:class:`MetricsObserver` populates one from engine events:

- ``messages_total`` / ``publishes_total`` / ``rounds_total`` /
  ``halted_total`` / ``failed_total`` — counters;
- ``payload_bytes_total`` — counter of estimated published bytes
  (:func:`estimate_payload_bytes`; the LOCAL model's messages are
  unbounded, so this measures what an implementation *would* ship);
- ``awake_fraction`` / ``round_payload_bytes`` — per-round histograms;
- ``halt_round`` / ``locality_radius`` — per-vertex histograms, the
  latter via ball-growth accounting: a stepping vertex's information
  radius grows to ``1 + max(radius published by its neighbors)``,
  mirroring how :class:`repro.algorithms.ball.BallCollection` grows
  views.  A vertex's radius at halt is the locality it actually
  consumed — for shattering algorithms this stays far below the
  deterministic diameter bound.

Summaries are plain JSON-safe dicts so :func:`repro.analysis.run_sweep`
can pickle them back from forked workers; :func:`merge_summaries`
combines them deterministically (counters add, gauges take the max,
histograms pool their moments).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..core.engine import RunMeta, RunResult, SETUP_ROUND
from .observer import RunObserver

#: Deterministic size charged for objects whose ``repr`` would embed a
#: memory address (default ``object.__repr__``) — never call that repr,
#: it would break byte-identical summaries across runs.
_OPAQUE_OBJECT_BYTES = 16


def estimate_payload_bytes(value: Any) -> int:
    """Deterministic estimate of a published value's wire size.

    Not a serialization — a stable accounting rule: primitives cost
    their natural width, containers cost framing plus contents, and
    opaque objects cost a flat :data:`_OPAQUE_OBJECT_BYTES` (their
    ``repr`` may embed addresses, which would poison determinism).
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 2 + sum(estimate_payload_bytes(item) for item in value)
    if isinstance(value, dict):
        return 2 + sum(
            estimate_payload_bytes(k) + estimate_payload_bytes(v)
            for k, v in value.items()
        )
    if type(value).__repr__ is object.__repr__:
        return _OPAQUE_OBJECT_BYTES
    return len(repr(value).encode("utf-8"))


class Counter:
    """Monotonic count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming moments: count, total, min, max (no buckets — the
    distributions we watch are small and summaries must merge)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
        }


class MetricsRegistry:
    """Name -> metric, get-or-create, snapshot to a plain dict."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, factory: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe dump of every metric, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }


class MetricsObserver(RunObserver):
    """Populate a :class:`MetricsRegistry` from engine events.

    One instance may watch several runs (every phase of a driver under
    :func:`repro.core.observe_runs`); counters and histograms aggregate
    across runs, per-run locality state resets at each
    ``on_run_start``.  Setup-round publishes are folded into the first
    round's payload accounting.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.runs = 0
        #: Per-run, per-round curve: list (over runs) of lists of dicts.
        self.round_curves: List[List[Dict[str, Any]]] = []
        self._n = 0
        self._graph: Any = None
        self._radius: List[int] = []
        self._pub_radius: List[int] = []
        self._pending_radius: Dict[int, int] = {}
        self._round_payload = 0
        self._round_publishes = 0

    # -- engine callbacks ----------------------------------------------
    def on_run_start(self, meta: RunMeta) -> None:
        self.runs += 1
        self.round_curves.append([])
        self._n = meta.n
        self._graph = meta.graph
        self._radius = [0] * meta.n
        self._pub_radius = [0] * meta.n
        self._pending_radius = {}
        self._round_payload = 0
        self._round_publishes = 0

    def on_round_start(self, round_index: int, active: int) -> None:
        # Publishes staged last round (or in setup) became visible at
        # this round boundary — commit their information radii, exactly
        # like the engine's double buffering commits values.
        if self._pending_radius:
            for v, r in self._pending_radius.items():
                self._pub_radius[v] = r
            self._pending_radius = {}

    def on_node_step(
        self, round_index: int, vertex: int, ctx: Any
    ) -> None:
        if self._graph is not None:
            grown = self._radius[vertex]
            for u in self._graph.neighbors(vertex):
                reach = self._pub_radius[u] + 1
                if reach > grown:
                    grown = reach
            self._radius[vertex] = grown

    def on_publish(
        self, round_index: int, vertex: int, value: Any
    ) -> None:
        size = estimate_payload_bytes(value)
        self.registry.counter("publishes_total").inc()
        self.registry.counter("payload_bytes_total").inc(size)
        self._round_payload += size
        self._round_publishes += 1
        if self._radius:
            self._pending_radius[vertex] = self._radius[vertex]

    def on_halt(self, round_index: int, vertex: int, output: Any) -> None:
        self.registry.counter("halted_total").inc()
        self.registry.histogram("halt_round").observe(round_index)
        if self._radius:
            self.registry.histogram("locality_radius").observe(
                self._radius[vertex]
            )

    def on_failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        self.registry.counter("failed_total").inc()

    def on_fault(
        self, round_index: int, vertex: Optional[int], fault: Any
    ) -> None:
        # Injected-fault accounting (see repro.faults): a global count
        # plus one counter per fault kind, so merged sweep telemetry
        # reports exactly what the adversary did.
        self.registry.counter("faults_total").inc()
        self.registry.counter(f"faults_{fault.kind}_total").inc()

    def on_round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        self.registry.counter("rounds_total").inc()
        self.registry.counter("messages_total").inc(messages)
        fraction = awake / self._n if self._n else 0.0
        self.registry.histogram("awake_fraction").observe(fraction)
        self.registry.histogram("round_payload_bytes").observe(
            self._round_payload
        )
        self.round_curves[-1].append(
            {
                "round": round_index,
                "awake": awake,
                "halted": halted,
                "messages": messages,
                "publishes": self._round_publishes,
                "payload_bytes": self._round_payload,
            }
        )
        self._round_payload = 0
        self._round_publishes = 0

    def on_run_end(self, result: RunResult) -> None:
        if self._radius:
            self.registry.gauge("max_locality_radius").set(
                max(self._radius)
            )

    # -- summaries ------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Plain JSON-safe dict: scalar metrics, no per-round curves.

        This is what :func:`repro.analysis.run_sweep` ships back from
        forked workers and merges across cells — keep it picklable and
        deterministic.
        """
        return {
            "schema": "repro.obs.metrics",
            "version": 1,
            "runs": self.runs,
            "metrics": self.registry.snapshot(),
        }


def _merge_metric(
    name: str, a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    if a["type"] != b["type"]:
        raise ValueError(
            f"metric {name!r} has conflicting types: "
            f"{a['type']} vs {b['type']}"
        )
    if a["type"] == "counter":
        return {"type": "counter", "value": a["value"] + b["value"]}
    if a["type"] == "gauge":
        return {"type": "gauge", "value": max(a["value"], b["value"])}
    count = a["count"] + b["count"]
    total = a["total"] + b["total"]
    mins = [x["min"] for x in (a, b) if x["min"] is not None]
    maxs = [x["max"] for x in (a, b) if x["max"] is not None]
    return {
        "type": "histogram",
        "count": count,
        "total": total,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "mean": (total / count) if count else None,
    }


def merge_summaries(
    summaries: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Deterministically combine :meth:`MetricsObserver.summary` dicts.

    Counters add, gauges keep the maximum, histograms pool moments.
    Merging is order-insensitive for counters/histograms and reduced
    with ``max`` for gauges, so any grid order yields the same result
    — the bit-identical-to-serial contract ``run_sweep`` tests rely on.
    """
    merged: Dict[str, Any] = {
        "schema": "repro.obs.metrics",
        "version": 1,
        "runs": 0,
        "metrics": {},
    }
    metrics: Dict[str, Dict[str, Any]] = {}
    for summary in summaries:
        merged["runs"] += summary.get("runs", 0)
        for name, snap in summary.get("metrics", {}).items():
            if name in metrics:
                metrics[name] = _merge_metric(name, metrics[name], snap)
            else:
                metrics[name] = dict(snap)
    merged["metrics"] = {name: metrics[name] for name in sorted(metrics)}
    return merged


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsObserver",
    "MetricsRegistry",
    "SETUP_ROUND",
    "estimate_payload_bytes",
    "merge_summaries",
]

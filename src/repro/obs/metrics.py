"""Metrics collection: registry primitives and the MetricsObserver.

:class:`MetricsRegistry` is a small counters/gauges/histograms registry
(the usual production-monitoring shapes, kept dependency-free);
:class:`MetricsObserver` populates one from engine events:

- ``messages_total`` / ``publishes_total`` / ``rounds_total`` /
  ``halted_total`` / ``failed_total`` — counters;
- ``payload_bytes_total`` — counter of estimated published bytes
  (:func:`estimate_payload_bytes`; the LOCAL model's messages are
  unbounded, so this measures what an implementation *would* ship);
- ``awake_fraction`` / ``round_payload_bytes`` — per-round histograms;
- ``halt_round`` / ``locality_radius`` — per-vertex histograms, the
  latter via ball-growth accounting: a stepping vertex's information
  radius grows to ``1 + max(radius published by its neighbors)``,
  mirroring how :class:`repro.algorithms.ball.BallCollection` grows
  views.  A vertex's radius at halt is the locality it actually
  consumed — for shattering algorithms this stays far below the
  deterministic diameter bound.

Summaries are plain JSON-safe dicts so :func:`repro.analysis.run_sweep`
can pickle them back from forked workers; :func:`merge_summaries`
combines them deterministically (counters add, gauges take the max,
histograms pool their moments) and refuses summaries it cannot merge
faithfully (foreign schema, newer version, unknown metric type).

The observer is batch-capable (:class:`~repro.obs.BatchRunObserver`):
on the scalar engines it accumulates from per-event callbacks, on the
vectorized backend from columnar ``on_round_batch`` deliveries — both
paths produce the *same summary*, a contract pinned per backend by the
observer-neutrality relation in :mod:`repro.verify`.  Histogram totals
stay exact under bulk accumulation because every observed value is an
integer far below 2**53 (or a single per-round float computed
identically on both paths).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.engine import RunMeta, RunResult, SETUP_ROUND, flat_adjacency
from .observer import BatchRunObserver, RoundBatch, iter_scalar_events

#: Schema version written by :meth:`MetricsObserver.summary`.  v2 added
#: the run-outcome counters (``runs_succeeded_total`` etc.) and the
#: recomputable ``derived`` block; v1 summaries still merge.
SUMMARY_VERSION = 2

#: Deterministic size charged for objects whose ``repr`` would embed a
#: memory address (default ``object.__repr__``) — never call that repr,
#: it would break byte-identical summaries across runs.
_OPAQUE_OBJECT_BYTES = 16


def estimate_payload_bytes(value: Any) -> int:
    """Deterministic estimate of a published value's wire size.

    Not a serialization — a stable accounting rule: primitives cost
    their natural width, containers cost framing plus contents, and
    opaque objects cost a flat :data:`_OPAQUE_OBJECT_BYTES` (their
    ``repr`` may embed addresses, which would poison determinism).
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, (value.bit_length() + 7) // 8)
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 2 + sum(estimate_payload_bytes(item) for item in value)
    if isinstance(value, dict):
        return 2 + sum(
            estimate_payload_bytes(k) + estimate_payload_bytes(v)
            for k, v in value.items()
        )
    if type(value).__repr__ is object.__repr__:
        return _OPAQUE_OBJECT_BYTES
    return len(repr(value).encode("utf-8"))


class Counter:
    """Monotonic count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming moments: count, total, min, max (no buckets — the
    distributions we watch are small and summaries must merge)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
        }


class MetricsRegistry:
    """Name -> metric, get-or-create, snapshot to a plain dict."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, factory: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe dump of every metric, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }


class MetricsObserver(BatchRunObserver):
    """Populate a :class:`MetricsRegistry` from engine events.

    One instance may watch several runs (every phase of a driver under
    :func:`repro.core.observe_runs`); counters and histograms aggregate
    across runs, per-run locality state resets at each
    ``on_run_start``.  Setup-round publishes are folded into the first
    round's payload accounting.

    Batch-capable with two disjoint accumulation paths: the scalar
    callbacks below (every one overridden, so the base-class shim never
    engages) and :meth:`on_round_batch` for columnar deliveries.  When
    a batch arrives with numpy columns, per-run locality state flips to
    numpy arrays for that run and ball-growth becomes one CSR segment
    reduction per round — same numbers, no per-vertex Python work.
    """

    checkpoint_capable = True

    def checkpoint_state(self) -> Any:
        """Resumable position: the whole accumulated-metrics state.

        Everything mutable lives in ``__dict__`` (registry, curves,
        per-run locality arrays), and all of it is plain data or numpy
        arrays — picklable by construction.  The snapshot is taken at a
        round boundary, so no partially-assembled batch exists.
        """
        return dict(self.__dict__)

    def restore_checkpoint(self, state: Any) -> None:
        if state is None:
            self.__init__()  # type: ignore[misc]
            return
        self.__dict__.clear()
        self.__dict__.update(state)

    def __init__(self) -> None:
        super().__init__()
        self.registry = MetricsRegistry()
        self.runs = 0
        #: Per-run, per-round curve: list (over runs) of lists of dicts.
        self.round_curves: List[List[Dict[str, Any]]] = []
        self._n = 0
        self._graph: Any = None
        self._radius: List[int] = []
        self._pub_radius: List[int] = []
        self._pending_radius: Dict[int, int] = {}
        self._round_payload = 0
        self._round_publishes = 0
        # Numpy-mode locality state (vectorized-backend runs only).
        self._vec = False
        self._radius_np: Any = None
        self._pub_radius_np: Any = None
        self._pending_np: List[Tuple[Any, Any]] = []
        self._csr: Any = None

    # -- engine callbacks ----------------------------------------------
    def on_run_start(self, meta: RunMeta) -> None:
        self.runs += 1
        self.round_curves.append([])
        self._n = meta.n
        self._graph = meta.graph
        self._radius = [0] * meta.n
        self._pub_radius = [0] * meta.n
        self._pending_radius = {}
        self._round_payload = 0
        self._round_publishes = 0
        self._vec = False
        self._radius_np = None
        self._pub_radius_np = None
        self._pending_np = []
        self._csr = None

    def on_round_start(self, round_index: int, active: int) -> None:
        # Publishes staged last round (or in setup) became visible at
        # this round boundary — commit their information radii, exactly
        # like the engine's double buffering commits values.
        if self._pending_radius:
            for v, r in self._pending_radius.items():
                self._pub_radius[v] = r
            self._pending_radius = {}

    def on_node_step(
        self, round_index: int, vertex: int, ctx: Any
    ) -> None:
        if self._graph is not None:
            grown = self._radius[vertex]
            for u in self._graph.neighbors(vertex):
                reach = self._pub_radius[u] + 1
                if reach > grown:
                    grown = reach
            self._radius[vertex] = grown

    def on_publish(
        self, round_index: int, vertex: int, value: Any
    ) -> None:
        size = estimate_payload_bytes(value)
        self.registry.counter("publishes_total").inc()
        self.registry.counter("payload_bytes_total").inc(size)
        self._round_payload += size
        self._round_publishes += 1
        if self._radius:
            self._pending_radius[vertex] = self._radius[vertex]

    def on_halt(self, round_index: int, vertex: int, output: Any) -> None:
        self.registry.counter("halted_total").inc()
        self.registry.histogram("halt_round").observe(round_index)
        if self._radius:
            self.registry.histogram("locality_radius").observe(
                self._radius[vertex]
            )

    def on_failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        self.registry.counter("failed_total").inc()

    def on_fault(
        self, round_index: int, vertex: Optional[int], fault: Any
    ) -> None:
        # Injected-fault accounting (see repro.faults): a global count
        # plus one counter per fault kind, so merged sweep telemetry
        # reports exactly what the adversary did.
        self.registry.counter("faults_total").inc()
        self.registry.counter(f"faults_{fault.kind}_total").inc()

    def on_round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        self.registry.counter("rounds_total").inc()
        self.registry.counter("messages_total").inc(messages)
        fraction = awake / self._n if self._n else 0.0
        self.registry.histogram("awake_fraction").observe(fraction)
        self.registry.histogram("round_payload_bytes").observe(
            self._round_payload
        )
        self.round_curves[-1].append(
            {
                "round": round_index,
                "awake": awake,
                "halted": halted,
                "messages": messages,
                "publishes": self._round_publishes,
                "payload_bytes": self._round_payload,
            }
        )
        self._round_payload = 0
        self._round_publishes = 0

    def on_run_end(self, result: RunResult) -> None:
        if self._vec:
            if self._radius_np is not None and self._n:
                self.registry.gauge("max_locality_radius").set(
                    int(self._radius_np.max())
                )
        elif self._radius:
            self.registry.gauge("max_locality_radius").set(
                max(self._radius)
            )
        # Run-outcome accounting for the empirical failure-probability
        # story (RandLOCAL algorithms promise failure probability
        # ≤ 1/n): pure counters, so sweep merges stay order-insensitive
        # and the rates can be recomputed after any merge (see
        # ``derived`` in :meth:`summary`).
        if result.failures:
            self.registry.counter("runs_failed_total").inc()
        else:
            self.registry.counter("runs_succeeded_total").inc()
        self.registry.counter("runs_vertices_total").inc(self._n)

    def on_run_fault(self, round_index: int, fault: Any) -> None:
        # Vectorized delivery of what the scalar engines report as a
        # vertex-``None`` ``on_fault`` (round-budget exhaustion).
        self.on_fault(round_index, None, fault)

    # -- the columnar accumulation path --------------------------------
    def on_round_batch(self, batch: RoundBatch) -> None:
        has_np = (
            hasattr(batch.stepped, "dtype")
            or hasattr(batch.published, "dtype")
            or hasattr(batch.halted_verts, "dtype")
        )
        if has_np and not self._vec:
            self._enter_vector_mode()
        if self._vec:
            self._batch_np(batch)
            return
        # Plain-list batches (the scalar shim's shape): replay the
        # scalar event order through the per-event callbacks — exact by
        # construction, and numpy-free.
        r = batch.round_index
        if r != SETUP_ROUND:
            self.on_round_start(r, batch.active)
        for event in iter_scalar_events(batch):
            kind = event[0]
            if kind == "step":
                self.on_node_step(event[1], event[2], None)
            elif kind == "publish":
                self.on_publish(event[1], event[2], event[3])
            elif kind == "halt":
                self.on_halt(event[1], event[2], event[3])
            elif kind == "failure":
                self.on_failure(event[1], event[2], event[3])
            elif kind == "fault":
                self.on_fault(event[1], event[2], event[3])
        if r != SETUP_ROUND:
            self.on_round_end(
                r, batch.awake, batch.halted, batch.messages
            )

    def _enter_vector_mode(self) -> None:
        import numpy as np

        self._vec = True
        self._radius_np = np.zeros(self._n, dtype=np.int64)
        self._pub_radius_np = np.zeros(self._n, dtype=np.int64)
        self._pending_np = []
        if self._graph is not None and self._n:
            offsets, targets = flat_adjacency(self._graph)
            self._csr = (
                np.asarray(offsets, dtype=np.int64),
                np.asarray(targets, dtype=np.int64),
            )

    def _batch_np(self, batch: RoundBatch) -> None:
        import numpy as np

        registry = self.registry
        r = batch.round_index
        track_radius = self._n > 0
        if r != SETUP_ROUND:
            if self._pending_np:
                for verts, radii in self._pending_np:
                    self._pub_radius_np[verts] = radii
                self._pending_np = []
            if self._csr is not None and len(batch.stepped):
                self._grow_radii_np(np, np.asarray(batch.stepped))
        for vertex, fault in batch.faults:
            self.on_fault(r, vertex, fault)
        npub = len(batch.published)
        if npub:
            sizes = np.asarray(batch.publish_bytes(), dtype=np.int64)
            total = int(sizes.sum())
            registry.counter("publishes_total").inc(npub)
            registry.counter("payload_bytes_total").inc(total)
            self._round_payload += total
            self._round_publishes += npub
            if track_radius:
                published = np.asarray(batch.published)
                self._pending_np.append(
                    (published, self._radius_np[published])
                )
        nhalt = len(batch.halted_verts)
        if nhalt:
            registry.counter("halted_total").inc(nhalt)
            _observe_bulk(
                registry.histogram("halt_round"), nhalt, r * nhalt, r, r
            )
            if track_radius:
                radii = self._radius_np[np.asarray(batch.halted_verts)]
                _observe_bulk(
                    registry.histogram("locality_radius"),
                    nhalt,
                    int(radii.sum()),
                    int(radii.min()),
                    int(radii.max()),
                )
        nfail = len(batch.failed)
        if nfail:
            registry.counter("failed_total").inc(nfail)
        if r != SETUP_ROUND:
            self.on_round_end(
                r, batch.awake, batch.halted, batch.messages
            )

    def _grow_radii_np(self, np: Any, stepped: Any) -> None:
        """Ball-growth for all stepping vertices as one CSR segment
        reduction — the columnar twin of the ``on_node_step`` loop."""
        offsets, targets = self._csr
        starts = offsets[stepped]
        counts = offsets[stepped + 1] - starts
        seg_off = np.zeros(stepped.size + 1, dtype=np.int64)
        np.cumsum(counts, out=seg_off[1:])
        total = int(seg_off[-1])
        if total == 0:
            return
        ptr = np.repeat(np.arange(stepped.size, dtype=np.int64), counts)
        within = np.arange(total, dtype=np.int64) - seg_off[ptr]
        reach = self._pub_radius_np[targets[starts[ptr] + within]] + 1
        padded = np.append(reach, np.int64(0))
        grown = np.maximum.reduceat(padded, seg_off[:-1])
        grown[seg_off[:-1] == seg_off[1:]] = 0
        self._radius_np[stepped] = np.maximum(
            self._radius_np[stepped], grown
        )

    # -- summaries ------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Plain JSON-safe dict: scalar metrics, no per-round curves.

        This is what :func:`repro.analysis.run_sweep` ships back from
        forked workers and merges across cells — keep it picklable and
        deterministic.  The ``derived`` block (empirical failure rate
        vs the 1/n target) is recomputed from counters, both here and
        after every :func:`merge_summaries`, so it stays correct under
        any merge order.
        """
        metrics = self.registry.snapshot()
        return {
            "schema": "repro.obs.metrics",
            "version": SUMMARY_VERSION,
            "runs": self.runs,
            "metrics": metrics,
            "derived": _derived_block(metrics),
        }


def _observe_bulk(
    hist: Histogram,
    count: int,
    total: int,
    vmin: float,
    vmax: float,
) -> None:
    """Fold ``count`` integer observations summing to ``total`` into
    ``hist`` at once.  Exact twin of ``count`` scalar ``observe``
    calls: integer partial sums are float-exact below 2**53."""
    hist.count += count
    hist.total += total
    if hist.min is None or vmin < hist.min:
        hist.min = vmin
    if hist.max is None or vmax > hist.max:
        hist.max = vmax


def _counter_value(metrics: Dict[str, Any], name: str) -> int:
    snap = metrics.get(name)
    return snap["value"] if snap and snap.get("type") == "counter" else 0


def _derived_block(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Rates recomputed from counters — never merged directly, so they
    stay consistent regardless of merge order.

    ``empirical_failure_rate`` is the fraction of observed runs with at
    least one failed vertex; ``failure_rate_target`` is the paper's
    1/n promise, generalized to runs/total-vertices so uniform-n sweeps
    read exactly 1/n.
    """
    failed = _counter_value(metrics, "runs_failed_total")
    succeeded = _counter_value(metrics, "runs_succeeded_total")
    vertices = _counter_value(metrics, "runs_vertices_total")
    finished = failed + succeeded
    derived: Dict[str, Any] = {}
    if finished:
        derived["runs_observed"] = finished
        derived["empirical_failure_rate"] = failed / finished
    if vertices:
        derived["failure_rate_target"] = finished / vertices
    return derived


_METRIC_TYPES = ("counter", "gauge", "histogram")


def _merge_metric(
    name: str, a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    if a["type"] != b["type"]:
        raise ValueError(
            f"metric {name!r} has conflicting types: "
            f"{a['type']} vs {b['type']}"
        )
    if a["type"] == "counter":
        return {"type": "counter", "value": a["value"] + b["value"]}
    if a["type"] == "gauge":
        return {"type": "gauge", "value": max(a["value"], b["value"])}
    count = a["count"] + b["count"]
    total = a["total"] + b["total"]
    mins = [x["min"] for x in (a, b) if x["min"] is not None]
    maxs = [x["max"] for x in (a, b) if x["max"] is not None]
    return {
        "type": "histogram",
        "count": count,
        "total": total,
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "mean": (total / count) if count else None,
    }


#: Every top-level section this build knows how to merge.  ``derived``
#: is recomputable from the merged counters, so dropping an *input's*
#: derived block is faithful; any other unrecognized section is not.
_SUMMARY_KEYS = frozenset(
    {"schema", "version", "runs", "metrics", "derived"}
)


def _check_mergeable(summary: Dict[str, Any]) -> None:
    """Refuse summaries this code cannot merge faithfully — silently
    dropping (or mis-adding) a newer schema's keys would corrupt sweep
    telemetry without a trace."""
    schema = summary.get("schema", "repro.obs.metrics")
    if schema != "repro.obs.metrics":
        raise ValueError(
            f"cannot merge foreign summary schema {schema!r}"
        )
    version = summary.get("version", 1)
    if not isinstance(version, int) or version > SUMMARY_VERSION:
        raise ValueError(
            f"cannot merge metrics summary version {version!r}: this "
            f"build understands versions 1..{SUMMARY_VERSION} — "
            "upgrade before merging"
        )
    unknown = sorted(set(summary) - _SUMMARY_KEYS)
    if unknown:
        raise ValueError(
            f"cannot merge metrics summary with unknown section(s) "
            f"{unknown} — merging would silently drop them"
        )
    for name, snap in summary.get("metrics", {}).items():
        kind = snap.get("type") if isinstance(snap, dict) else None
        if kind not in _METRIC_TYPES:
            raise ValueError(
                f"metric {name!r} has unknown type {kind!r} "
                "(newer schema?) — refusing to merge"
            )


def merge_summaries(
    summaries: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Deterministically combine :meth:`MetricsObserver.summary` dicts.

    Counters add, gauges keep the maximum, histograms pool moments, and
    the ``derived`` rates are recomputed from the merged counters.
    Merging is order-insensitive for counters/histograms and reduced
    with ``max`` for gauges, so any grid order yields the same result
    — the bit-identical-to-serial contract ``run_sweep`` tests rely on.

    Raises :class:`ValueError` on anything that cannot be merged
    faithfully: a foreign schema, a summary version newer than
    :data:`SUMMARY_VERSION`, or a metric of unknown type.  (v1
    summaries merge fine; the result is always emitted at the current
    version.)
    """
    merged: Dict[str, Any] = {
        "schema": "repro.obs.metrics",
        "version": SUMMARY_VERSION,
        "runs": 0,
        "metrics": {},
    }
    metrics: Dict[str, Dict[str, Any]] = {}
    for summary in summaries:
        _check_mergeable(summary)
        merged["runs"] += summary.get("runs", 0)
        for name, snap in summary.get("metrics", {}).items():
            if name in metrics:
                metrics[name] = _merge_metric(name, metrics[name], snap)
            else:
                metrics[name] = dict(snap)
    merged["metrics"] = {name: metrics[name] for name in sorted(metrics)}
    merged["derived"] = _derived_block(merged["metrics"])
    return merged


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsObserver",
    "MetricsRegistry",
    "SETUP_ROUND",
    "SUMMARY_VERSION",
    "estimate_payload_bytes",
    "merge_summaries",
]

"""The observer callback protocol.

:class:`RunObserver` is the no-op base class engine observers derive
from: subclass it, override the callbacks you care about, and pass
instances to ``run_local(observers=[...])`` or attach them ambiently
with :func:`repro.core.observe_runs` (covers every ``run_local`` call a
multi-phase driver makes).

Ordering contract (identical for the fast and reference engines; the
equivalence suite pins it):

1. ``on_run_start(meta)`` — once, before ``setup``.
2. Setup events at round index :data:`repro.core.SETUP_ROUND` (-1):
   per vertex in ascending order, ``on_publish`` if it published, then
   ``on_failure`` or ``on_halt`` if it failed/halted in ``setup``.
3. Per executed round ``r``: ``on_round_start(r, active)``; then per
   *stepping* vertex in ascending order ``on_node_step`` followed by
   its ``on_publish`` / ``on_failure`` / ``on_halt`` events; then
   ``on_round_end(r, awake, halted, messages)``.  Rounds where every
   live vertex sleeps are bulk-accounted by the fast engine but still
   emit ``on_round_start``/``on_round_end`` (awake = halted = 0).
4. ``on_run_end(result)`` — once, unless the run raised (e.g. the
   ``max_rounds`` guard), in which case the stream simply stops.

Under fault injection (see :mod:`repro.faults`) the per-vertex slot in
step 3 gains ``on_fault`` events, still engine-identical: a vertex's
delivery faults (drop/duplicate/corrupt, ports ascending) precede its
``on_node_step``; a crash-stop vertex emits ``on_fault`` then
``on_failure`` and **no** ``on_node_step`` (it never stepped).  Budget
exhaustion emits one run-level ``on_fault`` (vertex ``None``) right
before the run raises :class:`~repro.core.errors.BudgetExceededError`.

Observers are **read-only spectators**.  The ``ctx`` handed to
``on_node_step`` is live engine state: reading (``ctx.halted``,
``ctx.output``, ``ctx.pending_publish``, ...) is fine, calling
lifecycle methods or assigning attributes is not (rule LM008).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.context import NodeContext
from ..core.engine import RunMeta, RunResult
from ..core.errors import FaultEvent


class RunObserver:
    """No-op base class for engine observers; override what you need.

    Every callback has an empty default, so subclasses only pay for the
    events they use.  One observer instance may watch several runs in
    sequence (e.g. each phase of a multi-phase driver under
    :func:`repro.core.observe_runs`); ``on_run_start`` marks each new
    run's boundary.
    """

    def on_run_start(self, meta: RunMeta) -> None:
        """A run is starting; ``meta`` holds its static facts."""

    def on_round_start(self, round_index: int, active: int) -> None:
        """Round ``round_index`` begins with ``active`` live vertices."""

    def on_node_step(
        self, round_index: int, vertex: int, ctx: NodeContext
    ) -> None:
        """Vertex ``vertex`` executed ``step`` this round.  ``ctx`` is
        live engine state — read-only (see LM008)."""

    def on_publish(
        self, round_index: int, vertex: int, value: Any
    ) -> None:
        """Vertex ``vertex`` published ``value`` (visible next round)."""

    def on_halt(self, round_index: int, vertex: int, output: Any) -> None:
        """Vertex ``vertex`` halted with ``output``."""

    def on_failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        """Vertex ``vertex`` declared failure with ``reason``."""

    def on_fault(
        self,
        round_index: int,
        vertex: Optional[int],
        fault: FaultEvent,
    ) -> None:
        """An injected fault fired (see :mod:`repro.faults`).

        ``vertex`` is the affected vertex, or ``None`` for run-level
        faults (round-budget exhaustion).  ``fault`` is the structured
        :class:`~repro.core.errors.FaultEvent` record — read its
        ``kind`` / ``port`` / ``detail``; do not raise it."""

    def on_round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        """Round ended: ``awake`` vertices stepped, ``halted`` of them
        halted, ``messages`` point-to-point messages were delivered."""

    def on_run_end(self, result: RunResult) -> None:
        """The run completed with ``result``."""

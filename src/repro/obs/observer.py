"""The observer callback protocol — scalar events and round batches.

:class:`RunObserver` is the no-op base class engine observers derive
from: subclass it, override the callbacks you care about, and pass
instances to ``run_local(observers=[...])`` or attach them ambiently
with :func:`repro.core.observe_runs` (covers every ``run_local`` call a
multi-phase driver makes).

Ordering contract (identical for the fast and reference engines; the
equivalence suite pins it):

1. ``on_run_start(meta)`` — once, before ``setup``.
2. Setup events at round index :data:`repro.core.SETUP_ROUND` (-1):
   per vertex in ascending order, ``on_publish`` if it published, then
   ``on_failure`` or ``on_halt`` if it failed/halted in ``setup``.
3. Per executed round ``r``: ``on_round_start(r, active)``; then per
   *stepping* vertex in ascending order ``on_node_step`` followed by
   its ``on_publish`` / ``on_failure`` / ``on_halt`` events; then
   ``on_round_end(r, awake, halted, messages)``.  Rounds where every
   live vertex sleeps are bulk-accounted by the fast engine but still
   emit ``on_round_start``/``on_round_end`` (awake = halted = 0).
4. ``on_run_end(result)`` — once, unless the run raised (e.g. the
   ``max_rounds`` guard), in which case ``on_run_abort(round, error)``
   fires instead and the stream stops; flush-style observers finalize
   there so partial runs keep their telemetry.

Under fault injection (see :mod:`repro.faults`) the per-vertex slot in
step 3 gains ``on_fault`` events, still engine-identical: a vertex's
delivery faults (drop/duplicate/corrupt, ports ascending) precede its
``on_node_step``; a crash-stop vertex emits ``on_fault`` then
``on_failure`` and **no** ``on_node_step`` (it never stepped).  Budget
exhaustion emits one run-level ``on_fault`` (vertex ``None``) right
before the run raises :class:`~repro.core.errors.BudgetExceededError`.

**Round batches.**  :class:`BatchRunObserver` extends the protocol with
a columnar delivery path: instead of one callback per event, a backend
may deliver one :class:`RoundBatch` per round via ``on_round_batch``.
The ``"vectorized"`` backend emits batches natively (numpy index
arrays, no per-vertex Python dispatch); on the scalar engines the base
class's scalar callbacks transparently assemble the same batches from
per-event callbacks, so a batch observer works everywhere.  A batch
carries exactly the information of the scalar event stream —
:func:`iter_scalar_events` reconstructs the per-event order — so both
delivery paths produce identical telemetry (the observer-neutrality
relation in ``repro.verify`` pins this per backend).  One caveat on
raising runs: a batch is delivered at its round boundary, so when the
run raises mid-round the batched stream omits that final partial round
while the scalar stream may include its prefix ("the stream simply
stops" covers both).

Observers are **read-only spectators**.  The ``ctx`` handed to
``on_node_step`` is live engine state, and the arrays inside a
:class:`RoundBatch` are shared with the emitting backend: reading is
fine, calling lifecycle methods, assigning attributes, or writing into
batch payload arrays is not (rule LM008).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.context import NodeContext
from ..core.engine import RunMeta, RunResult, SETUP_ROUND
from ..core.errors import FaultEvent

#: Sentinel batch payload meaning "no value recorded".
_UNSET = object()


class RunObserver:
    """No-op base class for engine observers; override what you need.

    Every callback has an empty default, so subclasses only pay for the
    events they use.  One observer instance may watch several runs in
    sequence (e.g. each phase of a multi-phase driver under
    :func:`repro.core.observe_runs`); ``on_run_start`` marks each new
    run's boundary.
    """

    #: Whether this observer participates in in-run checkpointing (see
    #: :mod:`repro.core.checkpoint`).  A capable observer implements
    #: :meth:`checkpoint_state` / :meth:`restore_checkpoint` so a
    #: resumed run reproduces its output stream byte-for-byte;
    #: attaching a non-capable observer to a checkpointed run fails
    #: fast with a ``CheckpointError``.
    checkpoint_capable = False

    def checkpoint_state(self) -> Any:
        """This observer's resumable position, captured at a round
        boundary.  Must be picklable; ``None`` is a valid state for
        observers with nothing to rewind (e.g. plane-2 sidecars)."""
        return None

    def restore_checkpoint(self, state: Any) -> None:
        """Rewind to a position captured by :meth:`checkpoint_state`.

        Called with ``state=None`` when a resume finds no usable
        snapshot and the run restarts from the top: the observer must
        reset to its just-constructed state (truncating any partial
        output the killed process left) so the fresh run's stream is
        reproduced from the first byte."""

    def on_run_abort(
        self, round_index: int, error: BaseException
    ) -> None:
        """The run is dying at round ``round_index`` with ``error``
        (algorithm exception, injected budget, ``KeyboardInterrupt``)
        before ``on_run_end`` could fire.  Observers that buffer
        output flush here so partial runs keep their telemetry; the
        exception propagates as soon as every observer returns."""

    def on_run_start(self, meta: RunMeta) -> None:
        """A run is starting; ``meta`` holds its static facts."""

    def on_round_start(self, round_index: int, active: int) -> None:
        """Round ``round_index`` begins with ``active`` live vertices."""

    def on_node_step(
        self, round_index: int, vertex: int, ctx: NodeContext
    ) -> None:
        """Vertex ``vertex`` executed ``step`` this round.  ``ctx`` is
        live engine state — read-only (see LM008)."""

    def on_publish(
        self, round_index: int, vertex: int, value: Any
    ) -> None:
        """Vertex ``vertex`` published ``value`` (visible next round)."""

    def on_halt(self, round_index: int, vertex: int, output: Any) -> None:
        """Vertex ``vertex`` halted with ``output``."""

    def on_failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        """Vertex ``vertex`` declared failure with ``reason``."""

    def on_fault(
        self,
        round_index: int,
        vertex: Optional[int],
        fault: FaultEvent,
    ) -> None:
        """An injected fault fired (see :mod:`repro.faults`).

        ``vertex`` is the affected vertex, or ``None`` for run-level
        faults (round-budget exhaustion).  ``fault`` is the structured
        :class:`~repro.core.errors.FaultEvent` record — read its
        ``kind`` / ``port`` / ``detail``; do not raise it."""

    def on_round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        """Round ended: ``awake`` vertices stepped, ``halted`` of them
        halted, ``messages`` point-to-point messages were delivered."""

    def on_run_end(self, result: RunResult) -> None:
        """The run completed with ``result``."""


class RoundBatch:
    """Columnar snapshot of one round's events (or of the setup pass).

    Vertex columns are ascending index sequences — numpy int64 arrays
    when emitted by the vectorized backend, plain lists when assembled
    by the scalar shim; consume them duck-typed (``len``, iteration,
    and integer indexing work on both).  Payload columns are aligned
    with their vertex column.  All columns may be backend-owned storage
    — treat them as read-only (rule LM008).

    ``round_index`` is :data:`repro.core.SETUP_ROUND` for the setup
    batch, in which case ``stepped`` is empty and the round bookkeeping
    fields (``active``/``awake``/``halted``/``messages``) are zero —
    setup emits no round boundaries on the scalar path either.
    """

    __slots__ = (
        "round_index",
        "active",
        "awake",
        "halted",
        "messages",
        "stepped",
        "published",
        "halted_verts",
        "halt_values",
        "failed",
        "fail_reasons",
        "faults",
        "_publish_values",
        "_publish_values_fn",
        "_publish_bytes",
    )

    def __init__(
        self,
        round_index: int,
        *,
        active: int = 0,
        awake: int = 0,
        halted: int = 0,
        messages: int = 0,
        stepped: Sequence[int] = (),
        published: Sequence[int] = (),
        publish_values: Any = _UNSET,
        publish_values_fn: Optional[Callable[[], Sequence[Any]]] = None,
        publish_bytes: Optional[Sequence[int]] = None,
        halted_verts: Sequence[int] = (),
        halt_values: Sequence[Any] = (),
        failed: Sequence[int] = (),
        fail_reasons: Sequence[str] = (),
        faults: Sequence[Tuple[Optional[int], FaultEvent]] = (),
    ) -> None:
        self.round_index = round_index
        self.active = active
        self.awake = awake
        self.halted = halted
        self.messages = messages
        self.stepped = stepped
        self.published = published
        self.halted_verts = halted_verts
        self.halt_values = halt_values
        self.failed = failed
        self.fail_reasons = fail_reasons
        self.faults = list(faults)
        self._publish_values = publish_values
        self._publish_values_fn = publish_values_fn
        self._publish_bytes = publish_bytes

    def publish_values(self) -> Sequence[Any]:
        """Published values aligned with :attr:`published`.

        Materialized lazily (and cached): backends that can account
        payload sizes columnar-ly only pay for building the actual
        Python values when an observer asks for them (payload-value
        traces, generic event reconstruction).
        """
        if self._publish_values is _UNSET:
            fn = self._publish_values_fn
            self._publish_values = (
                list(fn()) if fn is not None else []
            )
        return self._publish_values

    def publish_bytes(self) -> Sequence[int]:
        """Estimated payload bytes aligned with :attr:`published`
        (:func:`repro.obs.estimate_payload_bytes` of each value).

        Computed lazily from :meth:`publish_values` unless the emitting
        backend supplied the column directly (the vectorized kernels
        compute it as array arithmetic without materializing values).
        """
        if self._publish_bytes is None:
            from .metrics import estimate_payload_bytes

            self._publish_bytes = [
                estimate_payload_bytes(value)
                for value in self.publish_values()
            ]
        return self._publish_bytes


class _BatchBuilder:
    """Accumulates one round's scalar events into a RoundBatch."""

    __slots__ = (
        "round_index",
        "active",
        "stepped",
        "published",
        "values",
        "halted_verts",
        "halt_values",
        "failed",
        "fail_reasons",
        "faults",
    )

    def __init__(self, round_index: int, active: int = 0) -> None:
        self.round_index = round_index
        self.active = active
        self.stepped: List[int] = []
        self.published: List[int] = []
        self.values: List[Any] = []
        self.halted_verts: List[int] = []
        self.halt_values: List[Any] = []
        self.failed: List[int] = []
        self.fail_reasons: List[str] = []
        self.faults: List[Tuple[Optional[int], FaultEvent]] = []

    def build(
        self, awake: int = 0, halted: int = 0, messages: int = 0
    ) -> RoundBatch:
        return RoundBatch(
            self.round_index,
            active=self.active,
            awake=awake,
            halted=halted,
            messages=messages,
            stepped=self.stepped,
            published=self.published,
            publish_values=self.values,
            halted_verts=self.halted_verts,
            halt_values=self.halt_values,
            failed=self.failed,
            fail_reasons=self.fail_reasons,
            faults=self.faults,
        )


class BatchRunObserver(RunObserver):
    """Observer consuming whole-round :class:`RoundBatch` payloads.

    Subclasses override :meth:`on_round_batch` (and optionally
    :meth:`on_run_fault` / :meth:`on_backend_info`).  Two delivery
    paths feed it:

    - the ``"vectorized"`` backend calls ``on_round_batch`` directly,
      with numpy vertex columns, and never fires the per-vertex scalar
      callbacks — attaching only batch-capable observers keeps it on
      its native kernels (no scalar fallback);
    - on the scalar engines, the base-class scalar callbacks assemble
      batches from per-event callbacks and emit them at each round
      boundary — a subclass that overrides ``on_run_start`` /
      ``on_round_start`` / ``on_run_end`` (or any per-event callback)
      while relying on this shim must call ``super()``.

    Observers like :class:`~repro.obs.MetricsObserver` instead override
    *all* scalar callbacks natively and implement ``on_round_batch`` as
    a second accumulation path; the shim then never engages.

    ``batch_capable`` is the attribute backends test — keep it truthy.
    """

    #: Backends check this flag: every attached observer must be batch
    #: capable for the vectorized harness to stay on its kernels.
    batch_capable = True

    def __init__(self) -> None:
        self._batch_pending: Optional[_BatchBuilder] = None

    # -- the batch-plane callbacks -------------------------------------
    def on_round_batch(self, batch: RoundBatch) -> None:
        """One completed round (or the setup pass) as a batch."""

    def on_run_fault(self, round_index: int, fault: FaultEvent) -> None:
        """A run-level fault (round-budget exhaustion) fired; the run
        raises immediately after, so this is never buffered into a
        batch."""

    def on_backend_info(
        self, backend: str, kernel: Optional[str]
    ) -> None:
        """The executing backend identified itself (called after
        ``on_run_start`` by backends that know; the scalar engines do
        not call it).  ``kernel`` names the vectorized round kernel, or
        is ``None``."""

    # -- scalar shim: assemble batches from per-event callbacks --------
    def _builder(self, round_index: int) -> _BatchBuilder:
        pending = self._batch_pending
        if pending is None:
            pending = _BatchBuilder(round_index)
            self._batch_pending = pending
        return pending

    def _flush_pending(self) -> None:
        pending = self._batch_pending
        if pending is not None and pending.round_index == SETUP_ROUND:
            self._batch_pending = None
            self.on_round_batch(pending.build())

    def on_run_start(self, meta: RunMeta) -> None:
        self._batch_pending = None

    def on_round_start(self, round_index: int, active: int) -> None:
        self._flush_pending()
        self._batch_pending = _BatchBuilder(round_index, active)

    def on_node_step(
        self, round_index: int, vertex: int, ctx: NodeContext
    ) -> None:
        self._builder(round_index).stepped.append(vertex)

    def on_publish(
        self, round_index: int, vertex: int, value: Any
    ) -> None:
        pending = self._builder(round_index)
        pending.published.append(vertex)
        pending.values.append(value)

    def on_halt(self, round_index: int, vertex: int, output: Any) -> None:
        pending = self._builder(round_index)
        pending.halted_verts.append(vertex)
        pending.halt_values.append(output)

    def on_failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        pending = self._builder(round_index)
        pending.failed.append(vertex)
        pending.fail_reasons.append(reason)

    def on_fault(
        self,
        round_index: int,
        vertex: Optional[int],
        fault: FaultEvent,
    ) -> None:
        if vertex is None:
            # Run-level: the run raises right after — deliver now, the
            # enclosing round (if any) will never reach its boundary.
            self.on_run_fault(round_index, fault)
            return
        self._builder(round_index).faults.append((vertex, fault))

    def on_round_end(
        self,
        round_index: int,
        awake: int,
        halted: int,
        messages: int,
    ) -> None:
        pending = self._batch_pending
        self._batch_pending = None
        if pending is None:
            pending = _BatchBuilder(round_index)
        self.on_round_batch(pending.build(awake, halted, messages))

    def on_run_end(self, result: RunResult) -> None:
        # A run whose vertices all halt in setup executes zero rounds:
        # the setup batch is flushed here instead of at a round start.
        self._flush_pending()


def iter_scalar_events(
    batch: RoundBatch,
) -> Iterator[Tuple[Any, ...]]:
    """Reconstruct a batch's events in the scalar engines' exact order.

    Yields tuples keyed by event name, mirroring the per-vertex
    ascending order of the ordering contract::

        ("fault", round, vertex, fault_event)
        ("step", round, vertex)
        ("publish", round, vertex, value)
        ("failure", round, vertex, reason)
        ("halt", round, vertex, output)

    Per vertex: faults first, then the step (crash-stop vertices never
    step), then its publish, then failure *or* halt.  Round boundaries
    (``round_start``/``round_end``) are not yielded — the caller owns
    them.  Setup batches yield publishes/failures/halts only.
    """
    r = batch.round_index
    events: List[Tuple[int, int, Tuple[Any, ...]]] = []
    for vertex, fault in batch.faults:
        events.append((int(vertex), 0, ("fault", r, int(vertex), fault)))
    for vertex in batch.stepped:
        events.append((int(vertex), 1, ("step", r, int(vertex))))
    if len(batch.published):
        values = batch.publish_values()
        for i, vertex in enumerate(batch.published):
            events.append(
                (int(vertex), 2, ("publish", r, int(vertex), values[i]))
            )
    for i, vertex in enumerate(batch.failed):
        events.append(
            (
                int(vertex),
                3,
                ("failure", r, int(vertex), batch.fail_reasons[i]),
            )
        )
    for i, vertex in enumerate(batch.halted_verts):
        events.append(
            (int(vertex), 3, ("halt", r, int(vertex), batch.halt_values[i]))
        )
    events.sort(key=lambda item: (item[0], item[1]))
    for _, _, event in events:
        yield event

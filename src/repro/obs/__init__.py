"""Structured telemetry for the LOCAL engine — two planes.

**Plane 1 (deterministic)**: the engines (``run_local``, the reference
implementation, and the vectorized backend) emit run/round boundaries,
vertex steps, publishes, halts, failures, and faults to any attached
:class:`RunObserver`.  Scalar engines deliver one callback per event;
the vectorized backend delivers whole rounds at once to
:class:`BatchRunObserver` subclasses via columnar :class:`RoundBatch`
payloads — same facts, different shape.  Everything on this plane is
held to byte-identity: summaries and trace bytes are identical across
engines, backends, and repeated runs of the same seed.

- :class:`MetricsObserver` — counters/gauges/histograms: message and
  payload-byte accounting, awake fractions, per-node halt rounds, and
  the effective locality radius each vertex consumed;
- :class:`JsonlTraceObserver` — a deterministic JSONL event stream
  with a versioned schema (v1–v3);
- :mod:`repro.obs.shattering` — the Theorem 3 profiler (halt-fraction
  curve, surviving-component sizes), streaming over traces;
- :mod:`repro.obs.query` — streaming trace analytics (filter,
  aggregate, round timeline, per-vertex history, cross-cell merge);
- :mod:`repro.obs.export` — Prometheus text / canonical JSON views of
  metric summaries.

**Plane 2 (nondeterministic sidecar)**: wall clock, RSS, GC activity,
and backend attribution can never be byte-stable, so they live in
:mod:`repro.obs.timing` — a separate JSONL sidecar stream and a live
progress renderer, excluded from the byte-identity contract by design.

Observers are read-only spectators: callbacks must not mutate the
context, graph, or batch arrays they are shown (static-analysis rule
LM008 flags violations).  See ``docs/observability.md`` for the event
schema, the ordering contract, and the determinism table.
"""

from .export import (
    EXPORT_SCHEMA,
    EXPORT_VERSION,
    to_json_snapshot,
    to_prometheus,
    write_metrics_export,
)
from .metrics import (
    SUMMARY_VERSION,
    MetricsObserver,
    MetricsRegistry,
    estimate_payload_bytes,
    merge_summaries,
)
from .observer import (
    BatchRunObserver,
    RoundBatch,
    RunObserver,
    iter_scalar_events,
)
from .query import (
    aggregate_trace,
    filter_events,
    merge_aggregates,
    round_timeline,
    vertex_history,
)
from .shattering import (
    RoundShatterStats,
    ShatteringProfile,
    profile_events,
    profile_trace,
    render_profile_report,
)
from .timing import (
    TIMING_SCHEMA,
    TIMING_VERSION,
    ProgressReporter,
    TimingSidecarObserver,
    read_timing_sidecar,
)
from .trace import (
    EMISSION_MODES,
    SUPPORTED_TRACE_VERSIONS,
    TRACE_SCHEMA,
    TRACE_VERSION,
    JsonlTraceObserver,
    iter_trace,
    read_trace,
)

__all__ = [
    "BatchRunObserver",
    "EMISSION_MODES",
    "EXPORT_SCHEMA",
    "EXPORT_VERSION",
    "JsonlTraceObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "ProgressReporter",
    "RoundBatch",
    "RoundShatterStats",
    "RunObserver",
    "SUMMARY_VERSION",
    "SUPPORTED_TRACE_VERSIONS",
    "ShatteringProfile",
    "TIMING_SCHEMA",
    "TIMING_VERSION",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "TimingSidecarObserver",
    "aggregate_trace",
    "estimate_payload_bytes",
    "filter_events",
    "iter_scalar_events",
    "iter_trace",
    "merge_aggregates",
    "merge_summaries",
    "profile_events",
    "profile_trace",
    "read_timing_sidecar",
    "read_trace",
    "render_profile_report",
    "round_timeline",
    "to_json_snapshot",
    "to_prometheus",
    "vertex_history",
    "write_metrics_export",
]

"""Structured telemetry for the LOCAL engine.

The engine (both :func:`repro.core.run_local` and the reference
implementation) emits a stream of events — run/round boundaries, vertex
steps, publishes, halts, failures — to any attached
:class:`RunObserver`.  This package holds the observer protocol and the
built-in observers:

- :class:`MetricsObserver` — counters/gauges/histograms: message and
  payload-byte accounting, awake fractions, per-node halt rounds, and
  the effective locality radius each vertex consumed (ball-growth
  accounting in the style of ``algorithms/ball.py``);
- :class:`JsonlTraceObserver` — a deterministic JSONL event stream
  with a versioned schema, byte-identical across engines and repeated
  runs of the same seed;
- :mod:`repro.obs.shattering` — a profiler that computes, from a
  trace, the halt-fraction curve F(t) and the surviving-subgraph
  component-size distribution, quantifying the paper's Theorem 3
  (graph shattering) per run.

Observers are read-only spectators: callbacks must not mutate the
context or graph they are shown (static-analysis rule LM008 flags
violations).  See ``docs/observability.md`` for the event schema and
ordering contract.
"""

from .metrics import (
    MetricsObserver,
    MetricsRegistry,
    estimate_payload_bytes,
    merge_summaries,
)
from .observer import RunObserver
from .shattering import (
    RoundShatterStats,
    ShatteringProfile,
    profile_events,
    profile_trace,
    render_profile_report,
)
from .trace import (
    SUPPORTED_TRACE_VERSIONS,
    TRACE_SCHEMA,
    TRACE_VERSION,
    JsonlTraceObserver,
    read_trace,
)

__all__ = [
    "JsonlTraceObserver",
    "SUPPORTED_TRACE_VERSIONS",
    "MetricsObserver",
    "MetricsRegistry",
    "RoundShatterStats",
    "RunObserver",
    "ShatteringProfile",
    "TRACE_SCHEMA",
    "TRACE_VERSION",
    "estimate_payload_bytes",
    "merge_summaries",
    "profile_events",
    "profile_trace",
    "read_trace",
    "render_profile_report",
]

"""Deterministic q-coloring of forests — Theorem 9 (Barenboim–Elkin).

Theorem 9: for q >= 3 there is a DetLOCAL algorithm q-coloring trees in
O(log_q n + log* n) rounds, independent of Δ.  This is the deterministic
side of the paper's headline separation (run with q = Δ), and the
finishing subroutine of both randomized algorithms (Theorem 10 Phase 2
with q = √Δ, Theorem 11 Phase 2 with q = 3).

Our implementation follows the Nash-Williams/H-partition scheme of [27]:

1. **Peel** (:class:`PeelingAlgorithm`): iteratively remove vertices with
   at most q-1 remaining neighbors.  On forests each iteration removes at
   least a (1 - 2/q) fraction (at most 2n/q vertices of a forest have
   degree >= q), so the number of layers is O(log n / log(q/2)) =
   O(log_q n).  Every vertex ends with at most q-1 neighbors in its own
   or higher layers (its *up-set*).
2. **Orient** edges toward the up-set (ties inside a layer broken by ID):
   out-degree <= q-1.  One information-exchange round.
3. **Oriented Linial** (:class:`~repro.algorithms.linial.OrientedLinialColoring`):
   a proper O(q²)-coloring in O(log* n) rounds, escaping only the <= q-1
   out-neighbors per vertex.
4. **Within-layer reduction**: in parallel across layers, reduce the
   restriction of that coloring to each layer's induced subgraph (degree
   <= q-1 there) down to q colors — these are only *schedule* colors.
5. **Layer sweep** (:class:`LayerSweepColoring`): process layers top
   down; within a layer, the q schedule classes act one round apiece.
   When a vertex acts, every already-final neighbor is in its up-set
   (<= q-1 of them), so a free color in {0..q-1} always exists.

Total: O(q · log_q n + q·log q + log* n) rounds — Theorem 9's bound for
the constant q the paper uses, with our layer sweep paying an extra
factor q on the log_q n term (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .drivers import AlgorithmReport, PhaseLog
from .linial import OrientedLinialColoring, linial_schedule
from .reduction import KuhnWattenhoferReduction, _smallest_free
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..core.ids import sequential_ids
from ..graphs.graph import Graph


class PeelingAlgorithm(SyncAlgorithm):
    """H-partition by iterated low-degree peeling.

    Globals:
        ``threshold``: peel vertices with at most this many remaining
        neighbors (use q-1 for q-coloring forests; more generally at
        least 2·arboricity for guaranteed progress).

    Output: the vertex's layer number (the 0-based round it peeled in).
    """

    name = "h-partition-peeling"

    def setup(self, ctx: NodeContext) -> None:
        ctx.publish("active")

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        active_neighbors = sum(1 for msg in inbox if msg == "active")
        if active_neighbors <= ctx.globals["threshold"]:
            # The layer number *is* the peel round by definition; the
            # round index is common knowledge in a synchronous model,
            # so publishing it reveals nothing out-of-view.
            ctx.publish(("peeled", ctx.now))  # repro: ignore[LM006]
            ctx.halt(ctx.now)


class LayerSweepColoring(SyncAlgorithm):
    """Final recoloring sweep of the H-partition (stage 5 above).

    Node input:
        ``layer``: this vertex's H-partition layer;
        ``schedule_color``: its color in the within-layer q-coloring.
    Globals:
        ``q``: target palette size;
        ``max_layer``: the highest layer number (common knowledge — any
        upper bound derivable from n and q works; we pass the exact
        value, which only shortens the idle tail).

    Vertex v acts in round ``(max_layer - layer(v)) · q +
    schedule_color(v)`` and picks the smallest color of ``0..q-1`` not
    already fixed by a neighbor.  Already-final neighbors are exactly
    (a subset of) v's up-set, of size <= q-1, so a color is always free.
    """

    name = "layer-sweep-coloring"

    def setup(self, ctx: NodeContext) -> None:
        q = ctx.globals["q"]
        wake = (
            ctx.globals["max_layer"] - ctx.input["layer"]
        ) * q + ctx.input["schedule_color"]
        ctx.publish(("tmp",))
        ctx.sleep_until(wake)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        q = ctx.globals["q"]
        taken = {
            msg[1]
            for msg in inbox
            if isinstance(msg, tuple) and msg[0] == "final"
        }
        color = _smallest_free(taken, q)
        ctx.publish(("final", color))
        ctx.halt(color)


def h_partition(
    graph: Graph,
    threshold: int,
    log: Optional[PhaseLog] = None,
    max_rounds: int = 100_000,
) -> List[int]:
    """Compute the H-partition layers (threshold-peeling driver)."""
    result = run_local(
        graph,
        PeelingAlgorithm(),
        Model.DET,
        global_params={"threshold": threshold},
        max_rounds=max_rounds,
    )
    if log is not None:
        log.add("peeling", result)
    return result.outputs


def up_ports_from_layers(
    graph: Graph, layers: Sequence[int], ids: Sequence[int]
) -> List[List[int]]:
    """Ports toward each vertex's up-set: strictly higher layer, or the
    same layer with a larger ID (the tie-break orientation).

    Every vertex learns its neighbors' layers and IDs in one round; the
    caller accounts that round (see :func:`barenboim_elkin_coloring`).
    """
    out: List[List[int]] = []
    for v in graph.vertices():
        ports = []
        for p, u in enumerate(graph.neighbors(v)):
            if layers[u] > layers[v] or (
                layers[u] == layers[v] and ids[u] > ids[v]
            ):
                ports.append(p)
        out.append(ports)
    return out


def same_layer_ports(graph: Graph, layers: Sequence[int]) -> List[List[int]]:
    """Ports joining each vertex to same-layer neighbors."""
    return [
        [p for p, u in enumerate(graph.neighbors(v)) if layers[u] == layers[v]]
        for v in graph.vertices()
    ]


def barenboim_elkin_coloring(
    graph: Graph,
    q: int,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
    max_rounds: int = 100_000,
) -> AlgorithmReport:
    """DetLOCAL q-coloring of a forest (Theorem 9 pipeline).

    Parameters
    ----------
    graph:
        A forest (arbitrary graphs are accepted whenever the peeling
        terminates, e.g. graphs of arboricity <= (q-1)/2).
    q:
        Palette size, >= 3.
    ids:
        Unique vertex IDs (default ``0..n-1``).
    id_space:
        Size of the ID space (defaults to the smallest power of two
        >= n); governs the Linial schedule.

    Returns
    -------
    AlgorithmReport
        ``labeling`` is a proper coloring with colors ``0..q-1``;
        ``rounds`` sums all five stages.
    """
    if q < 3:
        raise ValueError(f"Theorem 9 needs q >= 3, got {q}")
    n = graph.num_vertices
    if ids is None:
        ids = sequential_ids(n)
    if id_space is None:
        id_space = 1 << max(1, (n - 1).bit_length())
    log = PhaseLog()

    # Stage 1: peel into layers.
    layers = h_partition(graph, q - 1, log, max_rounds=max_rounds)

    # Stage 2: one exchange round to learn neighbor layers and IDs.
    log.add_rounds("layer-exchange", 1, messages=2 * graph.num_edges)
    up_ports = up_ports_from_layers(graph, layers, ids)
    layer_ports = same_layer_ports(graph, layers)

    # Stage 3: oriented Linial coloring, escaping <= q-1 out-neighbors.
    linial_run = log.add(
        "oriented-linial",
        run_local(
            graph,
            OrientedLinialColoring(),
            Model.DET,
            ids=ids,
            node_inputs=[{"out_ports": ports} for ports in up_ports],
            global_params={"out_degree": q - 1, "id_space": id_space},
            max_rounds=max_rounds,
        ),
    )
    palette = linial_schedule(id_space, max(1, q - 1))[-1]

    # Stage 4: reduce within-layer colorings to q schedule colors, all
    # layers in parallel (each layer subgraph has degree <= q-1 < q).
    schedule_run = log.add(
        "within-layer-reduction",
        run_local(
            graph,
            KuhnWattenhoferReduction(),
            Model.DET,
            ids=ids,
            node_inputs=[
                {"color": linial_run.outputs[v], "active_ports": layer_ports[v]}
                for v in graph.vertices()
            ],
            global_params={"palette": palette, "target": q},
            max_rounds=max_rounds,
        ),
    )

    # Stage 5: top-down layer sweep.
    max_layer = max(layers) if layers else 0
    sweep_run = log.add(
        "layer-sweep",
        run_local(
            graph,
            LayerSweepColoring(),
            Model.DET,
            ids=ids,
            node_inputs=[
                {"layer": layers[v], "schedule_color": schedule_run.outputs[v]}
                for v in graph.vertices()
            ],
            global_params={"q": q, "max_layer": max_layer},
            max_rounds=max_rounds,
        ),
    )
    return AlgorithmReport(sweep_run.outputs, log.total_rounds, log)

"""General (Δ+1)-coloring pipeline: Linial + palette reduction.

The classic symmetry-breaking baseline (cf. [9] in the paper's survey):
O(Δ²)-coloring in O(log* n) rounds by Theorem 2, then reduction to
Δ + 1 colors in rounds depending only on Δ.  Total: g(Δ) + O(log* n) —
notably *flat in n* except through the ID length, which makes this
pipeline the canonical eligible input for the Theorem 6 speedup
transform (experiment E7).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .drivers import AlgorithmReport, PhaseLog
from .linial import LinialColoring, linial_schedule
from .reduction import ClassByClassReduction, KuhnWattenhoferReduction
from ..core.context import Model
from ..core.engine import run_local
from ..graphs.graph import Graph


def linial_fixed_point_coloring(
    graph: Graph,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
    max_rounds: int = 100_000,
) -> AlgorithmReport:
    """DetLOCAL O(Δ²)-coloring in O(log* n) rounds (Theorem 2 alone).

    The Linial stage of the (Δ+1) pipeline exposed as its own driver:
    iterated cover-free recoloring from unique IDs down to the
    fixed-point palette, with no reduction stage.  The certified
    palette is ``linial_schedule(id_space, Δ)[-1]`` — the registry's
    ``linial-coloring`` spec computes the same value from the instance.
    """
    n = graph.num_vertices
    if id_space is None:
        id_space = 1 << max(1, (max(n, 2) - 1).bit_length())
    log = PhaseLog()
    run = log.add(
        "linial",
        run_local(
            graph,
            LinialColoring(),
            Model.DET,
            ids=ids,
            global_params={"id_space": id_space},
            max_rounds=max_rounds,
        ),
    )
    return AlgorithmReport(run.outputs, log.total_rounds, log)


def delta_plus_one_coloring(
    graph: Graph,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
    reduction: str = "kw",
    max_rounds: int = 100_000,
    allow_duplicate_ids: bool = False,
) -> AlgorithmReport:
    """DetLOCAL (Δ+1)-coloring in g(Δ) + O(log* n) rounds.

    Parameters
    ----------
    reduction:
        ``"kw"`` (Kuhn–Wattenhofer halving, O(Δ·log Δ) rounds) or
        ``"classic"`` (class-by-class, O(Δ²) rounds) — the ablation pair
        measured in the E2/E3 ablation benches.
    allow_duplicate_ids:
        Accept IDs unique only within the Linial stage's horizon — the
        Theorem 6 speedup transform feeds exactly such IDs (only the
        Linial stage reads them, and only to constant depth).
    """
    if reduction not in ("kw", "classic"):
        raise ValueError(f"unknown reduction {reduction!r}")
    n = graph.num_vertices
    if id_space is None:
        id_space = 1 << max(1, (max(n, 2) - 1).bit_length())
    delta = max(1, graph.max_degree)
    log = PhaseLog()
    linial_run = log.add(
        "linial",
        run_local(
            graph,
            LinialColoring(),
            Model.DET,
            ids=ids,
            global_params={"id_space": id_space},
            max_rounds=max_rounds,
            allow_duplicate_ids=allow_duplicate_ids,
        ),
    )
    palette = linial_schedule(id_space, delta)[-1]
    target = delta + 1
    algorithm = (
        KuhnWattenhoferReduction()
        if reduction == "kw"
        else ClassByClassReduction()
    )
    reduce_run = log.add(
        f"reduction-{reduction}",
        run_local(
            graph,
            algorithm,
            Model.DET,
            ids=ids,
            node_inputs=[{"color": c} for c in linial_run.outputs],
            global_params={"palette": palette, "target": target},
            max_rounds=max_rounds,
            allow_duplicate_ids=allow_duplicate_ids,
        ),
    )
    return AlgorithmReport(reduce_run.outputs, log.total_rounds, log)

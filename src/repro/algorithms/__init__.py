"""Distributed algorithms: the paper's contributions and every
subroutine they stand on."""

from .ball import BallCollection
from .cole_vishkin import (
    ColeVishkinColoring,
    ColeVishkinTreeColoring,
    cv_schedule,
    cv_step,
    ring_orientation_inputs,
    rooted_tree_orientation_inputs,
)
from .decomposition import (
    Decomposition,
    ExponentialShiftClustering,
    clusters_are_connected,
    decomposition_coloring,
    mpx_decomposition,
)
from .delta55 import (
    GreedyRecolorByClass,
    PeelByMISAlgorithm,
    chang_kopelowitz_pettie_coloring,
)
from .drivers import AlgorithmReport, Phase, PhaseLog
from .edge_coloring_alg import (
    EdgeColoringByTurns,
    edge_coloring_2delta_minus_1,
)
from .linial import (
    LinialColoring,
    OrientedLinialColoring,
    choose_cover_free_params,
    cover_free_palette_size,
    cover_free_set,
    linial_fixed_point,
    linial_recolor,
    linial_schedule,
)
from .matching import (
    MatchingFromColoring,
    RandomizedMatching,
    deterministic_matching,
    randomized_matching,
)
from .mis import (
    GhaffariMIS,
    LubyMIS,
    MISFromColoring,
    deterministic_mis,
    ghaffari_mis,
    luby_mis,
)
from .rand_tree_coloring import (
    BAD,
    ColorBiddingAlgorithm,
    ColorBiddingConfig,
    ShatteringStats,
    pettie_su_tree_coloring,
    reserved_colors,
)
from .reduction import ClassByClassReduction, KuhnWattenhoferReduction
from .ruling_set import deterministic_ruling_set, randomized_ruling_set
from .sinkless import (
    RandomSinkFixing,
    canonical_sinkless_orientation,
    deterministic_sinkless_orientation,
    random_sinkless_orientation,
)
from .vertex_coloring import delta_plus_one_coloring
from .vertex_cover import (
    deterministic_vertex_cover,
    is_vertex_cover,
    randomized_vertex_cover,
)
from .tree_coloring import (
    LayerSweepColoring,
    PeelingAlgorithm,
    barenboim_elkin_coloring,
    h_partition,
    same_layer_ports,
    up_ports_from_layers,
)

__all__ = [
    "AlgorithmReport",
    "BAD",
    "BallCollection",
    "ClassByClassReduction",
    "ColeVishkinColoring",
    "ColeVishkinTreeColoring",
    "Decomposition",
    "ExponentialShiftClustering",
    "ColorBiddingAlgorithm",
    "ColorBiddingConfig",
    "EdgeColoringByTurns",
    "GhaffariMIS",
    "GreedyRecolorByClass",
    "KuhnWattenhoferReduction",
    "LayerSweepColoring",
    "LinialColoring",
    "LubyMIS",
    "MISFromColoring",
    "MatchingFromColoring",
    "OrientedLinialColoring",
    "PeelByMISAlgorithm",
    "PeelingAlgorithm",
    "Phase",
    "PhaseLog",
    "RandomSinkFixing",
    "RandomizedMatching",
    "ShatteringStats",
    "barenboim_elkin_coloring",
    "canonical_sinkless_orientation",
    "chang_kopelowitz_pettie_coloring",
    "clusters_are_connected",
    "choose_cover_free_params",
    "cover_free_palette_size",
    "cover_free_set",
    "cv_schedule",
    "cv_step",
    "decomposition_coloring",
    "delta_plus_one_coloring",
    "deterministic_matching",
    "deterministic_mis",
    "deterministic_ruling_set",
    "deterministic_sinkless_orientation",
    "deterministic_vertex_cover",
    "edge_coloring_2delta_minus_1",
    "ghaffari_mis",
    "h_partition",
    "linial_fixed_point",
    "linial_recolor",
    "is_vertex_cover",
    "linial_schedule",
    "luby_mis",
    "mpx_decomposition",
    "pettie_su_tree_coloring",
    "randomized_matching",
    "randomized_ruling_set",
    "random_sinkless_orientation",
    "reserved_colors",
    "randomized_vertex_cover",
    "ring_orientation_inputs",
    "rooted_tree_orientation_inputs",
    "same_layer_ports",
    "up_ports_from_layers",
]

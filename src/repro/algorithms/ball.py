"""Full-information ball collection.

The normal form of a t-round LOCAL algorithm: gather everything within
distance t, then decide locally.  :class:`BallCollection` implements the
gathering honestly — each round every vertex publishes all topology it
knows, so after t rounds it knows the ID-labeled ball of radius t (all
vertices within distance t, all edges with an endpoint within t-1).

Used by the deterministic sinkless-orientation algorithm (collect to the
diameter, compute a canonical global answer) and by tests that compare
engine executions against the ball-function normal form.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Set, Tuple

from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import NodeContext

#: Knowledge = (vertex facts, edge facts): id -> (degree, label), ids pair.
Knowledge = Tuple[Dict[int, Tuple[int, Any]], Set[Tuple[int, int]]]


class BallCollection(SyncAlgorithm):
    """Collect the radius-``radius`` ball, then apply ``compute``.

    Parameters
    ----------
    radius:
        Number of gathering rounds.
    compute:
        ``compute(ctx, vertices, edges) -> output`` where ``vertices``
        maps each known ID to ``(degree, label)`` and ``edges`` is a set
        of ID pairs ``(a, b)`` with ``a < b``.

    Node input:
        ``label`` (optional): an extra payload that travels with the
        vertex (e.g. input edge colors).

    DetLOCAL only (knowledge is keyed by IDs).
    """

    name = "ball-collection"

    def __init__(self, radius: int, compute: Callable[..., Any]):
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.radius = radius
        self.compute = compute

    def setup(self, ctx: NodeContext) -> None:
        me = ctx.id
        vertices = {me: (ctx.degree, ctx.input.get("label"))}
        edges: Set[Tuple[int, int]] = set()
        ctx.state["vertices"] = vertices
        ctx.state["edges"] = edges
        ctx.state["round"] = 0
        if self.radius == 0:
            ctx.halt(self.compute(ctx, vertices, edges))
            return
        # Publish a copy: our own dict mutates while neighbors read.
        ctx.publish((me, dict(vertices), set(edges)))

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        me = ctx.id
        vertices: Dict[int, Tuple[int, Any]] = ctx.state["vertices"]
        edges: Set[Tuple[int, int]] = ctx.state["edges"]
        for msg in inbox:
            if msg is None:
                continue
            neighbor_id, their_vertices, their_edges = msg
            vertices.update(their_vertices)
            edges |= their_edges
            key = (me, neighbor_id) if me < neighbor_id else (neighbor_id, me)
            edges.add(key)
        ctx.state["round"] += 1
        if ctx.state["round"] >= self.radius:
            ctx.halt(self.compute(ctx, vertices, edges))
            return
        # Publish copies: neighbors must see this round's snapshot, and
        # our own dict keeps mutating.
        ctx.publish((me, dict(vertices), set(edges)))

"""Distributed 2-approximate minimum vertex cover.

Section I's survey discusses approximate vertex cover around the KMW
lower bound (Ω(min(log Δ/log log Δ, √(log n/log log n))) for O(1)-
approximation) and the matching (2+ε)-approximation upper bound of
Bar-Yehuda et al.  The textbook 2-approximation — both endpoints of any
maximal matching — is a one-liner on top of our matching algorithms and
rounds out the survey problems: the same KMW bound applies to it, so
experiment E9's sandwich covers it too.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from .drivers import AlgorithmReport, PhaseLog
from .matching import deterministic_matching, randomized_matching
from ..graphs.graph import Graph
from ..lcl.matching import UNMATCHED


def cover_from_matching_labels(labels: Sequence) -> List[int]:
    """0/1 cover labels: matched vertices in, unmatched out."""
    return [0 if port is UNMATCHED else 1 for port in labels]


def is_vertex_cover(graph: Graph, labels: Sequence[int]) -> bool:
    """Whether the 1-labeled vertices touch every edge."""
    return all(
        labels[u] == 1 or labels[v] == 1 for u, v in graph.edges()
    )


def approximation_certificate(
    graph: Graph, labels: Sequence[int], matching_labels: Sequence
) -> bool:
    """Verify the 2-approximation *locally checkable* certificate: the
    cover is exactly the endpoint set of a maximal matching, so
    |cover| = 2·|M| <= 2·OPT (every cover needs one endpoint per
    matched edge)."""
    cover: Set[int] = {v for v, x in enumerate(labels) if x == 1}
    matched = {
        v for v, port in enumerate(matching_labels) if port is not UNMATCHED
    }
    return cover == matched and is_vertex_cover(graph, labels)


def randomized_vertex_cover(
    graph: Graph, seed: Optional[int] = None
) -> AlgorithmReport:
    """RandLOCAL 2-approximate vertex cover (endpoints of the
    randomized maximal matching; +0 extra rounds — the conversion is
    local relabeling)."""
    base = randomized_matching(graph, seed=seed)
    log = PhaseLog()
    for phase in base.log.phases:
        log.add_rounds(phase.name, phase.rounds, phase.messages)
    labels = cover_from_matching_labels(base.labeling)
    report = AlgorithmReport(labels, log.total_rounds, log)
    report.matching_labels = base.labeling  # type: ignore[attr-defined]
    return report


def deterministic_vertex_cover(
    graph: Graph, ids: Optional[Sequence[int]] = None
) -> AlgorithmReport:
    """DetLOCAL 2-approximate vertex cover via the deterministic
    maximal matching."""
    base = deterministic_matching(graph, ids=ids)
    log = PhaseLog()
    for phase in base.log.phases:
        log.add_rounds(phase.name, phase.rounds, phase.messages)
    labels = cover_from_matching_labels(base.labeling)
    report = AlgorithmReport(labels, log.total_rounds, log)
    report.matching_labels = base.labeling  # type: ignore[attr-defined]
    return report

"""Randomized low-diameter network decomposition (MPX-style).

Theorem 3's takeaway is that every optimal RandLOCAL algorithm encodes
an optimal DetLOCAL algorithm for poly(log n)-size instances; the
deterministic component the paper points at ([10] Panconesi–Srinivasan)
is a *network decomposition*.  This module provides the randomized
counterpart that modern shattering pipelines use as a building block:
the Miller–Peng–Xu exponential-shift clustering.

Every vertex draws a geometric shift δ_v; vertex u joins the cluster of
the center v maximizing ``δ_v − dist(u, v)`` (ties broken by center
rank, which makes clusters connected).  The computation is a flooding
race: each round, every vertex relays the strongest offer it has seen,
decremented by one hop.  After ``T = max δ + 1`` rounds the assignment
is stable; cluster radii are at most ``max δ = O(log n / β)`` with high
probability, and each edge is cut with probability O(β).

The driver runs the race for a schedule computed from n alone (vertices
know n, Section I), so the round count is honest: O(log n / β).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from .drivers import AlgorithmReport, PhaseLog
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..graphs.graph import Graph


class ExponentialShiftClustering(SyncAlgorithm):
    """The MPX flooding race.

    Globals:
        ``beta``: cut parameter in (0, 1);
        ``rounds``: the race length T (common knowledge from n and β).

    Output per vertex: ``(center_rank, center_token, distance)`` —
    ``center_token`` identifies the cluster (a random 64-bit name the
    center draws; unique whp), ``distance`` is the hop count to it.
    """

    name = "exponential-shift-clustering"

    def setup(self, ctx: NodeContext) -> None:
        beta = ctx.globals["beta"]
        # Geometric shift: number of failures before a success.
        shift = 0
        while ctx.random.random() >= beta:
            shift += 1
            if shift > 100 * ctx.globals["rounds"]:
                break
        token = ctx.random.getrandbits(64)
        # Offers compare lexicographically: (strength, token).
        ctx.state["best"] = (shift, token, 0)  # strength, center, dist
        ctx.publish(("offer", shift, token, 0))

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        strength, token, dist = ctx.state["best"]
        improved = False
        for msg in inbox:
            if not isinstance(msg, tuple) or msg[0] != "offer":
                continue
            their_strength = msg[1] - 1  # one hop farther
            if (their_strength, msg[2]) > (strength, token):
                strength, token, dist = their_strength, msg[2], msg[3] + 1
                improved = True
        if improved:
            ctx.state["best"] = (strength, token, dist)
            ctx.publish(("offer", strength, token, dist))
        if ctx.now + 1 >= ctx.globals["rounds"]:
            ctx.halt((strength, token, dist))


@dataclass
class Decomposition:
    """A clustering of the vertex set."""

    #: cluster token per vertex.
    assignment: List[int]
    #: hop distance to the cluster center per vertex.
    distances: List[int]
    #: rounds the race ran.
    rounds: int

    @property
    def clusters(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for v, token in enumerate(self.assignment):
            out.setdefault(token, []).append(v)
        return out

    def max_radius(self) -> int:
        return max(self.distances) if self.distances else 0

    def cut_edges(self, graph: Graph) -> int:
        return sum(
            1
            for u, v in graph.edges()
            if self.assignment[u] != self.assignment[v]
        )


def mpx_decomposition(
    graph: Graph,
    beta: float = 0.4,
    seed: Optional[int] = None,
    max_rounds: int = 100_000,
) -> Decomposition:
    """Run the MPX clustering; radii are O(log n / β) whp and each edge
    is cut with probability O(β)."""
    if not 0 < beta < 1:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    n = max(graph.num_vertices, 2)
    # Geometric maxima: P(δ >= k) = (1-β)^k; whp bound c·ln n / β.
    horizon = max(4, math.ceil(4.0 * math.log(n) / beta))
    result = run_local(
        graph,
        ExponentialShiftClustering(),
        Model.RAND,
        seed=seed,
        global_params={"beta": beta, "rounds": horizon},
        max_rounds=max_rounds,
    )
    assignment = [token for (_s, token, _d) in result.outputs]
    distances = [d for (_s, _t, d) in result.outputs]
    return Decomposition(
        assignment=assignment, distances=distances, rounds=result.rounds
    )


def clusters_are_connected(graph: Graph, decomposition: Decomposition) -> bool:
    """Every cluster must induce a connected subgraph (the MPX
    tie-breaking guarantee)."""
    for token, members in decomposition.clusters.items():
        sub, _ = graph.induced_subgraph(members)
        if not sub.is_connected():
            return False
    return True


def decomposition_coloring(
    graph: Graph,
    decomposition: Decomposition,
    colors: Optional[int] = None,
    seed: Optional[int] = None,
) -> AlgorithmReport:
    """(Δ+1)-color the graph cluster-by-cluster: contract clusters,
    properly color the cluster graph centrally (the step a full
    Panconesi–Srinivasan pipeline does by recursion), then let color
    classes of clusters run greedy coloring in sequence.

    The round accounting charges ``(2·radius + 1)`` rounds per cluster
    color class — the time for a cluster to gather itself, decide, and
    disperse — which is the standard way decomposition-based algorithms
    are scheduled.  Demonstrates the decomposition -> coloring reduction
    the paper's Theorem 3 discussion leans on.
    """
    delta = max(1, graph.max_degree)
    palette = delta + 1 if colors is None else colors
    clusters = decomposition.clusters
    tokens = sorted(clusters)
    index = {token: i for i, token in enumerate(tokens)}
    # Cluster graph: adjacency between clusters.
    neighbors: Dict[int, set] = {i: set() for i in range(len(tokens))}
    assignment = decomposition.assignment
    for u, v in graph.edges():
        a, b = index[assignment[u]], index[assignment[v]]
        if a != b:
            neighbors[a].add(b)
            neighbors[b].add(a)
    cluster_color: Dict[int, int] = {}
    for i in sorted(
        range(len(tokens)), key=lambda i: (-len(neighbors[i]), i)
    ):
        used = {
            cluster_color[j] for j in neighbors[i] if j in cluster_color
        }
        c = 0
        while c in used:
            c += 1
        cluster_color[i] = c
    num_classes = 1 + max(cluster_color.values(), default=0)

    labeling: List[Optional[int]] = [None] * graph.num_vertices
    rng = random.Random(seed)
    for klass in range(num_classes):
        for i, token in enumerate(tokens):
            if cluster_color[i] != klass:
                continue
            members = clusters[token]
            order = sorted(members, key=lambda v: rng.random())
            for v in order:
                used = {
                    labeling[u]
                    for u in graph.neighbors(v)
                    if labeling[u] is not None
                }
                c = 0
                while c in used:
                    c += 1
                if c >= palette:
                    raise AssertionError("palette exhausted")
                labeling[v] = c
    log = PhaseLog()
    log.add_rounds("mpx-race", decomposition.rounds)
    log.add_rounds(
        "class-sequential-coloring",
        num_classes * (2 * decomposition.max_radius() + 1),
    )
    return AlgorithmReport(labeling, log.total_rounds, log)

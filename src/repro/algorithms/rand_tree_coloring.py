"""Randomized Δ-coloring of trees — Theorem 10 (Section VI.A).

The paper's two-phase RandLOCAL algorithm:

**Phase 1** (:class:`ColorBiddingAlgorithm`, O(log* Δ) iterations): the
palette is split into a main part ``{0 .. Δ-r-1}`` and ``r = ⌈√Δ⌉``
reserved colors.  Each iteration runs the paper's ``ColorBidding(i)`` —
every participating vertex samples a random color subset ``S_v`` of its
remaining palette ``Ψ_i(v)`` (one uniform color when ``c_i = 1``, else
each color independently with probability ``c_i / |Ψ_i(v)|``) and keeps
a color of ``S_v`` not bid by any participating neighbor — followed by
``Filtering(i)``, which marks vertices *bad* when the paper's invariants

- P1 (large palette): ``|Ψ_i(v)| >= Δ / K``
- P2 (small degree):  ``|N_i(v)| <= Δ / c_i``

are endangered.  Bad vertices stop participating.  The escalation
sequence ``c_1 = 1,  c_i = min(Δ^0.1, c_{i-1}·exp(c_{i-1}/g))`` matches
the paper's recursion with configurable constants: the printed constants
(K = 200, g = 3·200·e^200) are proof artifacts — with them the sequence
needs astronomically many iterations to move, so no finite experiment
could run them.  We default to K = 4, g = 8, keep the exact recursion
*shape* (hence t = O(log* Δ) iterations), and verify P1/P2 at runtime.

**Phase 2** (shattering): with high probability the *bad* vertices form
connected components of size O(Δ⁴ log n); each component is q-colored
with the reserved colors by the deterministic algorithm of Theorem 9 —
O(log_Δ log n + log* n) rounds.  This is the graph-shattering pattern
Theorem 3 proves unavoidable.

Total: O(log_Δ log n + log* n) rounds, exponentially faster than the
deterministic Θ(log_Δ n) bound (Theorem 5) — the headline separation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .drivers import AlgorithmReport, PhaseLog
from .tree_coloring import barenboim_elkin_coloring
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..core.errors import AlgorithmFailure
from ..graphs.graph import Graph

#: Phase-1 output label of a vertex that was marked bad.
BAD = -1


@dataclass(frozen=True)
class ColorBiddingConfig:
    """Tunable constants of the Phase-1 analysis.

    ``palette_guard`` is the paper's 200 (invariant P1 reads
    ``|Ψ| >= Δ / palette_guard``); ``growth_denominator`` is the paper's
    ``3 · 200 · e^200`` (the escalation ``c_i = c_{i-1} ·
    exp(c_{i-1} / g)``); ``cap_exponent`` is the paper's 0.1 in the cap
    ``c_i <= Δ^0.1``.  Defaults are practical equivalents with the same
    asymptotic shape (see module docstring).
    """

    palette_guard: float = 4.0
    growth_denominator: float = 8.0
    cap_exponent: float = 0.1

    def escalation_schedule(self, delta: int) -> List[float]:
        """The sequence ``c_1 .. c_t`` (t = first index hitting the cap
        ``Δ^cap_exponent``); its length is the number of Phase-1
        iterations, O(log* Δ)."""
        cap = max(1.0, float(delta) ** self.cap_exponent)
        schedule = [1.0]
        while schedule[-1] < cap:
            c = schedule[-1]
            nxt = min(cap, c * math.exp(c / self.growth_denominator))
            if nxt <= c:
                break
            schedule.append(nxt)
            if len(schedule) > 10_000:
                raise AssertionError("escalation schedule did not converge")
        return schedule


def reserved_colors(delta: int) -> int:
    """Number of reserved colors r = max(3, ⌈√Δ⌉) (Phase 2 needs a
    palette of at least 3 for Theorem 9)."""
    return max(3, math.isqrt(delta - 1) + 1)


class ColorBiddingAlgorithm(SyncAlgorithm):
    """Phase 1 of Theorem 10: iterated ColorBidding + Filtering.

    Globals:
        ``config``: a :class:`ColorBiddingConfig`;
        ``main_palette``: size of the non-reserved palette Δ - r.

    Output: a color in ``0 .. main_palette-1``, or :data:`BAD`.

    Each iteration costs two rounds: a *bid* round (publish ``S_v``) and
    a *resolve* round (publish the chosen color, or continued
    participation).  Filtering decisions happen while preparing the next
    bid, exactly as in the paper (they depend only on information within
    distance 1 of the previous iteration's outcome).
    """

    name = "color-bidding"

    def setup(self, ctx: NodeContext) -> None:
        config: ColorBiddingConfig = ctx.globals["config"]
        delta = ctx.max_degree
        ctx.state["schedule"] = config.escalation_schedule(delta)
        ctx.state["iteration"] = 0
        ctx.state["palette"] = set(range(ctx.globals["main_palette"]))
        ctx.state["participating_ports"] = set(ctx.ports)
        ctx.state["phase"] = "bid"
        self._publish_bid(ctx)

    def _publish_bid(self, ctx: NodeContext) -> None:
        config: ColorBiddingConfig = ctx.globals["config"]
        schedule: List[float] = ctx.state["schedule"]
        i = ctx.state["iteration"]
        if i >= len(schedule):
            # Filtering(t): every still-uncolored vertex is bad.
            ctx.publish(("bad",))
            ctx.halt(BAD)
            return
        delta = ctx.max_degree
        palette: Set[int] = ctx.state["palette"]
        guard = delta / config.palette_guard
        if len(palette) < guard:
            # Invariant P1 violated — the paper's analysis marks such
            # vertices bad at filtering; catching it here is equivalent
            # and protects against degenerate configurations.
            ctx.publish(("bad",))
            ctx.halt(BAD)
            return
        c_i = schedule[i]
        rng = ctx.random
        if c_i <= 1.0:
            choices = sorted(palette)
            bid = {choices[rng.randrange(len(choices))]}
        else:
            p = min(1.0, c_i / len(palette))
            # Ascending color order pins the per-vertex draw sequence —
            # the vectorized kernel replays these exact draws.
            bid = {
                color for color in sorted(palette) if rng.random() < p
            }
        ctx.state["bid"] = bid
        ctx.state["phase"] = "resolve"
        ctx.publish(("bid", bid))

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.state["phase"] == "resolve":
            self._resolve(ctx, inbox)
        else:
            self._filter_and_rebid(ctx, inbox)

    def _resolve(self, ctx: NodeContext, inbox: Inbox) -> None:
        participating: Set[int] = ctx.state["participating_ports"]
        neighbor_bids: Set[int] = set()
        for port in participating:
            msg = inbox[port]
            if isinstance(msg, tuple) and msg[0] == "bid":
                neighbor_bids |= msg[1]
        free = ctx.state["bid"] - neighbor_bids
        ctx.state["phase"] = "bid"
        if free:
            color = min(free)
            ctx.publish(("colored", color))
            ctx.halt(color)
        else:
            ctx.publish(("still",))

    def _filter_and_rebid(self, ctx: NodeContext, inbox: Inbox) -> None:
        config: ColorBiddingConfig = ctx.globals["config"]
        schedule: List[float] = ctx.state["schedule"]
        delta = ctx.max_degree
        participating: Set[int] = ctx.state["participating_ports"]
        palette: Set[int] = ctx.state["palette"]
        still_ports = set()
        for port in list(participating):
            msg = inbox[port]
            if isinstance(msg, tuple) and msg[0] == "colored":
                palette.discard(msg[1])
                participating.discard(port)
            elif isinstance(msg, tuple) and msg[0] == "bad":
                participating.discard(port)
            elif isinstance(msg, tuple) and msg[0] == "still":
                still_ports.add(port)
        ctx.state["participating_ports"] = still_ports
        i = ctx.state["iteration"]  # the iteration just resolved
        ctx.state["iteration"] = i + 1
        # Filtering(i), with i counted 0-based (paper is 1-based):
        if i == 0:
            guard = delta / config.palette_guard
            if len(palette) - len(still_ports) < guard:
                ctx.publish(("bad",))
                ctx.halt(BAD)
                return
        elif i + 1 < len(schedule):
            if len(still_ports) > delta / schedule[i + 1]:
                ctx.publish(("bad",))
                ctx.halt(BAD)
                return
        self._publish_bid(ctx)


@dataclass
class ShatteringStats:
    """What Phase 1 left behind, for experiment E5."""

    bad_vertices: int
    num_components: int
    max_component: int
    component_sizes: List[int] = field(default_factory=list)

    @staticmethod
    def paper_bound(n: int, delta: int) -> float:
        """The whp component-size bound Δ⁴ · log n from the Theorem 10
        analysis."""
        return (delta ** 4) * math.log(max(n, 2))


def pettie_su_tree_coloring(
    graph: Graph,
    seed: Optional[int] = None,
    config: Optional[ColorBiddingConfig] = None,
    max_rounds: int = 100_000,
) -> AlgorithmReport:
    """Theorem 10 driver: RandLOCAL Δ-coloring of a tree in
    O(log_Δ log n + log* n) rounds.

    The input must have Δ >= 9 so that ⌈√Δ⌉ >= 3 reserved colors are
    available for Phase 2 (the paper's Theorem 11 covers the small-Δ
    regime with a different algorithm).

    The returned report's ``log`` carries a ``stats`` attribute
    (:class:`ShatteringStats`) describing the shattering outcome.
    """
    delta = graph.max_degree
    if delta < 9:
        raise ValueError(
            f"Theorem 10 needs Δ >= 9 (got Δ = {delta}); "
            "use the Theorem 11 algorithm or Theorem 9 for smaller Δ"
        )
    if config is None:
        config = ColorBiddingConfig()
    r = reserved_colors(delta)
    main_palette = delta - r
    log = PhaseLog()

    phase1 = log.add(
        "phase1-color-bidding",
        run_local(
            graph,
            ColorBiddingAlgorithm(),
            Model.RAND,
            seed=seed,
            global_params={"config": config, "main_palette": main_palette},
            max_rounds=max_rounds,
        ),
    )
    if phase1.failures:
        # Unreachable in the fault-free model (the algorithm never
        # calls ctx.fail); crash-stop fault injection lands here.
        first = min(phase1.failures)
        raise AlgorithmFailure(
            f"phase 1 failed at {len(phase1.failures)} vertices "
            f"(first: vertex {first}: {phase1.failures[first]})",
            node=first,
            round=phase1.rounds,
        )
    labeling: List[int] = list(phase1.outputs)

    # One round for everyone to learn which neighbors ended bad (their
    # final "bad" publications are already in flight; accounting only).
    log.add_rounds("phase-boundary", 1, messages=2 * graph.num_edges)

    bad = [v for v in graph.vertices() if labeling[v] == BAD]
    stats = ShatteringStats(
        bad_vertices=len(bad), num_components=0, max_component=0
    )
    if bad:
        subgraph, originals = graph.induced_subgraph(bad)
        components = subgraph.connected_components()
        stats.num_components = len(components)
        stats.component_sizes = sorted(len(c) for c in components)
        stats.max_component = stats.component_sizes[-1]
        # Phase 2: deterministically q-color the bad subgraph with the
        # reserved colors.  Vertices have no IDs in RandLOCAL; as in the
        # proof of Theorem 5 they draw random ones (collision probability
        # 1/poly(n) folds into the algorithm's failure probability).
        phase2 = barenboim_elkin_coloring(subgraph, r, max_rounds=max_rounds)
        for local_index, color in enumerate(phase2.labeling):
            labeling[originals[local_index]] = main_palette + color
        for phase in phase2.log.phases:
            log.add_rounds(f"phase2-{phase.name}", phase.rounds, phase.messages)

    report = AlgorithmReport(labeling, log.total_rounds, log)
    report.log.stats = stats  # type: ignore[attr-defined]
    return report

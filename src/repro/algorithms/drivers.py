"""Multi-phase driver utilities and the shipped-driver registry.

The paper's algorithms are pipelines: "compute a coloring, then reduce
it, then shatter, then finish on the components".  Each stage is an
honest engine run; a :class:`PhaseLog` accumulates the exact round
counts so a pipeline reports the *sum* of its stages — the round
complexity a single monolithic LOCAL algorithm would incur, since every
stage's length is computable from common knowledge (all vertices switch
phases in lockstep).

The second half of this module is the **driver registry**: one
:class:`DriverSpec` per shipped end-to-end driver, carrying the
machine-checkable metadata the verification subsystem
(:mod:`repro.verify`) consumes — the LCL problem the driver claims to
solve, a declared round-complexity bound (audited on every certified
run), an instance generator for its natural graph family, and the
model/knob flags that decide which metamorphic relations apply.  A new
driver ships by adding a spec here; :func:`validate_registry` (wired
into the meta-tests and ``repro verify``) fails loudly on entries with
missing metadata.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.context import Model
from ..core.engine import RunResult
from ..core.errors import VerificationError
from ..graphs.graph import Graph
from ..lcl import (
    KColoring,
    LCLProblem,
    MaximalIndependentSet,
    MaximalMatching,
    SinklessOrientation,
)


@dataclass
class Phase:
    """One completed stage of a pipeline."""

    name: str
    rounds: int
    messages: int = 0


@dataclass
class PhaseLog:
    """Accumulates stages; ``total_rounds`` is the pipeline's cost."""

    phases: List[Phase] = field(default_factory=list)

    def add(self, name: str, result: RunResult) -> RunResult:
        """Record an engine run as a stage and pass the result through."""
        self.phases.append(Phase(name, result.rounds, result.messages))
        return result

    def add_rounds(self, name: str, rounds: int, messages: int = 0) -> None:
        """Record a stage whose cost is known without an engine run
        (e.g. a single information-exchange round)."""
        self.phases.append(Phase(name, rounds, messages))

    @property
    def total_rounds(self) -> int:
        return sum(p.rounds for p in self.phases)

    @property
    def total_messages(self) -> int:
        return sum(p.messages for p in self.phases)

    def breakdown(self) -> Dict[str, int]:
        """Phase-name -> rounds mapping (later same-named phases merge)."""
        out: Dict[str, int] = {}
        for p in self.phases:
            out[p.name] = out.get(p.name, 0) + p.rounds
        return out


@dataclass
class AlgorithmReport:
    """Uniform return type for pipeline drivers: the labeling plus the
    exact cost accounting."""

    labeling: List[Any]
    rounds: int
    log: PhaseLog

    @property
    def breakdown(self) -> Dict[str, int]:
        return self.log.breakdown()


# ----------------------------------------------------------------------
# The shipped-driver registry
# ----------------------------------------------------------------------
def _log2(x: float) -> float:
    return math.log2(max(2.0, float(x)))


def log_star(x: float) -> int:
    """Iterated logarithm (base 2), the paper's log* (>= 1)."""
    count = 0
    value = max(1.0, float(x))
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return max(1, count)


@dataclass(frozen=True)
class DriverSpec:
    """Verification metadata for one shipped end-to-end driver.

    Attributes
    ----------
    name:
        Registry key, also the label in reports and counterexamples.
    model:
        :attr:`Model.DET` drivers are pure functions of ``(graph,
        ids)``; :attr:`Model.RAND` drivers consume a seed (possibly
        for internally generated IDs too, like the Theorem 11 driver).
    invoke:
        ``invoke(graph, ids, seed) -> AlgorithmReport`` — the
        normalized entry point.  Implementations import their driver
        lazily so the registry can live next to :class:`PhaseLog`
        without an import cycle.
    problem:
        ``problem(graph) -> LCLProblem`` — the LCL the driver's
        labeling is certified against (instance-dependent, e.g.
        ``KColoring(Δ)``).
    bound:
        ``bound(n, delta) -> float`` — declared round-complexity bound
        *with slack*: the asymptotic shape from the paper times a
        generous constant, audited by the certificate checker so an
        accidental complexity regression (not a constant-factor
        wiggle) fails the audit.
    bound_label:
        Human-readable form of the declared bound, for reports/docs.
    radius:
        ``radius(n, delta) -> float`` — declared *information radius*:
        the largest ball any published output may depend on.  In the
        LOCAL model a t-round algorithm is exactly a function of the
        radius-t ball (PAPER.md §2), so this defaults to ``bound`` when
        omitted; override it only for drivers whose outputs provably
        depend on a smaller ball than their round count (e.g. pipelines
        whose later stages reuse earlier outputs without new probes).
        Read through :meth:`declared_radius`.
    radius_label:
        Human-readable form of the declared radius.  The static
        dataflow pass (rule LM010) quotes it when a node program's
        inferred radius contradicts the declaration; empty means
        "same as bound_label".
    make_graph:
        ``make_graph(n, rng) -> Graph`` — seeded generator for the
        driver's natural instance family.  May round ``n`` to the
        family's constraints (parity, minimum size); the returned
        graph's true size is what instances record.
    min_n:
        Smallest ``n`` ``make_graph`` accepts — the shrinker's floor.
    quick_n / sizes:
        Instance sizes for the ``--quick`` tier-1 profile and the full
        verification sweep.
    accepts_ids / accepts_seed:
        Which knobs ``invoke`` honours; relations that need to re-run
        under fresh IDs (or reseed) consult these.
    """

    name: str
    model: Model
    invoke: Callable[
        [Graph, Optional[Sequence[int]], Optional[int]], AlgorithmReport
    ]
    problem: Callable[[Graph], LCLProblem]
    bound: Callable[[int, int], float]
    bound_label: str
    make_graph: Callable[[int, random.Random], Graph]
    min_n: int
    quick_n: int = 24
    sizes: Tuple[int, ...] = (24, 48)
    accepts_ids: bool = False
    accepts_seed: bool = False
    description: str = ""
    radius: Optional[Callable[[int, int], float]] = None
    radius_label: str = ""

    def declared_radius(self, n: int, delta: int) -> float:
        """The declared information radius at instance size ``(n, Δ)``:
        the explicit ``radius`` formula when one is declared, else the
        round bound (a t-round LOCAL algorithm sees a radius-t ball)."""
        if self.radius is not None:
            return self.radius(n, delta)
        return self.bound(n, delta)

    def declared_radius_label(self) -> str:
        return self.radius_label or self.bound_label

    def run(
        self,
        graph: Graph,
        *,
        ids: Optional[Sequence[int]] = None,
        seed: Optional[int] = None,
    ) -> AlgorithmReport:
        """Run the driver with the normalized knobs."""
        if ids is not None and not self.accepts_ids:
            raise VerificationError(
                f"driver {self.name!r} does not accept an ID assignment"
            )
        if seed is not None and not self.accepts_seed:
            raise VerificationError(
                f"driver {self.name!r} does not accept a seed"
            )
        return self.invoke(graph, ids, seed)


def _tree_family(delta: int) -> Callable[[int, random.Random], Graph]:
    def make(n: int, rng: random.Random) -> Graph:
        from ..graphs.generators import complete_regular_tree_with_size

        return complete_regular_tree_with_size(delta, max(n, delta + 1))

    return make


def _prufer_tree(n: int, rng: random.Random) -> Graph:
    from ..graphs.generators import random_tree_prufer

    return random_tree_prufer(max(n, 4), rng)


def _regular_family(d: int) -> Callable[[int, random.Random], Graph]:
    def make(n: int, rng: random.Random) -> Graph:
        from ..graphs.generators import random_regular_graph

        n = max(n, d + 2)
        if (n * d) % 2:
            n += 1
        return random_regular_graph(n, d, rng)

    return make


def _circulant(n: int, rng: random.Random) -> Graph:
    from ..graphs.generators import circulant_graph

    return circulant_graph(max(n, 5), [1, 2])


def _build_registry() -> Dict[str, DriverSpec]:
    """All shipped drivers.  Invoke closures import lazily (the driver
    modules themselves import :class:`PhaseLog` from here)."""

    def ckp(graph: Graph, ids: Any, seed: Any) -> AlgorithmReport:
        from .delta55 import chang_kopelowitz_pettie_coloring

        return chang_kopelowitz_pettie_coloring(
            graph, seed=seed, min_delta=7
        )

    def pettie_su(graph: Graph, ids: Any, seed: Any) -> AlgorithmReport:
        from .rand_tree_coloring import pettie_su_tree_coloring

        return pettie_su_tree_coloring(graph, seed=seed)

    def barenboim_elkin(
        graph: Graph, ids: Any, seed: Any
    ) -> AlgorithmReport:
        from .tree_coloring import barenboim_elkin_coloring

        return barenboim_elkin_coloring(graph, 6, ids=ids)

    def delta_plus_one(
        graph: Graph, ids: Any, seed: Any
    ) -> AlgorithmReport:
        from .vertex_coloring import delta_plus_one_coloring

        return delta_plus_one_coloring(graph, ids=ids)

    def luby(graph: Graph, ids: Any, seed: Any) -> AlgorithmReport:
        from .mis import luby_mis

        return luby_mis(graph, seed=seed)

    def det_mis(graph: Graph, ids: Any, seed: Any) -> AlgorithmReport:
        from .mis import deterministic_mis

        return deterministic_mis(graph, ids=ids)

    def rand_matching(
        graph: Graph, ids: Any, seed: Any
    ) -> AlgorithmReport:
        from .matching import randomized_matching

        return randomized_matching(graph, seed=seed)

    def det_matching(
        graph: Graph, ids: Any, seed: Any
    ) -> AlgorithmReport:
        from .matching import deterministic_matching

        return deterministic_matching(graph, ids=ids)

    def rand_sinkless(
        graph: Graph, ids: Any, seed: Any
    ) -> AlgorithmReport:
        from .sinkless import random_sinkless_orientation

        return random_sinkless_orientation(graph, seed=seed)[0]

    def det_sinkless(
        graph: Graph, ids: Any, seed: Any
    ) -> AlgorithmReport:
        from .sinkless import deterministic_sinkless_orientation

        return deterministic_sinkless_orientation(graph, ids=ids)

    def linial(graph: Graph, ids: Any, seed: Any) -> AlgorithmReport:
        from .vertex_coloring import linial_fixed_point_coloring

        return linial_fixed_point_coloring(graph, ids=ids)

    def linial_palette(graph: Graph) -> int:
        # Must mirror linial_fixed_point_coloring's defaults: the
        # certified palette is the schedule's last entry for the
        # instance's default ID space and maximum degree.
        from .linial import linial_schedule

        id_space = 1 << max(
            1, (max(graph.num_vertices, 2) - 1).bit_length()
        )
        return linial_schedule(id_space, max(1, graph.max_degree))[-1]

    def coloring_bound(n: int, delta: int) -> float:
        # Linial schedule O(log* n) + KW reduction O(Δ log Δ), with a
        # wide constant; every deterministic coloring pipeline here
        # stays under this envelope.
        return 16 * (delta * _log2(delta) + log_star(n)) + 96

    def class_sweep_bound(n: int, delta: int) -> float:
        # Coloring pipeline plus a sweep over the reduced palette.
        return coloring_bound(n, delta) + 16 * delta + 64

    def shattering_bound(n: int, delta: int) -> float:
        # Theorem 10/11 shape O(log_Δ log n + log* n) plus the
        # deterministic finish on poly(log n)-size components.
        return (
            24 * (_log2(_log2(n)) + log_star(n))
            + 16 * delta * _log2(delta)
            + 128
        )

    def whp_log_bound(n: int, delta: int) -> float:
        # O(log n) w.h.p. randomized locality (Luby, proposal matching,
        # sink fixing); the constant absorbs unlucky seeds at small n.
        return 48 * _log2(n) + 64

    def diameter_bound(n: int, delta: int) -> float:
        # Full-graph collection: diameter + O(1) extra rounds.  The
        # circulant family's diameter is ~n/4; 2n covers any instance.
        return 2 * n + 16

    specs = [
        DriverSpec(
            name="delta55-coloring",
            model=Model.RAND,
            invoke=ckp,
            problem=lambda g: KColoring(g.max_degree),
            bound=shattering_bound,
            bound_label="O(log_Δ log n + log* n) + shattered finish",
            radius_label="O(log_Δ log n + log* n) ball",
            make_graph=_tree_family(7),
            min_n=8,
            accepts_seed=True,
            description="Theorem 11 Δ-coloring (run at Δ = 7)",
        ),
        DriverSpec(
            name="pettie-su-tree-coloring",
            model=Model.RAND,
            invoke=pettie_su,
            problem=lambda g: KColoring(g.max_degree),
            bound=shattering_bound,
            bound_label="O(log_Δ log n + log* n) + shattered finish",
            radius_label="O(log_Δ log n + log* n) ball",
            make_graph=_tree_family(9),
            min_n=10,
            accepts_seed=True,
            description="Theorem 10 Δ-coloring via ColorBidding (Δ = 9)",
        ),
        DriverSpec(
            name="barenboim-elkin-coloring",
            model=Model.DET,
            invoke=barenboim_elkin,
            problem=lambda g: KColoring(6),
            bound=lambda n, delta: 24 * _log2(n) + 24 * log_star(n) + 96,
            bound_label="O(log n) peeling + O(log* n) coloring stages",
            radius_label="O(log n) ball",
            make_graph=_prufer_tree,
            min_n=4,
            accepts_ids=True,
            description="Theorem 9 6-coloring of a uniform random tree",
        ),
        DriverSpec(
            name="delta-plus-one-coloring",
            model=Model.DET,
            invoke=delta_plus_one,
            problem=lambda g: KColoring(g.max_degree + 1),
            bound=coloring_bound,
            bound_label="g(Δ) + O(log* n)",
            radius_label="g(Δ) + O(log* n) ball",
            make_graph=_regular_family(4),
            min_n=6,
            accepts_ids=True,
            description="(Δ+1)-coloring pipeline on 4-regular graphs",
        ),
        DriverSpec(
            name="luby-mis",
            model=Model.RAND,
            invoke=luby,
            problem=lambda g: MaximalIndependentSet(),
            bound=whp_log_bound,
            bound_label="O(log n) w.h.p.",
            radius_label="O(log n) ball w.h.p.",
            make_graph=_regular_family(4),
            min_n=6,
            accepts_seed=True,
            description="Luby's MIS on 4-regular graphs",
        ),
        DriverSpec(
            name="deterministic-mis",
            model=Model.DET,
            invoke=det_mis,
            problem=lambda g: MaximalIndependentSet(),
            bound=class_sweep_bound,
            bound_label="Linial O(Δ²)-coloring + class sweep",
            radius_label="Linial + class-sweep ball",
            make_graph=_regular_family(4),
            min_n=6,
            accepts_ids=True,
            description="Coloring-based MIS on 4-regular graphs",
        ),
        DriverSpec(
            name="randomized-matching",
            model=Model.RAND,
            invoke=rand_matching,
            problem=lambda g: MaximalMatching(),
            bound=whp_log_bound,
            bound_label="O(log n) w.h.p.",
            radius_label="O(log n) ball w.h.p.",
            make_graph=_regular_family(3),
            min_n=4,
            accepts_seed=True,
            description="Proposal matching on cubic graphs",
        ),
        DriverSpec(
            name="deterministic-matching",
            model=Model.DET,
            invoke=det_matching,
            problem=lambda g: MaximalMatching(),
            bound=class_sweep_bound,
            bound_label="Linial + reduction + turn-taking",
            radius_label="Linial + reduction ball",
            make_graph=_regular_family(3),
            min_n=4,
            accepts_ids=True,
            description="Coloring-based matching on cubic graphs",
        ),
        DriverSpec(
            name="random-sinkless",
            model=Model.RAND,
            invoke=rand_sinkless,
            problem=lambda g: SinklessOrientation(),
            bound=whp_log_bound,
            bound_label="O(log n) sink-fixing rounds w.h.p.",
            radius_label="O(log n) ball w.h.p.",
            make_graph=_circulant,
            min_n=5,
            accepts_seed=True,
            description="Random sink fixing on circulant C_n(1,2)",
        ),
        DriverSpec(
            name="deterministic-sinkless",
            model=Model.DET,
            invoke=det_sinkless,
            problem=lambda g: SinklessOrientation(),
            bound=diameter_bound,
            bound_label="diameter + O(1) collection rounds",
            radius_label="diameter ball",
            make_graph=_circulant,
            min_n=5,
            accepts_ids=True,
            description="Canonical-rule orientation on circulant C_n(1,2)",
        ),
        DriverSpec(
            name="linial-coloring",
            model=Model.DET,
            invoke=linial,
            problem=lambda g: KColoring(linial_palette(g)),
            bound=lambda n, delta: 16 * log_star(n) + 48,
            bound_label="O(log* n) iterated cover-free recoloring",
            radius_label="O(log* n) ball",
            make_graph=_regular_family(4),
            min_n=6,
            accepts_ids=True,
            description="Theorem 2 fixed-point coloring on 4-regular "
            "graphs (no reduction stage)",
        ),
    ]
    return {spec.name: spec for spec in specs}


#: name -> spec for every shipped end-to-end driver.
DRIVER_REGISTRY: Dict[str, DriverSpec] = _build_registry()


def driver_registry() -> Dict[str, DriverSpec]:
    """The shipped-driver registry (insertion-ordered copy)."""
    return dict(DRIVER_REGISTRY)


def get_driver(name: str) -> DriverSpec:
    """Look up one spec; raises :class:`VerificationError` with the
    available names on a miss."""
    try:
        return DRIVER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DRIVER_REGISTRY))
        raise VerificationError(
            f"unknown driver {name!r} (registered: {known})"
        ) from None


def validate_registry(
    registry: Optional[Dict[str, DriverSpec]] = None,
) -> None:
    """Fail loudly on a spec with missing verification metadata.

    Called by the meta-tests and by ``repro verify`` before any sweep:
    a driver registered without its LCL problem, declared bound, or
    instance family cannot be machine-checked and must not ship
    silently.
    """
    registry = DRIVER_REGISTRY if registry is None else registry
    for name, spec in registry.items():
        if spec.name != name:
            raise VerificationError(
                f"registry key {name!r} does not match spec name "
                f"{spec.name!r}"
            )
        for attr in ("invoke", "problem", "bound", "make_graph"):
            if getattr(spec, attr) is None:
                raise VerificationError(
                    f"driver {name!r} is missing registry metadata "
                    f"{attr!r}"
                )
        if not spec.bound_label:
            raise VerificationError(
                f"driver {name!r} declares no bound_label"
            )
        if spec.min_n < 2:
            raise VerificationError(
                f"driver {name!r}: min_n must be >= 2, got {spec.min_n}"
            )
        if not (spec.accepts_ids or spec.accepts_seed):
            raise VerificationError(
                f"driver {name!r} accepts neither IDs nor a seed — "
                "no relation can re-run it under a transformed input"
            )
        if spec.model is Model.DET and spec.accepts_seed:
            raise VerificationError(
                f"driver {name!r}: DetLOCAL drivers must not consume "
                "a seed"
            )
        # A t-round LOCAL algorithm sees at most the radius-t ball, so
        # a declared radius above the declared round bound is a
        # contradiction in the spec itself.
        for n, delta in ((8, 3), (64, 4), (1024, 8)):
            if spec.declared_radius(n, delta) > spec.bound(n, delta):
                raise VerificationError(
                    f"driver {name!r}: declared radius exceeds the "
                    f"declared round bound at n={n}, Δ={delta}"
                )

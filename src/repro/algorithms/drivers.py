"""Multi-phase driver utilities.

The paper's algorithms are pipelines: "compute a coloring, then reduce
it, then shatter, then finish on the components".  Each stage is an
honest engine run; a :class:`PhaseLog` accumulates the exact round
counts so a pipeline reports the *sum* of its stages — the round
complexity a single monolithic LOCAL algorithm would incur, since every
stage's length is computable from common knowledge (all vertices switch
phases in lockstep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..core.engine import RunResult


@dataclass
class Phase:
    """One completed stage of a pipeline."""

    name: str
    rounds: int
    messages: int = 0


@dataclass
class PhaseLog:
    """Accumulates stages; ``total_rounds`` is the pipeline's cost."""

    phases: List[Phase] = field(default_factory=list)

    def add(self, name: str, result: RunResult) -> RunResult:
        """Record an engine run as a stage and pass the result through."""
        self.phases.append(Phase(name, result.rounds, result.messages))
        return result

    def add_rounds(self, name: str, rounds: int, messages: int = 0) -> None:
        """Record a stage whose cost is known without an engine run
        (e.g. a single information-exchange round)."""
        self.phases.append(Phase(name, rounds, messages))

    @property
    def total_rounds(self) -> int:
        return sum(p.rounds for p in self.phases)

    @property
    def total_messages(self) -> int:
        return sum(p.messages for p in self.phases)

    def breakdown(self) -> Dict[str, int]:
        """Phase-name -> rounds mapping (later same-named phases merge)."""
        out: Dict[str, int] = {}
        for p in self.phases:
            out[p.name] = out.get(p.name, 0) + p.rounds
        return out


@dataclass
class AlgorithmReport:
    """Uniform return type for pipeline drivers: the labeling plus the
    exact cost accounting."""

    labeling: List[Any]
    rounds: int
    log: PhaseLog

    @property
    def breakdown(self) -> Dict[str, int]:
        return self.log.breakdown()

"""Distributed (2Δ-1)-edge coloring.

One of the survey problems of Section I ([20] shows (2Δ-1)-edge
coloring is "much easier than maximal matching" in RandLOCAL).  Our
DetLOCAL implementation runs on top of a proper vertex coloring:

Classes take turns (ascending).  During class c's turn, each class-c
vertex *owns* its yet-uncolored edges toward higher-colored neighbors
and tries to color all of them.  An edge always has a free color: at
most (Δ-1) + (Δ-1) incident edges are already colored, and the palette
has 2Δ-1 > 2Δ-2 colors.  Two same-class owners are never adjacent, but
they can race for the palette *at a shared neighbor*, so each turn runs
propose / arbitrate / commit iterations:

- **propose**: owners pick tentative colors (distinct among their own
  proposals, avoiding both endpoints' used sets as last published);
- **arbitrate**: every vertex audits the proposals arriving on its
  ports and rejects all but the lowest-port proposal per color (and
  anything clashing with its own used set);
- **commit**: owners fix accepted colors; rejected edges retry in the
  next iteration (each iteration commits at least one contender per
  conflict, so Δ iterations per turn always suffice).

Total rounds: 3·Δ·(vertex palette) after the Linial + reduction
preamble — poly(Δ) + O(log* n), flat in n like every "easy" symmetry-
breaking problem on the deterministic side of the paper's dichotomy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .drivers import AlgorithmReport, PhaseLog
from .linial import LinialColoring, linial_schedule
from .reduction import KuhnWattenhoferReduction
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..graphs.graph import Graph


class EdgeColoringByTurns(SyncAlgorithm):
    """The propose/arbitrate/commit machine described above.

    Node input:
        ``color``: vertex color in a proper ``m``-coloring.
    Globals:
        ``palette``: m (number of turns);
        ``edge_palette``: number of edge colors (>= 2Δ-1).

    Output: the tuple of this vertex's port colors.
    """

    name = "edge-coloring-by-turns"

    def setup(self, ctx: NodeContext) -> None:
        ctx.state["edge_colors"] = [None] * ctx.degree
        ctx.state["pending"] = {}
        self._publish(ctx)
        if ctx.degree == 0:
            ctx.halt(())

    def _publish(
        self,
        ctx: NodeContext,
        assign: Optional[Dict[int, int]] = None,
        verdict: Optional[Dict[int, bool]] = None,
    ) -> None:
        ctx.publish(
            {
                "colors": tuple(ctx.state["edge_colors"]),
                "assign": assign or {},
                "verdict": verdict or {},
            }
        )

    def _turn_width(self, ctx: NodeContext) -> int:
        return 3 * max(1, ctx.max_degree)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        width = self._turn_width(ctx)
        turn, offset = divmod(ctx.now, width)
        phase = offset % 3
        my_turn = turn == ctx.input["color"]
        if turn >= ctx.globals["palette"]:
            ctx.halt(tuple(ctx.state["edge_colors"]))
            return
        if phase == 0 and my_turn:
            self._propose(ctx, inbox)
        elif phase == 1:
            self._arbitrate(ctx, inbox)
        elif phase == 2 and my_turn:
            self._commit(ctx, inbox)
        else:
            self._publish(ctx)

    def _owned_uncolored_ports(
        self, ctx: NodeContext, inbox: Inbox
    ) -> List[int]:
        my_color = ctx.input["color"]
        ports = []
        for p in ctx.ports:
            if ctx.state["edge_colors"][p] is not None:
                continue
            # Neighbor colors were exchanged once by the driver (one
            # accounted round) and arrive as static node input.
            if ctx.input["neighbor_colors"][p] > my_color:
                ports.append(p)
        return ports

    def _propose(self, ctx: NodeContext, inbox: Inbox) -> None:
        edge_palette = ctx.globals["edge_palette"]
        my_used = {
            c for c in ctx.state["edge_colors"] if c is not None
        }
        proposals: Dict[int, int] = {}
        claimed = set(my_used)
        for p in self._owned_uncolored_ports(ctx, inbox):
            msg = inbox[p]
            their_used = {
                c
                for c in (msg["colors"] if isinstance(msg, dict) else ())
                if c is not None
            }
            for c in range(edge_palette):
                if c not in claimed and c not in their_used:
                    proposals[p] = c
                    claimed.add(c)
                    break
        ctx.state["pending"] = proposals
        self._publish(ctx, assign=proposals)

    def _arbitrate(self, ctx: NodeContext, inbox: Inbox) -> None:
        # Collect proposals that target *this* vertex: neighbor on port
        # p published assign keyed by its own ports; the entry for the
        # shared edge is at our reverse port.
        reverse_ports = ctx.input["reverse_ports"]
        incoming = []
        for p in ctx.ports:
            msg = inbox[p]
            if not isinstance(msg, dict):
                continue
            proposal = msg["assign"].get(reverse_ports[p])
            if proposal is not None:
                incoming.append((p, proposal))
        used = {c for c in ctx.state["edge_colors"] if c is not None}
        verdicts: Dict[int, bool] = {}
        taken = set(used)
        for p, color in sorted(incoming):
            ok = color not in taken
            verdicts[p] = ok
            if ok:
                taken.add(color)
                # Record immediately: the proposer will commit.
                ctx.state["edge_colors"][p] = color
        self._publish(ctx, verdict=verdicts)

    def _commit(self, ctx: NodeContext, inbox: Inbox) -> None:
        reverse_ports = ctx.input["reverse_ports"]
        for p, color in ctx.state["pending"].items():
            msg = inbox[p]
            verdict = (
                msg["verdict"].get(reverse_ports[p])
                if isinstance(msg, dict)
                else None
            )
            if verdict:
                ctx.state["edge_colors"][p] = color
        ctx.state["pending"] = {}
        self._publish(ctx)


def edge_coloring_2delta_minus_1(
    graph: Graph,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
    max_rounds: int = 100_000,
) -> AlgorithmReport:
    """DetLOCAL (2Δ-1)-edge coloring driver.

    Pipeline: Linial -> (Δ+1) vertex colors -> class turns.  The output
    labeling matches :class:`repro.lcl.EdgeColoringLCL`.
    """
    n = graph.num_vertices
    if id_space is None:
        id_space = 1 << max(1, (max(n, 2) - 1).bit_length())
    delta = max(1, graph.max_degree)
    log = PhaseLog()
    linial_run = log.add(
        "linial",
        run_local(
            graph,
            LinialColoring(),
            Model.DET,
            ids=ids,
            global_params={"id_space": id_space},
            max_rounds=max_rounds,
        ),
    )
    palette = linial_schedule(id_space, delta)[-1]
    reduced = log.add(
        "reduction",
        run_local(
            graph,
            KuhnWattenhoferReduction(),
            Model.DET,
            ids=ids,
            node_inputs=[{"color": c} for c in linial_run.outputs],
            global_params={"palette": palette, "target": delta + 1},
            max_rounds=max_rounds,
        ),
    )
    vertex_colors: List[int] = reduced.outputs
    # One exchange round so everyone knows its neighbors' final colors.
    log.add_rounds("color-exchange", 1, messages=2 * graph.num_edges)
    neighbor_colors = [
        [vertex_colors[u] for u in graph.neighbors(v)]
        for v in graph.vertices()
    ]
    turns = log.add(
        "edge-turns",
        run_local(
            graph,
            EdgeColoringByTurns(),
            Model.DET,
            ids=ids,
            node_inputs=[
                {
                    "color": vertex_colors[v],
                    "neighbor_colors": neighbor_colors[v],
                }
                for v in graph.vertices()
            ],
            global_params={
                "palette": delta + 1,
                "edge_palette": 2 * delta - 1,
            },
            max_rounds=max_rounds,
        ),
    )
    return AlgorithmReport(turns.outputs, log.total_rounds, log)

"""Linial's coloring algorithm (Theorems 1 and 2 of the paper).

Theorem 1 (Linial): a ``k``-colored graph can be re-colored with
``O(Δ² log k)`` colors in **one** round.  The engine of the proof is a
*Δ-cover-free family*: sets ``S_1, .., S_k`` over a ground set ``[m]``
such that no ``S_i`` is covered by the union of any Δ others.  Each
vertex picks, as its new color, an element of ``S_{old(v)}`` not in
``∪_{u ∈ N(v)} S_{old(u)}`` — distinct across every edge because the
neighbor's new color lies inside its own set.

Theorem 2: iterating Theorem 1 reaches ``β·Δ²`` colors in
``O(log* n − log* Δ + 1)`` rounds.

Our constructive family uses polynomials over a prime field F_q: color
``i`` encodes a polynomial ``p_i`` of degree ≤ d, and
``S_i = {(x, p_i(x)) : x ∈ F_q} ⊆ F_q × F_q``.  Distinct polynomials
agree on ≤ d points, so for ``q > Δ·d`` the union of Δ foreign sets
misses some element of ``S_i``.  The palette has size ``q²``; with the
parameter search in :func:`choose_cover_free_params` this is
``O(Δ² log² k)`` in the worst case — a polylog factor above Theorem 1's
``5Δ² log k``, which changes no asymptotic used anywhere in the paper
(the iterated fixed point is still ``O(Δ²)``; see DESIGN.md).

The module also provides the *oriented* variant used on forests: if every
vertex avoids only its **out**-neighbors along a given orientation with
out-degree ≤ d, the same argument colors with a palette depending on d
rather than Δ.  This powers Theorem 9's tree coloring.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import NodeContext


def is_prime(x: int) -> bool:
    """Deterministic primality for the small moduli used here."""
    if x < 2:
        return False
    if x < 4:
        return True
    if x % 2 == 0:
        return False
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True


def next_prime(x: int) -> int:
    """Smallest prime >= x."""
    candidate = max(2, x)
    while not is_prime(candidate):
        candidate += 1
    return candidate


@lru_cache(maxsize=4096)
def choose_cover_free_params(k: int, degree: int) -> Tuple[int, int]:
    """Pick ``(d, q)`` for a ``degree``-cover-free family of ``k`` sets.

    Requirements: ``q`` prime, ``q > degree * d``, ``q^(d+1) >= k``.
    Returns the pair minimizing the palette size ``q²``.
    """
    if k < 1:
        raise ValueError(f"family size must be >= 1, got {k}")
    degree = max(1, degree)
    best: Optional[Tuple[int, int]] = None
    max_d = max(1, int(math.log2(max(k, 2))) + 1)
    for d in range(1, max_d + 1):
        # Smallest q with q^(d+1) >= k, bumping for float error.
        base = int(math.ceil(k ** (1.0 / (d + 1))))
        while base ** (d + 1) < k:
            base += 1
        q = next_prime(max(base, degree * d + 1))
        if best is None or q * q < best[1] ** 2:
            best = (d, q)
    assert best is not None
    return best


def cover_free_palette_size(k: int, degree: int) -> int:
    """Palette size of one recoloring step from ``k`` colors."""
    _, q = choose_cover_free_params(k, degree)
    return q * q


@lru_cache(maxsize=65536)
def cover_free_set(color: int, d: int, q: int) -> frozenset:
    """The set ``S_color``: the graph of the polynomial encoded by
    ``color`` in base ``q``, as elements ``x * q + p(x)``."""
    coeffs = []
    rest = color
    for _ in range(d + 1):
        coeffs.append(rest % q)
        rest //= q
    if rest:
        raise ValueError(f"color {color} out of range for q={q}, d={d}")
    out = set()
    for x in range(q):
        # Horner evaluation of p(x) mod q.
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % q
        out.add(x * q + acc)
    return frozenset(out)


def linial_recolor(
    color: int, neighbor_colors: Iterable[int], k: int, degree: int
) -> int:
    """One Theorem-1 step for a single vertex.

    ``neighbor_colors`` are the colors this vertex must escape from: all
    neighbors for the classic algorithm, out-neighbors only for the
    oriented variant.  Returns a color in ``0 .. q²-1``.
    """
    d, q = choose_cover_free_params(k, degree)
    own = cover_free_set(color, d, q)
    covered = set()
    for c in neighbor_colors:
        covered |= cover_free_set(c, d, q)
    for element in sorted(own):
        if element not in covered:
            return element
    raise AssertionError(
        "cover-free property violated — more neighbors than the family "
        "parameter supports"
    )


def linial_schedule(k0: int, degree: int, floor: Optional[int] = None) -> List[int]:
    """Palette sizes ``[k0, k1, ..]`` of iterated recoloring, stopping
    when the palette stops shrinking (or drops to ``floor``).

    Every vertex can compute this schedule locally from the public
    parameters, so all vertices agree on the number of rounds — that is
    how the distributed algorithm knows when to stop.
    """
    schedule = [k0]
    while True:
        k = schedule[-1]
        nxt = cover_free_palette_size(k, degree)
        if nxt >= k:
            break
        schedule.append(nxt)
        if floor is not None and nxt <= floor:
            break
        if len(schedule) > 10_000:
            raise AssertionError("schedule did not converge")
    return schedule


def linial_fixed_point(degree: int) -> int:
    """The palette size at which iterated recoloring stalls — the
    ``β·Δ²`` of Theorem 2 for this construction."""
    k = 1 << 62  # effectively "huge": the fixed point is Δ-determined
    schedule = linial_schedule(k, degree)
    return schedule[-1]


class LinialColoring(SyncAlgorithm):
    """DetLOCAL: iterated Theorem-1 recoloring from unique IDs down to
    the O(Δ²) fixed point (Theorem 2).

    Globals:
        ``id_space`` (optional): size of the ID space; defaults to the
        smallest power of two holding ``n`` distinct IDs.  IDs must be
        smaller than ``id_space``.

    Output: the final color.  Round count is ``len(schedule) - 1``.
    """

    name = "linial-coloring"

    def setup(self, ctx: NodeContext) -> None:
        k0 = ctx.globals.get("id_space")
        if k0 is None:
            k0 = 1 << max(1, (ctx.n - 1).bit_length())
        degree = max(1, ctx.max_degree)
        ctx.state["schedule"] = linial_schedule(k0, degree)
        ctx.state["round"] = 0
        ctx.state["color"] = ctx.id
        ctx.state["degree_param"] = degree
        ctx.publish(ctx.id)
        if len(ctx.state["schedule"]) == 1:
            # A schedule of length 1 means id_space is already at (or
            # below) the Theorem-2 fixed point, so the distinct IDs
            # *are* a proper coloring with the declared palette; the
            # guard is invisible to the radius lattice, which sees only
            # an unconditional radius-0 halt on ctx.id.
            ctx.halt(ctx.id)  # repro: ignore[LM010]

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        schedule = ctx.state["schedule"]
        i = ctx.state["round"]
        k = schedule[i]
        new_color = linial_recolor(
            ctx.state["color"], list(inbox), k, ctx.state["degree_param"]
        )
        ctx.state["color"] = new_color
        ctx.state["round"] = i + 1
        ctx.publish(new_color)
        if i + 1 >= len(schedule) - 1:
            ctx.halt(new_color)


class OrientedLinialColoring(SyncAlgorithm):
    """DetLOCAL: iterated recoloring where each vertex escapes only its
    **out**-neighbors along an input orientation of out-degree ≤ d.

    Node input:
        ``out_ports``: list of this vertex's ports that are oriented
        outward.
    Globals:
        ``out_degree``: the bound d (common knowledge);
        ``id_space`` (optional): as in :class:`LinialColoring`.

    Correctness: across every oriented edge the tail's new color avoids
    the head's whole set while the head's new color stays inside it, so
    the coloring is proper on *all* edges even though each vertex looks
    at only d of its neighbors.
    """

    name = "oriented-linial-coloring"

    def setup(self, ctx: NodeContext) -> None:
        k0 = ctx.globals.get("id_space")
        if k0 is None:
            k0 = 1 << max(1, (ctx.n - 1).bit_length())
        d = max(1, ctx.globals["out_degree"])
        ctx.state["schedule"] = linial_schedule(k0, d)
        ctx.state["round"] = 0
        ctx.state["color"] = ctx.id
        ctx.state["degree_param"] = d
        ctx.publish(ctx.id)
        if len(ctx.state["schedule"]) == 1:
            # Same waiver as LinialColoring.setup: length-1 schedule ⇒
            # the ID space is already within the fixed-point palette, so
            # halting on the (distinct) IDs is a valid coloring.
            ctx.halt(ctx.id)  # repro: ignore[LM010]

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        schedule = ctx.state["schedule"]
        i = ctx.state["round"]
        k = schedule[i]
        out_colors = [inbox[p] for p in ctx.input["out_ports"]]
        new_color = linial_recolor(
            ctx.state["color"], out_colors, k, ctx.state["degree_param"]
        )
        ctx.state["color"] = new_color
        ctx.state["round"] = i + 1
        ctx.publish(new_color)
        if i + 1 >= len(schedule) - 1:
            ctx.halt(new_color)

"""Ruling-set algorithms via power-graph simulation.

An MIS of G^(α-1) is exactly an (α, α-1)-ruling set of G: members are
pairwise at distance >= α (independence in the power graph) and every
vertex has a member within α-1 (maximality).  A LOCAL algorithm on
G^(α-1) is simulated in G with a factor (α-1) slowdown — each virtual
round gathers the (α-1)-ball.  The drivers below account exactly that.

Ruling sets are the relaxation behind several of the shattering-based
algorithms in the paper's survey ([18], [22]: "super-fast" t-ruling
sets); here they also serve as a further worked example of simulating
one LOCAL network on top of another.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .drivers import AlgorithmReport, PhaseLog
from .mis import deterministic_mis, luby_mis
from ..graphs.graph import Graph


def _simulate_on_power(
    graph: Graph, alpha: int, base_report: AlgorithmReport, name: str
) -> AlgorithmReport:
    """Re-account a power-graph run at the (α-1)-factor simulation cost."""
    factor = max(1, alpha - 1)
    log = PhaseLog()
    for phase in base_report.log.phases:
        log.add_rounds(
            f"{name}-{phase.name}", phase.rounds * factor, phase.messages
        )
    return AlgorithmReport(base_report.labeling, log.total_rounds, log)


def deterministic_ruling_set(
    graph: Graph,
    alpha: int,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
) -> AlgorithmReport:
    """DetLOCAL (α, α-1)-ruling set: coloring-based MIS on G^(α-1).

    Rounds: (α-1) · (Δ^(α-1)-coloring MIS cost) — polynomial in Δ^α
    but log*-flat in n, the trade the survey's t-ruling-set algorithms
    improve on.
    """
    if alpha < 2:
        raise ValueError(f"alpha must be >= 2, got {alpha}")
    power = graph.power_graph(alpha - 1)
    base = deterministic_mis(power, ids=ids, id_space=id_space)
    return _simulate_on_power(graph, alpha, base, "power-mis")


def randomized_ruling_set(
    graph: Graph, alpha: int, seed: Optional[int] = None
) -> AlgorithmReport:
    """RandLOCAL (α, α-1)-ruling set: Luby's MIS on G^(α-1)."""
    if alpha < 2:
        raise ValueError(f"alpha must be >= 2, got {alpha}")
    power = graph.power_graph(alpha - 1)
    base = luby_mis(power, seed=seed)
    return _simulate_on_power(graph, alpha, base, "power-luby")

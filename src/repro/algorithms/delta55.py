"""Randomized Δ-coloring of trees for constant Δ >= 55 — Theorem 11.

The paper's three-phase algorithm (Section VI.B), designed so that its
analysis needs only polynomial dependence on Δ and works for small
constant Δ (the Theorem 10 machinery needs Δ large):

**Phase 1** (:class:`PeelByMISAlgorithm`): for color i = Δ-1 down to 3
(0-based), every still-uncolored vertex draws x(v) uniformly at random;
the local minima K join an MIS I ⊇ K of the uncolored subgraph, and all
of I takes color i.  Maximality guarantees every surviving vertex gains
one distinctly-colored neighbor per iteration, so at the end each
uncolored vertex has at most 3 uncolored neighbors.  The MIS is
completed from K by a class sweep over a proper (Δ+1)-base-coloring
computed once up front (Linial + reduction; in RandLOCAL the IDs feeding
Linial are drawn at random, as in the proof of Theorem 5).

**Phase 2**: S = uncolored vertices with exactly 3 uncolored neighbors
form, with high probability, connected components of size O(log n)
(shattering, by the local-minima randomness); each component is 3-colored
with the low colors {0, 1, 2} by Theorem 9 in O(log log n) rounds.

**Phase 3** (:class:`GreedyRecolorByClass`): the remaining uncolored
vertices induce a subgraph of maximum degree <= 2; two MIS sweeps split
them into three independent classes, and the classes greedily pick any
available color in three final rounds.  The palette invariant
(#available colors > #uncolored neighbors, maintained by construction
and re-checked at runtime) makes the greedy choice always possible.

Total: O(log_Δ log n + log* n) rounds for any Δ >= 55 — together with
Theorem 10 this covers all constant Δ >= 55, matching the randomized
lower bound of Theorem 4 up to the additive log* n.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

from .drivers import AlgorithmReport, PhaseLog
from .linial import LinialColoring, linial_schedule
from .mis import MISFromColoring
from .rand_tree_coloring import ShatteringStats
from .reduction import KuhnWattenhoferReduction
from .tree_coloring import barenboim_elkin_coloring
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..core.errors import AlgorithmFailure
from ..core.ids import check_unique_ids
from ..graphs.graph import Graph

#: Phase-1 output label for vertices that remain uncolored.
UNCOLORED = -1

#: Smallest Δ the theorem covers.
MIN_DELTA = 55


class PeelByMISAlgorithm(SyncAlgorithm):
    """Phase 1: iterated seeded-MIS peeling.

    Node input:
        ``base_color``: this vertex's color in a proper base coloring.
    Globals:
        ``colors``: the descending list of colors to hand out
        (``[Δ-1, .., 3]``);
        ``base_palette``: size of the base coloring.

    Iteration k occupies ``L = base_palette + 2`` rounds:

    - round ``kL``: uncolored vertices publish ``("x", x_v)``;
    - round ``kL+1``: local minima join the MIS and take the color;
    - round ``kL+2+c``: base-color-class c joins unless a neighbor
      already joined this iteration.

    Colored vertices halt with their color (their publication remains
    readable); survivors output :data:`UNCOLORED`.
    """

    name = "peel-by-mis"

    def setup(self, ctx: NodeContext) -> None:
        ctx.state["iteration"] = 0
        ctx.publish(("u",))
        # Wake at the first bidding round (round 0).
        ctx.sleep_until(0)

    def _block_length(self, ctx: NodeContext) -> int:
        return ctx.globals["base_palette"] + 2

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        colors: Sequence[int] = ctx.globals["colors"]
        L = self._block_length(ctx)
        k = ctx.state["iteration"]
        if k >= len(colors):
            ctx.halt(UNCOLORED)
            return
        offset = ctx.now - k * L
        color = colors[k]
        if offset == 0:
            x = ctx.random.getrandbits(64)
            ctx.state["x"] = x
            ctx.publish(("x", x))
        elif offset == 1:
            neighbor_x = [
                msg[1]
                for msg in inbox
                if isinstance(msg, tuple) and msg[0] == "x"
            ]
            if not neighbor_x or ctx.state["x"] < min(neighbor_x):
                ctx.publish(("colored", color))
                ctx.halt(color)
                return
            ctx.sleep_until(k * L + 2 + ctx.input["base_color"])
        else:
            joined = any(
                isinstance(msg, tuple)
                and msg[0] == "colored"
                and msg[1] == color
                for msg in inbox
            )
            if not joined:
                ctx.publish(("colored", color))
                ctx.halt(color)
                return
            ctx.state["iteration"] = k + 1
            if k + 1 >= len(colors):
                ctx.halt(UNCOLORED)
            else:
                ctx.sleep_until((k + 1) * L)


class GreedyRecolorByClass(SyncAlgorithm):
    """Phase 3 finish: three independent classes pick available colors.

    Node input:
        ``color``: current color, or ``None`` if uncolored;
        ``klass``: 0, 1 or 2 for uncolored vertices (their independent
        class from the two MIS sweeps), ``None`` for colored ones.
    Globals:
        ``palette``: the full palette size Δ.

    Round k recolors class k: the vertex picks the smallest color not
    used by any neighbor.  Classes are independent sets, so simultaneous
    choices never clash; the phase-invariant guarantees availability
    (violations raise as failures — they would falsify Theorem 11).
    """

    name = "greedy-recolor-by-class"

    def setup(self, ctx: NodeContext) -> None:
        color = ctx.input["color"]
        ctx.publish(("color", color))
        if ctx.input["klass"] is None:
            ctx.halt(color)
        else:
            ctx.sleep_until(ctx.input["klass"])

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        palette = ctx.globals["palette"]
        taken = {
            msg[1]
            for msg in inbox
            if isinstance(msg, tuple) and msg[0] == "color"
            and msg[1] is not None
        }
        for c in range(palette):
            if c not in taken:
                ctx.publish(("color", c))
                ctx.halt(c)
                return
        ctx.fail(
            "no available color — the Phase 3 palette invariant failed"
        )


def _random_ids(graph: Graph, rng_seed: Optional[int]) -> List[int]:
    """RandLOCAL ID generation: every vertex draws O(log n) random bits.

    Distinct with probability 1 - 1/poly(n); a collision makes the whole
    algorithm fail (counted into its failure probability, exactly as in
    the paper's Theorem 5 argument).
    """
    import random as _random

    master = _random.Random(rng_seed)
    n = graph.num_vertices
    bits = max(8, 4 * max(1, (max(n, 2) - 1).bit_length()))
    ids = [master.getrandbits(bits) for _ in range(n)]
    if len(set(ids)) != n:
        raise AlgorithmFailure("random IDs collided (probability 1/poly(n))")
    return ids


def chang_kopelowitz_pettie_coloring(
    graph: Graph,
    seed: Optional[int] = None,
    min_delta: int = MIN_DELTA,
    max_rounds: int = 1_000_000,
) -> AlgorithmReport:
    """Theorem 11 driver: RandLOCAL Δ-coloring of a tree, Δ >= 55.

    Set ``min_delta`` lower to *experimentally* probe smaller Δ (the
    paper remarks the problem changes character for very small Δ; the
    theorem's guarantee starts at 55).

    Returns an :class:`AlgorithmReport` whose log carries
    :class:`~repro.algorithms.rand_tree_coloring.ShatteringStats` for
    the Phase 2 set S.
    """
    delta = graph.max_degree
    if delta < min_delta:
        raise ValueError(
            f"Theorem 11 needs Δ >= {min_delta}, got Δ = {delta}"
        )
    n = graph.num_vertices
    log = PhaseLog()
    ids = _random_ids(graph, seed)
    check_unique_ids(ids)
    id_space = 1 << max(1, max(ids).bit_length())

    # Base (Δ+1)-coloring: Linial + Kuhn-Wattenhofer reduction.
    linial_run = log.add(
        "base-linial",
        run_local(
            graph,
            LinialColoring(),
            Model.DET,
            ids=ids,
            global_params={"id_space": id_space},
            max_rounds=max_rounds,
        ),
    )
    linial_palette = linial_schedule(id_space, max(1, delta))[-1]
    base_run = log.add(
        "base-reduction",
        run_local(
            graph,
            KuhnWattenhoferReduction(),
            Model.DET,
            ids=ids,
            node_inputs=[{"color": c} for c in linial_run.outputs],
            global_params={"palette": linial_palette, "target": delta + 1},
            max_rounds=max_rounds,
        ),
    )
    base_colors: List[int] = base_run.outputs

    # Phase 1: iterated seeded-MIS peeling over colors Δ-1 .. 3.
    phase1 = log.add(
        "phase1-peel-by-mis",
        run_local(
            graph,
            PeelByMISAlgorithm(),
            Model.RAND,
            seed=seed,
            node_inputs=[{"base_color": c} for c in base_colors],
            global_params={
                "colors": list(range(delta - 1, 2, -1)),
                "base_palette": delta + 1,
            },
            max_rounds=max_rounds,
        ),
    )
    labeling: List[Optional[int]] = [
        None if c == UNCOLORED else c for c in phase1.outputs
    ]
    log.add_rounds("phase-boundary", 1, messages=2 * graph.num_edges)

    uncolored = {v for v in graph.vertices() if labeling[v] is None}
    u_degree = {
        v: sum(1 for u in graph.neighbors(v) if u in uncolored)
        for v in uncolored
    }
    if any(d > 3 for d in u_degree.values()):
        raise AssertionError(
            "Phase 1 invariant violated: an uncolored vertex has more "
            "than 3 uncolored neighbors"
        )

    # Phase 2: 3-color the exactly-degree-3 set S with colors {0, 1, 2}.
    s_set = sorted(v for v in uncolored if u_degree[v] == 3)
    stats = ShatteringStats(
        bad_vertices=len(s_set), num_components=0, max_component=0
    )
    if s_set:
        s_graph, originals = graph.induced_subgraph(s_set)
        components = s_graph.connected_components()
        stats.num_components = len(components)
        stats.component_sizes = sorted(len(c) for c in components)
        stats.max_component = stats.component_sizes[-1]
        s_report = barenboim_elkin_coloring(s_graph, 3, max_rounds=max_rounds)
        for local_index, color in enumerate(s_report.labeling):
            labeling[originals[local_index]] = color
        for phase in s_report.log.phases:
            log.add_rounds(f"phase2-{phase.name}", phase.rounds, phase.messages)
        uncolored -= set(s_set)

    # Phase 3: remaining uncolored vertices induce max degree <= 2.
    klass: Dict[int, int] = {}
    if uncolored:
        klass = _three_classes(graph, sorted(uncolored), base_colors, log,
                               delta, max_rounds)
    finish = log.add(
        "phase3-greedy-recolor",
        run_local(
            graph,
            GreedyRecolorByClass(),
            Model.RAND,
            seed=None if seed is None else seed + 1,
            node_inputs=[
                {"color": labeling[v], "klass": klass.get(v)}
                for v in graph.vertices()
            ],
            global_params={"palette": delta},
            max_rounds=max_rounds,
        ),
    )
    if finish.failures:
        first = min(finish.failures)
        raise AlgorithmFailure(
            f"Phase 3 failed at {len(finish.failures)} vertices "
            f"(first: vertex {first}: {finish.failures[first]})",
            node=first,
            round=finish.rounds,
        )
    report = AlgorithmReport(finish.outputs, log.total_rounds, log)
    report.log.stats = stats  # type: ignore[attr-defined]
    return report


def _three_classes(
    graph: Graph,
    uncolored: List[int],
    base_colors: Sequence[int],
    log: PhaseLog,
    delta: int,
    max_rounds: int,
) -> Dict[int, int]:
    """Split the residual (max degree <= 2) uncolored subgraph into three
    independent classes via two deterministic MIS sweeps."""
    sub, originals = graph.induced_subgraph(uncolored)
    sub_colors = [base_colors[v] for v in originals]
    mis1 = log.add(
        "phase3-mis-1",
        run_local(
            sub,
            MISFromColoring(),
            Model.DET,
            node_inputs=[{"color": c} for c in sub_colors],
            global_params={"palette": delta + 1},
            max_rounds=max_rounds,
        ),
    )
    klass: Dict[int, int] = {}
    second = [i for i, label in enumerate(mis1.outputs) if label == 0]
    for i, label in enumerate(mis1.outputs):
        if label == 1:
            klass[originals[i]] = 0
    if second:
        sub2, originals2 = sub.induced_subgraph(second)
        mis2 = log.add(
            "phase3-mis-2",
            run_local(
                sub2,
                MISFromColoring(),
                Model.DET,
                node_inputs=[{"color": sub_colors[i]} for i in originals2],
                global_params={"palette": delta + 1},
                max_rounds=max_rounds,
            ),
        )
        for j, label in enumerate(mis2.outputs):
            klass[originals[originals2[j]]] = 1 if label == 1 else 2
    # Sanity: class 2 must be independent (max degree <= 2 argument).
    class2 = {v for v, c in klass.items() if c == 2}
    for v in class2:
        for u in graph.neighbors(v):
            if u in class2:
                raise AssertionError(
                    "Phase 3 residual class was not independent — the "
                    "degree <= 2 invariant failed"
                )
    return klass

"""Color-reduction subroutines.

Standard toolbox results the paper's algorithms lean on:

- :class:`ClassByClassReduction` — from a proper ``m``-coloring to a
  proper ``target``-coloring in ``m - target`` rounds, provided every
  vertex always has a free color (``target >= Δ + 1``, or a stronger
  structural guarantee supplied by the caller).  One color class
  recolors per round, so simultaneous recolorers are never adjacent.
- :class:`KuhnWattenhoferReduction` — the divide-and-conquer variant:
  split the palette into blocks of ``2 * target`` colors, reduce every
  block to ``target`` colors *in parallel* (blocks map to disjoint
  target ranges, so cross-block edges stay proper), roughly halving the
  palette every ``target`` rounds; total ``O(target · log(m / target))``
  rounds.  Used as the fast path and as an ablation against the classic
  reduction (bench E2/E3 ablations).

Both run in DetLOCAL or RandLOCAL alike (they use no IDs and no
randomness — the input coloring carries all the symmetry breaking), and
both support restricting attention to a subset of ports
(``active_ports`` node input) so a caller can reduce a coloring *within
a subgraph* — e.g. within one layer of Theorem 9's H-partition — while
running on the full communication graph.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import NodeContext


def _relevant(ctx: NodeContext, inbox: Inbox) -> List:
    """Inbox entries on the vertex's active ports (all by default)."""
    ports: Optional[Sequence[int]] = ctx.input.get("active_ports")
    if ports is None:
        return list(inbox)
    return [inbox[p] for p in ports]


class ClassByClassReduction(SyncAlgorithm):
    """Reduce a proper coloring to ``target`` colors, one class per round.

    Node input:
        ``color``: this vertex's current color in ``0 .. m-1``;
        ``active_ports`` (optional): ports whose edges constrain the
        recoloring (defaults to all — required if the guarantee
        ``target >= degree + 1`` only holds on a subgraph).
    Globals:
        ``palette``: m, the input palette size (common knowledge);
        ``target``: the output palette size.

    Round ``j`` processes color class ``m - 1 - j``; a processed vertex
    picks the smallest color in ``0 .. target-1`` unused by any relevant
    neighbor and halts.  Vertices whose input color is already below
    ``target`` halt immediately.
    """

    name = "class-by-class-reduction"

    def setup(self, ctx: NodeContext) -> None:
        color = ctx.input["color"]
        m = ctx.globals["palette"]
        target = ctx.globals["target"]
        ctx.state["color"] = color
        ctx.publish(color)
        if color < target:
            ctx.halt(color)
        else:
            ctx.sleep_until(m - 1 - color)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        target = ctx.globals["target"]
        taken = set(_relevant(ctx, inbox))
        new_color = _smallest_free(taken, target)
        ctx.state["color"] = new_color
        ctx.publish(new_color)
        ctx.halt(new_color)


class KuhnWattenhoferReduction(SyncAlgorithm):
    """Palette-halving reduction: ``m -> target`` colors in
    ``O(target · log(m / target))`` rounds.

    Same inputs/globals as :class:`ClassByClassReduction` (the free-color
    guarantee is ``target >= (relevant degree) + 1``).  Colors are worked
    on as ``(block, offset)`` pairs with ``block = color // (2·target)``;
    within a block, offsets ``2·target-1 .. target`` recolor greedily one
    per round into ``0 .. target-1`` (cross-block edges can never clash
    because final stage colors are ``block · target + offset``).  Each
    stage takes ``target`` rounds and shrinks the palette from ``m`` to
    ``ceil(m / 2·target) · target``.
    """

    name = "kuhn-wattenhofer-reduction"

    def setup(self, ctx: NodeContext) -> None:
        color = ctx.input["color"]
        target = ctx.globals["target"]
        ctx.state["stages"] = _kw_stage_plan(ctx.globals["palette"], target)
        ctx.state["stage_index"] = 0
        if not ctx.state["stages"]:
            ctx.state["color"] = color
            ctx.publish(color)
            ctx.halt(color)
            return
        block, offset = divmod(color, 2 * target)
        ctx.state["pair"] = (block, offset)
        ctx.publish(ctx.state["pair"])
        ctx.sleep_until(self._next_wake(ctx))

    def _next_wake(self, ctx: NodeContext) -> int:
        """First round at which this vertex must act in its stage:
        its recolor round (offset >= target only) or the stage-end
        round, whichever comes first."""
        target = ctx.globals["target"]
        si = ctx.state["stage_index"]
        start = si * target
        end = start + target - 1
        __, offset = ctx.state["pair"]
        if offset >= target:
            return min(start + (2 * target - 1 - offset), end)
        return end

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        target = ctx.globals["target"]
        stages: List[int] = ctx.state["stages"]
        si = ctx.state["stage_index"]
        start = si * target
        block, offset = ctx.state["pair"]
        if offset >= target and ctx.now == start + (2 * target - 1 - offset):
            taken = {
                pair[1]
                for pair in _relevant(ctx, inbox)
                if isinstance(pair, tuple) and pair[0] == block
            }
            offset = _smallest_free(taken, target)
            ctx.state["pair"] = (block, offset)
            ctx.publish(ctx.state["pair"])
        if ctx.now == start + target - 1:
            # Stage complete: collapse the pair into the halved palette
            # and either halt or re-split for the next stage.
            color = block * target + offset
            if si + 1 >= len(stages):
                ctx.state["color"] = color
                ctx.publish(color)
                ctx.halt(color)
                return
            ctx.state["stage_index"] = si + 1
            block, offset = divmod(color, 2 * target)
            ctx.state["pair"] = (block, offset)
            ctx.publish(ctx.state["pair"])
        ctx.sleep_until(self._next_wake(ctx))


def _kw_stage_plan(palette: int, target: int) -> List[int]:
    """Palette size at the start of each stage, until <= target."""
    if target < 1:
        raise ValueError(f"target must be >= 1, got {target}")
    stages = []
    m = palette
    while m > target:
        stages.append(m)
        blocks = (m + 2 * target - 1) // (2 * target)
        m = blocks * target
        if stages and len(stages) > 1 and m >= stages[-2]:
            raise AssertionError(
                f"palette not shrinking ({stages[-2]} -> {m}); "
                f"target {target} too close to palette"
            )
        if len(stages) > 10_000:
            raise AssertionError("stage plan did not converge")
    return stages


def _smallest_free(taken: set, end: int, start: int = 0) -> int:
    """Smallest color in ``[start, end)`` not in ``taken``."""
    for c in range(start, end):
        if c not in taken:
            return c
    raise AssertionError(
        "no free color — caller violated the palette/degree precondition"
    )
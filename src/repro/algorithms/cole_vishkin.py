"""Cole–Vishkin 3-coloring of oriented rings and paths.

The classic O(log* n) symmetry-breaking algorithm, included both as the
canonical Δ = 2 upper bound (Theorem 7: every LCL on paths/cycles is
either O(log* n) or Ω(n) in DetLOCAL) and as the baseline that Linial's
Ω(log* n) lower bound (which Naor extended to RandLOCAL) shows optimal.

The bit trick: on a consistently oriented ring, vertex v with color c(v)
compares itself with its successor s(v): let i be the lowest bit index
where ``c(v)`` and ``c(s(v))`` differ and b that bit of ``c(v)``; the new
color ``2i + b`` differs from the successor's new color.  Iterating
shrinks k-bit colors to ~log k bits, reaching the 6-color fixed point in
log* n iterations; three final class-removal rounds finish at 3 colors.

The orientation (each vertex's successor port) is an *input*: on an
unoriented cycle finding one is itself a symmetry-breaking problem.  Use
:func:`ring_orientation_inputs` to build it for generator-made cycles.
"""

from __future__ import annotations

from typing import List

from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import NodeContext
from ..graphs.graph import Graph


def cv_step(color: int, successor_color: int) -> int:
    """One Cole–Vishkin bit-reduction step."""
    if color == successor_color:
        raise ValueError("Cole-Vishkin needs a proper input coloring")
    diff = color ^ successor_color
    i = (diff & -diff).bit_length() - 1  # lowest differing bit index
    b = (color >> i) & 1
    return 2 * i + b


def cv_schedule(k0: int) -> List[int]:
    """Palette sizes of iterated CV steps from ``k0`` until the 6-color
    fixed point (computable locally by every vertex)."""
    schedule = [k0]
    while schedule[-1] > 6:
        bits = max(1, (schedule[-1] - 1).bit_length())
        schedule.append(2 * bits)
    return schedule


class ColeVishkinColoring(SyncAlgorithm):
    """DetLOCAL 3-coloring of consistently oriented rings/paths.

    Node input:
        ``successor_port``: the port toward the successor, or ``None``
        for the last vertex of a path (it mirrors its predecessor's
        schedule with a self-fallback).
    Globals:
        ``id_space`` (optional): initial palette bound.

    Runs ``log*`` CV iterations to 6 colors, then 3 class-removal rounds
    (colors 5, 4, 3 recolor into {0, 1, 2}, legal since degree <= 2).
    """

    name = "cole-vishkin"

    def setup(self, ctx: NodeContext) -> None:
        k0 = ctx.globals.get("id_space")
        if k0 is None:
            k0 = 1 << max(1, (ctx.n - 1).bit_length())
        ctx.state["schedule"] = cv_schedule(k0)
        ctx.state["color"] = ctx.id
        ctx.state["round"] = 0
        ctx.publish(ctx.id)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        schedule = ctx.state["schedule"]
        i = ctx.state["round"]
        ctx.state["round"] = i + 1
        reduction_rounds = len(schedule) - 1
        if i < reduction_rounds:
            succ = ctx.input["successor_port"]
            if succ is None:
                # Path endpoint without successor: fold against a
                # constant that always differs (flip the lowest bit).
                other = ctx.state["color"] ^ 1
            else:
                other = inbox[succ]
            ctx.state["color"] = cv_step(ctx.state["color"], other)
            ctx.publish(ctx.state["color"])
            return
        # Class-removal phase: rounds process colors 5, 4, 3.
        processed = 5 - (i - reduction_rounds)
        if ctx.state["color"] == processed:
            taken = {x for x in inbox if isinstance(x, int)}
            for c in range(3):
                if c not in taken:
                    ctx.state["color"] = c
                    break
            ctx.publish(ctx.state["color"])
        if processed == 3:
            ctx.halt(ctx.state["color"])


class ColeVishkinTreeColoring(SyncAlgorithm):
    """DetLOCAL 3-coloring of rooted trees in O(log* n) rounds.

    Node input:
        ``successor_port``: port toward the parent (``None`` at roots),
        as built by :func:`rooted_tree_orientation_inputs`.

    The CV bit-reduction phase is identical to the ring version (each
    vertex folds against its parent).  The 6 -> 3 finish, however, must
    handle unbounded degree: each removal round is preceded by a
    *shift-down* (every vertex adopts its parent's color; roots rotate
    to a fresh color), after which all children of any vertex share one
    color, so a recoloring vertex faces at most two distinct neighbor
    colors and {0, 1, 2} always has a free one.
    """

    name = "cole-vishkin-tree"

    def setup(self, ctx: NodeContext) -> None:
        k0 = ctx.globals.get("id_space")
        if k0 is None:
            k0 = 1 << max(1, (ctx.n - 1).bit_length())
        ctx.state["schedule"] = cv_schedule(k0)
        ctx.state["color"] = ctx.id
        ctx.publish(ctx.id)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        schedule = ctx.state["schedule"]
        reduction_rounds = len(schedule) - 1
        i = ctx.now
        parent_port = ctx.input["successor_port"]
        if i < reduction_rounds:
            if parent_port is None:
                other = ctx.state["color"] ^ 1
            else:
                other = inbox[parent_port]
            ctx.state["color"] = cv_step(ctx.state["color"], other)
            ctx.publish(ctx.state["color"])
            return
        # Finish: pairs of (shift-down, remove class 5/4/3) rounds.
        offset = i - reduction_rounds
        pair, phase = divmod(offset, 2)
        if phase == 0:
            # Shift-down: adopt the parent's color.  Roots switch to a
            # low color different from their current one — staying in
            # {0, 1, 2} never reintroduces an already-removed class.
            if parent_port is None:
                old = ctx.state["color"]
                ctx.state["color"] = next(
                    c for c in range(3) if c != old
                )
            else:
                ctx.state["color"] = inbox[parent_port]
            ctx.publish(ctx.state["color"])
            return
        processed = 5 - pair
        if ctx.state["color"] == processed:
            taken = set()
            if parent_port is not None:
                taken.add(inbox[parent_port])
            for p in ctx.ports:
                if p != parent_port:
                    taken.add(inbox[p])  # all children share one color
            for c in range(3):
                if c not in taken:
                    ctx.state["color"] = c
                    break
            ctx.publish(ctx.state["color"])
        if processed == 3:
            ctx.halt(ctx.state["color"])


def ring_orientation_inputs(graph: Graph) -> List[dict]:
    """Successor ports giving a consistent orientation of each cycle or
    path component (a *promise* input, as in the oriented-ring model).

    For cycles the successor follows one fixed traversal direction; for
    paths the orientation runs from one endpoint to the other, the last
    vertex getting ``successor_port = None``.
    """
    n = graph.num_vertices
    inputs: List[dict] = [{"successor_port": None} for _ in range(n)]
    seen = [False] * n
    for start in graph.vertices():
        if seen[start] or graph.degree(start) == 0:
            seen[start] = True
            continue
        if graph.degree(start) > 2:
            raise ValueError("orientation inputs need a path/cycle graph")
        if seen[start]:
            continue
        # Walk from an endpoint if one exists (path), else anywhere.
        origin = start
        component = _collect_component(graph, start)
        endpoints = [v for v in component if graph.degree(v) == 1]
        if endpoints:
            origin = min(endpoints)
        prev = -1
        v = origin
        while True:
            seen[v] = True
            nxt_port = None
            for p, u in enumerate(graph.neighbors(v)):
                if u != prev:
                    nxt_port = p
                    break
            if nxt_port is None:  # path end
                inputs[v] = {"successor_port": None}
                break
            u = graph.endpoint(v, nxt_port)
            if seen[u] and u != origin:
                inputs[v] = {"successor_port": None}
                break
            inputs[v] = {"successor_port": nxt_port}
            if u == origin:  # cycle closed
                break
            prev, v = v, u
    return inputs


def rooted_tree_orientation_inputs(graph: Graph, root: int = 0) -> List[dict]:
    """Successor ports for a rooted tree: every vertex points at its
    parent (the root gets ``None``).

    Cole–Vishkin needs only a *successor function* with no 2-cycles in
    the "compare with successor" relation; parent pointers qualify, so
    the same bit trick 3-colors rooted trees of any degree in
    O(log* n) rounds — the classic generalization.
    """
    if not graph.is_forest():
        raise ValueError("rooted orientation needs a forest")
    n = graph.num_vertices
    inputs: List[dict] = [{"successor_port": None} for _ in range(n)]
    seen = [False] * n
    for start in [root] + list(range(n)):
        if seen[start]:
            continue
        seen[start] = True
        queue = [start]
        while queue:
            v = queue.pop()
            for p, u in enumerate(graph.neighbors(v)):
                if not seen[u]:
                    seen[u] = True
                    inputs[u] = {
                        "successor_port": graph.reverse_port(v, p)
                    }
                    queue.append(u)
    return inputs


def _collect_component(graph: Graph, start: int) -> List[int]:
    out = [start]
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            if u not in seen:
                seen.add(u)
                out.append(u)
                stack.append(u)
    return out

"""Maximal matching algorithms (survey problems of Section I).

- :class:`RandomizedMatching` — Israeli–Itai-style RandLOCAL algorithm:
  every iteration, vertices flip proposer/acceptor coins, proposers pick
  a random still-active neighbor, acceptors accept one proposal; matched
  pairs retire.  A constant fraction of active edges disappears per
  iteration in expectation, so O(log n) iterations suffice whp.
- :class:`MatchingFromColoring` — DetLOCAL: classes of a proper coloring
  take turns; in its turn a vertex proposes to each still-unmatched
  neighbor port by port, and proposees always accept somebody, so after
  a class's turn all its members are matched or fully blocked.  Combined
  with Linial + reduction this is O(Δ²)-round-ish deterministic maximal
  matching — the O(Δ + log* n) of [12] is fancier but has the same
  n-dependence, which is what the experiments compare.

Labels follow :class:`repro.lcl.matching.MaximalMatching`: the matched
port, or ``None``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .drivers import AlgorithmReport, PhaseLog
from .linial import LinialColoring, linial_schedule
from .reduction import KuhnWattenhoferReduction
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..graphs.graph import Graph


class RandomizedMatching(SyncAlgorithm):
    """RandLOCAL maximal matching by random proposals.

    Three rounds per iteration: coin+propose / accept / confirm.
    Messages use the receiver-port addressing helper pattern: a proposal
    to the neighbor on port p is published as ``("propose", q)`` where
    ``q`` is the reverse port, so the receiver recognizes proposals
    aimed at itself.
    """

    name = "randomized-matching"

    def setup(self, ctx: NodeContext) -> None:
        ctx.state["phase"] = "propose"
        ctx.state["active_ports"] = set(ctx.ports)
        ctx.publish(("idle",))
        if ctx.degree == 0:
            ctx.halt(None)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        phase = ctx.state["phase"]
        if phase == "propose":
            self._propose(ctx, inbox)
        elif phase == "accept":
            self._accept(ctx, inbox)
        else:
            self._confirm(ctx, inbox)

    def _prune(self, ctx: NodeContext, inbox: Inbox) -> None:
        active = ctx.state["active_ports"]
        for p in list(active):
            msg = inbox[p]
            if isinstance(msg, tuple) and msg[0] == "matched":
                active.discard(p)

    def _propose(self, ctx: NodeContext, inbox: Inbox) -> None:
        self._prune(ctx, inbox)
        active = ctx.state["active_ports"]
        if not active:
            ctx.publish(("matched",))  # nothing left: retire unmatched
            ctx.halt(None)
            return
        if ctx.random.random() < 0.5:
            ports = sorted(active)
            p = ports[ctx.random.randrange(len(ports))]
            ctx.state["proposal_port"] = p
            ctx.publish(("propose", p))
        else:
            ctx.state["proposal_port"] = None
            ctx.publish(("idle",))
        ctx.state["phase"] = "accept"

    def _accept(self, ctx: NodeContext, inbox: Inbox) -> None:
        ctx.state["phase"] = "confirm"
        if ctx.state["proposal_port"] is not None:
            # Proposers wait for the verdict next round.
            ctx.publish(("idle",))
            return
        reverse_ports = ctx.input["reverse_ports"]
        proposers = [
            p
            for p in ctx.state["active_ports"]
            if isinstance(inbox[p], tuple)
            and inbox[p][0] == "propose"
            and inbox[p][1] == reverse_ports[p]
        ]
        if proposers:
            chosen = min(proposers)
            ctx.state["accepted_port"] = chosen
            ctx.publish(("accept", chosen))
        else:
            ctx.publish(("idle",))

    def _confirm(self, ctx: NodeContext, inbox: Inbox) -> None:
        ctx.state["phase"] = "propose"
        accepted = ctx.state.pop("accepted_port", None)
        if accepted is not None:
            # We accepted a proposal: matched.
            ctx.publish(("matched",))
            ctx.halt(accepted)
            return
        p = ctx.state.get("proposal_port")
        if p is not None:
            msg = inbox[p]
            if (
                isinstance(msg, tuple)
                and msg[0] == "accept"
                and msg[1] == ctx.input["reverse_ports"][p]
            ):
                ctx.publish(("matched",))
                ctx.halt(p)
                return
        ctx.publish(("idle",))


class MatchingFromColoring(SyncAlgorithm):
    """DetLOCAL maximal matching by color-class turns.

    Node input:
        ``color``: color in a proper ``m``-coloring.
    Globals:
        ``palette``: m.

    Class c owns the 2Δ rounds ``[c·2Δ, (c+1)·2Δ)``; in sub-slot k its
    unmatched members propose to the neighbor on port k if that neighbor
    looks unmatched, and any unmatched vertex accepts its lowest
    proposing port.  Unlike the randomized variant, acceptance is
    immediate: the proposer reads the verdict in the following round.
    """

    name = "matching-from-coloring"

    def setup(self, ctx: NodeContext) -> None:
        ctx.state["matched"] = None
        ctx.publish(("free",))
        if ctx.degree == 0:
            ctx.halt(None)

    def _slot(self, ctx: NodeContext) -> tuple:
        width = 2 * max(1, ctx.max_degree)
        color = ctx.input["color"]
        block_start = color * width
        return width, color, block_start

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        width, color, block_start = self._slot(ctx)
        now = ctx.now
        my_turn = block_start <= now < block_start + width
        # --- verdict on our outstanding proposal comes first: if it was
        # accepted we are already matched and must not accept others.
        # The verdict lands two rounds after the proposal (propose at r,
        # the acceptor reads and answers at r+1, we read it at r+2). ---
        pending = ctx.state.get("pending_port")
        if pending is not None and now >= ctx.state["pending_round"]:
            ctx.state.pop("pending_port")
            msg = inbox[pending]
            if (
                isinstance(msg, tuple)
                and msg[0] == "accept"
                and msg[1] == ctx.input["reverse_ports"][pending]
            ):
                ctx.publish(("matched",))
                ctx.halt(pending)
                return
            pending = None
        # --- acceptance duty happens every round, regardless of turn ---
        reverse_ports = ctx.input["reverse_ports"]
        proposers = [
            p
            for p in ctx.ports
            if isinstance(inbox[p], tuple)
            and inbox[p][0] == "propose"
            and inbox[p][1] == reverse_ports[p]
        ]
        if proposers:
            chosen = min(proposers)
            ctx.publish(("accept", chosen))
            ctx.halt(chosen)
            return
        # --- our class's proposing slots ---
        if my_turn:
            offset = now - block_start
            slot, phase = divmod(offset, 2)
            if phase == 0 and slot < ctx.degree:
                msg = inbox[slot]
                neighbor_free = not (
                    isinstance(msg, tuple)
                    and msg[0] in ("matched", "accept")
                )
                if neighbor_free:
                    ctx.state["pending_port"] = slot
                    ctx.state["pending_round"] = now + 2
                    # The proposal slot is round arithmetic over the
                    # color-block schedule, which every vertex computes
                    # identically from common knowledge (palette, Δ).
                    ctx.publish(("propose", slot))  # repro: ignore[LM006]
                    return
            ctx.publish(("free",))
            return
        if now >= ctx.globals["palette"] * width:
            ctx.halt(None)
            return
        ctx.publish(("free",))


def randomized_matching(
    graph: Graph, seed: Optional[int] = None, max_rounds: int = 100_000
) -> AlgorithmReport:
    """Run the RandLOCAL matching; labeling follows the matching LCL."""
    log = PhaseLog()
    run = log.add(
        "randomized-matching",
        run_local(
            graph,
            RandomizedMatching(),
            Model.RAND,
            seed=seed,
            max_rounds=max_rounds,
        ),
    )
    return AlgorithmReport(run.outputs, log.total_rounds, log)


def deterministic_matching(
    graph: Graph,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
    max_rounds: int = 100_000,
) -> AlgorithmReport:
    """DetLOCAL maximal matching: Linial -> (Δ+1)-reduction -> turns."""
    n = graph.num_vertices
    if id_space is None:
        id_space = 1 << max(1, (max(n, 2) - 1).bit_length())
    log = PhaseLog()
    linial_run = log.add(
        "linial-coloring",
        run_local(
            graph,
            LinialColoring(),
            Model.DET,
            ids=ids,
            global_params={"id_space": id_space},
            max_rounds=max_rounds,
        ),
    )
    delta = graph.max_degree
    palette = linial_schedule(id_space, max(1, delta))[-1]
    target = delta + 1
    reduced = log.add(
        "palette-reduction",
        run_local(
            graph,
            KuhnWattenhoferReduction(),
            Model.DET,
            ids=ids,
            node_inputs=[{"color": c} for c in linial_run.outputs],
            global_params={"palette": palette, "target": target},
            max_rounds=max_rounds,
        ),
    )
    match_run = log.add(
        "class-turns",
        run_local(
            graph,
            MatchingFromColoring(),
            Model.DET,
            ids=ids,
            node_inputs=[{"color": c} for c in reduced.outputs],
            global_params={"palette": target},
            max_rounds=max_rounds,
        ),
    )
    return AlgorithmReport(match_run.outputs, log.total_rounds, log)
"""Vectorized round kernels for the ``"vectorized"`` backend.

Each kernel reimplements one shipped algorithm's ``setup``/``step`` as
whole-graph array operations (see :mod:`repro.backends.vectorized` for
the harness and the kernel contract).  The cardinal rule is
*bit-identity with the scalar engines*:

- published state lives in per-vertex arrays and is only scattered
  after all gathers of a round (double buffering);
- RandLOCAL kernels draw from the very same per-vertex
  ``random.Random`` streams, in the same per-vertex order, as the
  scalar ``setup``/``step`` code — e.g. the ColorBidding bid round
  iterates each vertex's remaining palette in ascending color order on
  both paths;
- palettes and bids are encoded as int64 bitmasks, which caps the
  supported main palette at 62 colors — far above the Δ ≤ 16 regime of
  the experiments; larger instances transparently fall back.

Registered kernels: ColorBidding (Theorem 10 Phase 1), Linial and
oriented Linial (Theorems 1/2, the O(log* n) stages), H-partition
peeling and the layer sweep (Theorem 9 stages 1 and 5).  The remaining
drivers (Kuhn–Wattenhofer reduction, MIS, sinkless orientation, ...)
run through the per-node fallback — registering a kernel here is all
it takes to accelerate one.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .linial import (
    LinialColoring,
    OrientedLinialColoring,
    choose_cover_free_params,
    linial_schedule,
)
from .rand_tree_coloring import BAD, ColorBiddingAlgorithm
from .tree_coloring import LayerSweepColoring, PeelingAlgorithm
from ..backends.vectorized import (
    RoundKernel,
    VectorRun,
    edge_slices,
    popcount,
    register_kernel,
    segment_or,
)
from ..core.algorithm import SyncAlgorithm
from ..core.context import Model
from ..obs.metrics import estimate_payload_bytes

#: Palette/bid bitmasks are int64: 62 usable color bits (sign-safe).
MAX_MASK_COLORS = 62

_ONE = np.int64(1)


def _lowest_set_bit_index(masks: np.ndarray) -> np.ndarray:
    """Index of the lowest set bit of each (non-zero, positive) mask."""
    low = masks & -masks
    return popcount(low - _ONE)


def _mask_to_set(mask: int) -> set:
    """The color set a bid bitmask encodes (matches the scalar bid)."""
    out = set()
    while mask:
        low = mask & -mask
        out.add(low.bit_length() - 1)
        mask ^= low
    return out


# ---------------------------------------------------------------------------
# ColorBidding (Theorem 10, Phase 1)
# ---------------------------------------------------------------------------

_KIND_BID = 0
_KIND_STILL = 1
_KIND_COLORED = 2
_KIND_BAD = 3


@register_kernel(ColorBiddingAlgorithm)
class ColorBiddingKernel(RoundKernel):
    """Vectorized ColorBidding + Filtering.

    State layout (n vertices, 2m CSR edge slots):

    - ``palette``: int64 bitmask of Ψ_i(v);
    - ``pub_kind`` / ``pub_bid`` / ``pub_color``: the published value,
      split by message kind (bid mask, chosen color);
    - ``part``: per-edge-slot bool — is the port's neighbor still a
      participating competitor;
    - ``phase`` / ``iteration``: global scalars (every live vertex is
      in the same phase of the same iteration by construction).

    A *bid* round draws ``S_v`` per vertex from the vertex's own
    ``random.Random`` stream (ascending palette order, matching the
    scalar code exactly), a *resolve* round computes the neighbor-bid
    union as a segment OR and halts the winners, and the *filter*
    checks are per-vertex popcount arithmetic on the masks.

    Crash-safe: ``pub_kind``/``pub_bid``/``pub_color`` and the ``part``
    slots are scattered only for stepping vertices, so a crashed
    competitor keeps publishing its frozen message.
    """

    handles_crashes = True

    def __init__(self, run: VectorRun, algorithm: SyncAlgorithm) -> None:
        super().__init__(run, algorithm)
        config = run.globals["config"]
        self.delta = run.max_degree
        self.schedule: List[float] = config.escalation_schedule(self.delta)
        self.guard: float = self.delta / config.palette_guard
        self.main_palette: int = run.globals["main_palette"]
        n = run.n
        full = (_ONE << np.int64(self.main_palette)) - _ONE
        self.palette = np.full(n, full, dtype=np.int64)
        self.pub_kind = np.full(n, _KIND_BID, dtype=np.int8)
        self.pub_bid = np.zeros(n, dtype=np.int64)
        self.pub_color = np.zeros(n, dtype=np.int64)
        self.part = np.ones(run.targets.size, dtype=bool)
        self.iteration = 0
        self.phase = "resolve"
        # Per-vertex draw budget: ≤ 2·|Ψ| words per bernoulli bid round
        # plus the uniform round's rejection-loop tail.
        self.rng_words = 2 * self.main_palette * len(self.schedule) + 32

    @classmethod
    def supports(cls, algorithm: SyncAlgorithm, run: VectorRun) -> bool:
        if run.model is not Model.RAND or run.rng_factory is not None:
            return False
        main_palette = run.globals.get("main_palette")
        config = run.globals.get("config")
        return (
            config is not None
            and isinstance(main_palette, int)
            and 1 <= main_palette <= MAX_MASK_COLORS
            and run.max_degree >= 1
        )

    def setup(self) -> None:
        everyone = np.arange(self.run.n, dtype=np.int64)
        self._publish_bid(everyone, 0)

    def step(self, awake: np.ndarray, round_index: int) -> None:
        if self.phase == "resolve":
            self._resolve(awake)
        else:
            self._filter_and_rebid(awake)

    def _resolve(self, awake: np.ndarray) -> None:
        run = self.run
        e, seg, _ = edge_slices(run.offsets, awake)
        neighbor = run.targets[e]
        competing = self.part[e] & (self.pub_kind[neighbor] == _KIND_BID)
        contrib = np.where(competing, self.pub_bid[neighbor], 0)
        neighbor_bids = segment_or(contrib, seg)
        free = self.pub_bid[awake] & ~neighbor_bids
        won = free != 0
        winners = awake[won]
        colors = _lowest_set_bit_index(free[won])
        self.phase = "bid"
        # Scatter after the gather above: double buffering.
        self.pub_kind[winners] = _KIND_COLORED
        self.pub_color[winners] = colors
        run.record_publish(
            winners,
            payload_bytes=10,  # estimate_payload_bytes(("colored", c<62))
            values_fn=lambda: [("colored", c) for c in colors.tolist()],
        )
        run.halt(winners, colors)
        self.pub_kind[awake[~won]] = _KIND_STILL
        run.record_publish(
            awake[~won], value_const=("still",), payload_bytes=7
        )

    def _filter_and_rebid(self, awake: np.ndarray) -> None:
        run = self.run
        e, seg, ptr = edge_slices(run.offsets, awake)
        neighbor = run.targets[e]
        participating = self.part[e]
        kind = self.pub_kind[neighbor]
        colored = participating & (kind == _KIND_COLORED)
        removed = np.where(
            colored,
            np.left_shift(
                _ONE, np.where(colored, self.pub_color[neighbor], 0)
            ),
            np.int64(0),
        )
        self.palette[awake] &= ~segment_or(removed, seg)
        still = participating & (kind == _KIND_STILL)
        self.part[e] = still
        still_count = np.bincount(ptr[still], minlength=awake.size)
        i = self.iteration  # the iteration just resolved
        self.iteration = i + 1
        bad = np.zeros(awake.size, dtype=bool)
        if i == 0:
            palette_size = popcount(self.palette[awake])
            bad = (palette_size - still_count) < self.guard
        elif i + 1 < len(self.schedule):
            bad = still_count > self.delta / self.schedule[i + 1]
        self._mark_bad(awake[bad])
        self._publish_bid(awake[~bad], i + 1)

    def _mark_bad(self, verts: np.ndarray) -> None:
        self.pub_kind[verts] = _KIND_BAD
        self.run.record_publish(
            verts, value_const=("bad",), payload_bytes=5
        )
        self.run.halt(verts, np.full(verts.size, BAD, dtype=np.int64))

    def _publish_bid(self, verts: np.ndarray, iteration: int) -> None:
        """Vectorized ``_publish_bid`` for the vertex subset ``verts``."""
        self.phase = "resolve"
        if iteration >= len(self.schedule):
            # Filtering(t): every still-uncolored vertex is bad.
            self._mark_bad(verts)
            return
        palettes = self.palette[verts]
        sizes = popcount(palettes)
        small = sizes < self.guard  # invariant P1 endangered
        self._mark_bad(verts[small])
        bidders = verts[~small]
        if not bidders.size:
            return
        palettes = palettes[~small]
        sizes = sizes[~small]
        c_i = self.schedule[iteration]
        if c_i <= 1.0:
            bids = self._draw_uniform(bidders, palettes, sizes)
        else:
            bids = self._draw_bernoulli(bidders, palettes, sizes, c_i)
        self.pub_kind[bidders] = _KIND_BID
        self.pub_bid[bidders] = bids
        # estimate_payload_bytes(("bid", S)) = 7 + |S| for colors < 256:
        # byte accounting stays pure mask arithmetic, the Python sets
        # are only built if an observer wants materialized values.
        self.run.record_publish(
            bidders,
            payload_bytes=popcount(bids) + 7,
            values_fn=lambda: [
                ("bid", _mask_to_set(m)) for m in bids.tolist()
            ],
        )

    def _draw_uniform(
        self,
        verts: np.ndarray,
        palettes: np.ndarray,
        sizes: np.ndarray,
    ) -> np.ndarray:
        """``c_i <= 1``: one uniform color per vertex — a single
        ``randrange(|Ψ|)`` per vertex, exactly like the scalar code
        (including the ValueError on an empty palette)."""
        picks = self.run.vector_rng(self.rng_words).randrange(verts, sizes)
        # The pick indexes the sorted palette: select each mask's
        # pick-th set bit by ascending rank.
        bids = np.zeros(verts.size, dtype=np.int64)
        rank = np.zeros(verts.size, dtype=np.int64)
        for bit in range(self.main_palette):
            has = (palettes >> np.int64(bit)) & _ONE
            chosen = (has == 1) & (rank == picks)
            bids[chosen] = _ONE << np.int64(bit)
            rank += has
        return bids

    def _draw_bernoulli(
        self,
        verts: np.ndarray,
        palettes: np.ndarray,
        sizes: np.ndarray,
        c_i: float,
    ) -> np.ndarray:
        """``c_i > 1``: each palette color independently with
        probability ``c_i / |Ψ|`` — one ``rng.random()`` per palette
        color in ascending color order, exactly like the scalar code."""
        if (sizes == 0).any():
            # p = c_i / |Ψ| on the scalar path.
            raise ZeroDivisionError("float division by zero")
        probs = np.minimum(1.0, c_i / sizes)
        seg_off = np.zeros(verts.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=seg_off[1:])
        total = int(seg_off[-1])
        rolls = self.run.vector_rng(self.rng_words).random_runs(verts, sizes)
        assert rolls.size == total
        # Flat ascending color positions of every set palette bit.
        colors = np.empty(total, dtype=np.int64)
        filled = np.zeros(verts.size, dtype=np.int64)
        for bit in range(self.main_palette):
            has = ((palettes >> np.int64(bit)) & _ONE).astype(bool)
            if not has.any():
                continue
            colors[seg_off[:-1][has] + filled[has]] = bit
            filled[has] += 1
        ptr = np.repeat(
            np.arange(verts.size, dtype=np.int64), sizes
        )
        included = rolls < probs[ptr]
        contrib = np.where(
            included, np.left_shift(_ONE, colors), np.int64(0)
        )
        return segment_or(contrib, seg_off)


# ---------------------------------------------------------------------------
# Linial recoloring (Theorems 1 and 2)
# ---------------------------------------------------------------------------


class _LinialKernelBase(RoundKernel):
    """Shared machinery of the classic and oriented Linial kernels.

    Per round, the cover-free recoloring reduces to polynomial
    arithmetic: vertex colors encode degree-``d`` polynomials over F_q,
    and the sets ``S_c = {x·q + p_c(x)}`` of two colors intersect at
    ``x`` iff the polynomials agree at ``x``.  The scalar code picks
    the smallest element of the (sorted) own set not covered by the
    escaped neighbors' sets — which is exactly the smallest ``x`` with
    no agreeing escaped neighbor, vectorized here as one Horner
    evaluation plus one edge-compare per candidate ``x``.

    ``self.colors`` holds the *published* color of every vertex and is
    scattered only for the ``awake`` set, so a crash-stopped vertex
    keeps publishing its frozen color exactly like a halted scalar
    context.  A frozen color from an earlier stage may lie outside the
    current stage's family — the scalar path raises ``ValueError`` from
    ``cover_free_set`` when a stepping vertex reads it, mirrored here
    (including its precedence against the cover-free
    ``AssertionError``, per scalar vertex order).
    """

    handles_crashes = True

    def _degree_param(self, run: VectorRun) -> int:
        raise NotImplementedError

    def __init__(self, run: VectorRun, algorithm: SyncAlgorithm) -> None:
        super().__init__(run, algorithm)
        k0 = run.globals.get("id_space")
        if k0 is None:
            k0 = 1 << max(1, (run.n - 1).bit_length())
        self.k0: int = k0
        self.degree = self._degree_param(run)
        self.schedule = linial_schedule(k0, self.degree)
        self.iteration = 0
        assert run.ids is not None
        self.colors = run.ids.astype(np.int64)
        # CSR of the neighbors each variant escapes, in the exact order
        # the scalar code reads them (all ports / out_ports order).
        self.read_offsets = run.offsets
        self.read_targets = run.targets

    @classmethod
    def _basic_support(cls, run: VectorRun, k0_degree_ok: bool) -> bool:
        if run.model is not Model.DET or run.ids is None:
            return False
        if not k0_degree_ok:
            return False
        k0 = run.globals.get("id_space")
        if k0 is None:
            k0 = 1 << max(1, (run.n - 1).bit_length())
        # Out-of-range IDs make the scalar path raise from
        # cover_free_set; keep that path authoritative.
        return bool(
            run.n == 0
            or (run.ids.min() >= 0 and run.ids.max() < k0)
        )

    def setup(self) -> None:
        run = self.run
        everyone = np.arange(run.n, dtype=np.int64)
        run.record_publish(everyone, self.colors.copy())  # publish(id)
        if len(self.schedule) == 1:
            run.halt(everyone, self.colors)

    def step(self, awake: np.ndarray, round_index: int) -> None:
        # Live vertices recolor in lockstep (the schedule is common
        # knowledge); ``awake`` excludes crash-stopped vertices, whose
        # published color in ``self.colors`` stays frozen.
        run = self.run
        i = self.iteration
        k = self.schedule[i]
        d, q = choose_cover_free_params(k, self.degree)
        # Base-q coefficient extraction of every published color.  A
        # frozen crashed color can exceed q^(d+1) (non-zero remainder);
        # the scalar path raises from cover_free_set if it is read.
        coeffs = []
        rest = self.colors.copy()
        for _ in range(d + 1):
            coeffs.append(rest % q)
            rest //= q
        n = run.n
        e, _, ptr = edge_slices(self.read_offsets, awake)
        nb = self.read_targets[e]
        src = awake[ptr]
        bad_pos: Optional[int] = None
        bad_edges = (rest != 0)[nb]
        if bad_edges.any():
            # Position (in awake order) of the first vertex reading an
            # out-of-range color; whether it raises, and against which
            # neighbor, depends on the cover-free scan below.
            bad_pos = int(ptr[int(np.argmax(bad_edges))])
        found = np.zeros(awake.size, dtype=bool)
        new_colors = np.zeros(awake.size, dtype=np.int64)
        for x in range(q):
            value = np.zeros(n, dtype=np.int64)
            for coeff in reversed(coeffs):
                value = (value * x + coeff) % q
            agree = value[src] == value[nb]
            conflicted = np.zeros(awake.size, dtype=bool)
            conflicted[ptr[agree]] = True
            settled = ~found & ~conflicted
            new_colors[settled] = x * q + value[awake[settled]]
            found |= settled
            if found.all():
                break
        if not found.all():
            first_unfound = int(np.argmax(~found))
            # Scalar vertex order: a vertex raising ValueError on an
            # out-of-range neighbor read does so before any later
            # vertex's own-set scan fails (and before its own, since
            # neighbors are read first).
            if bad_pos is None or first_unfound < bad_pos:
                raise AssertionError(
                    "cover-free property violated — more neighbors "
                    "than the family parameter supports"
                )
        if bad_pos is not None:
            first = int(np.argmax(bad_edges & (ptr == bad_pos)))
            color = int(self.colors[nb[first]])
            raise ValueError(
                f"color {color} out of range for q={q}, d={d}"
            )
        self.colors[awake] = new_colors
        run.record_publish(awake, new_colors)
        self.iteration = i + 1
        if i + 1 >= len(self.schedule) - 1:
            run.halt(awake, new_colors)


@register_kernel(LinialColoring)
class LinialKernel(_LinialKernelBase):
    """Classic variant: escape every neighbor (degree param Δ)."""

    def _degree_param(self, run: VectorRun) -> int:
        return max(1, run.max_degree)

    @classmethod
    def supports(cls, algorithm: SyncAlgorithm, run: VectorRun) -> bool:
        return cls._basic_support(run, True)


@register_kernel(OrientedLinialColoring)
class OrientedLinialKernel(_LinialKernelBase):
    """Oriented variant: escape only the ``out_ports`` neighbors."""

    def _degree_param(self, run: VectorRun) -> int:
        return max(1, run.globals["out_degree"])

    def __init__(self, run: VectorRun, algorithm: SyncAlgorithm) -> None:
        super().__init__(run, algorithm)
        offsets = run.offsets.tolist()
        assert run.node_inputs is not None
        out_slots = np.fromiter(
            (
                offsets[v] + port
                for v, node_input in enumerate(run.node_inputs)
                for port in node_input["out_ports"]
            ),
            dtype=np.int64,
        )
        counts = np.fromiter(
            (
                len(node_input["out_ports"])
                for node_input in run.node_inputs
            ),
            dtype=np.int64,
            count=run.n,
        )
        read_offsets = np.zeros(run.n + 1, dtype=np.int64)
        np.cumsum(counts, out=read_offsets[1:])
        self.read_offsets = read_offsets
        # out_ports order preserved — the scalar read (and raise) order.
        self.read_targets = run.targets[out_slots]

    @classmethod
    def supports(cls, algorithm: SyncAlgorithm, run: VectorRun) -> bool:
        if "out_degree" not in run.globals or run.node_inputs is None:
            return False
        try:
            ok = all(
                "out_ports" in node_input
                for node_input in run.node_inputs
            )
        except TypeError:
            return False
        return ok and cls._basic_support(run, True)


# ---------------------------------------------------------------------------
# Theorem 9 stages: H-partition peeling and the layer sweep
# ---------------------------------------------------------------------------


@register_kernel(PeelingAlgorithm)
class PeelingKernel(RoundKernel):
    """Iterated low-degree peeling: one bincount per round.

    Crash-safe: ``active_pub`` flips only for peeled stepping vertices,
    so a crashed vertex stays frozen at its last published activity.
    """

    handles_crashes = True

    def __init__(self, run: VectorRun, algorithm: SyncAlgorithm) -> None:
        super().__init__(run, algorithm)
        self.threshold = run.globals["threshold"]
        self.active_pub = np.ones(run.n, dtype=bool)

    @classmethod
    def supports(cls, algorithm: SyncAlgorithm, run: VectorRun) -> bool:
        return "threshold" in run.globals

    def setup(self) -> None:
        # Everyone publishes "active"; nobody halts or sleeps.
        self.run.record_publish(
            np.arange(self.run.n, dtype=np.int64),
            value_const="active",
            payload_bytes=6,
        )

    def step(self, awake: np.ndarray, round_index: int) -> None:
        run = self.run
        e, _, ptr = edge_slices(run.offsets, awake)
        active_edges = self.active_pub[run.targets[e]]
        counts = np.bincount(ptr[active_edges], minlength=awake.size)
        peeled_sel = counts <= self.threshold
        peeled = awake[peeled_sel]
        run.record_publish(
            peeled,
            value_const=("peeled", round_index),
            payload_bytes=estimate_payload_bytes(("peeled", round_index)),
        )
        run.halt(
            peeled, np.full(peeled.size, round_index, dtype=np.int64)
        )
        # Publish ("peeled", round) == stop counting as "active";
        # committed after the gather above (double buffering).
        self.active_pub[peeled] = False


@register_kernel(LayerSweepColoring)
class LayerSweepKernel(RoundKernel):
    """Top-down layer sweep: wake buckets + smallest-free-color masks.

    The harness's wake buckets and bulk round-skip do the scheduling
    (each vertex acts in exactly one round); the kernel's step is one
    gather of neighbor finals and one lowest-zero-bit per vertex.

    Crash-safe: ``final`` is committed only for stepping vertices; a
    vertex crashed at its wake round keeps its pre-final publish,
    which neighbors ignore exactly as the scalar path does.
    """

    handles_crashes = True

    def __init__(self, run: VectorRun, algorithm: SyncAlgorithm) -> None:
        super().__init__(run, algorithm)
        self.q: int = run.globals["q"]
        max_layer = run.globals["max_layer"]
        assert run.node_inputs is not None
        layers = np.fromiter(
            (ni["layer"] for ni in run.node_inputs),
            dtype=np.int64,
            count=run.n,
        )
        schedule_colors = np.fromiter(
            (ni["schedule_color"] for ni in run.node_inputs),
            dtype=np.int64,
            count=run.n,
        )
        self.wake = (max_layer - layers) * self.q + schedule_colors
        self.final = np.full(run.n, -1, dtype=np.int64)

    @classmethod
    def supports(cls, algorithm: SyncAlgorithm, run: VectorRun) -> bool:
        q = run.globals.get("q")
        if not isinstance(q, int) or not 1 <= q <= MAX_MASK_COLORS:
            return False
        if "max_layer" not in run.globals or run.node_inputs is None:
            return False
        try:
            return all(
                "layer" in ni and "schedule_color" in ni
                for ni in run.node_inputs
            )
        except TypeError:
            return False

    def setup(self) -> None:
        run = self.run
        everyone = np.arange(run.n, dtype=np.int64)
        run.record_publish(
            everyone, value_const=("tmp",), payload_bytes=5
        )
        run.sleep(everyone, self.wake)

    def step(self, awake: np.ndarray, round_index: int) -> None:
        run = self.run
        e, seg, _ = edge_slices(run.offsets, awake)
        neighbor_final = self.final[run.targets[e]]
        fixed = neighbor_final >= 0
        contrib = np.where(
            fixed,
            np.left_shift(
                _ONE, np.where(fixed, neighbor_final, 0)
            ),
            np.int64(0),
        )
        taken = segment_or(contrib, seg)
        free = ~taken & ((_ONE << np.int64(self.q)) - _ONE)
        if not free.all():
            raise AssertionError(
                "no free color — caller violated the palette/degree "
                "precondition"
            )
        colors = _lowest_set_bit_index(free)
        run.record_publish(
            awake,
            payload_bytes=8,  # estimate_payload_bytes(("final", c<62))
            values_fn=lambda: [("final", c) for c in colors.tolist()],
        )
        run.halt(awake, colors)
        self.final[awake] = colors  # commit after the gather above

"""Sinkless orientation algorithms (the Brandt et al. problem).

The paper uses sinkless orientation only through its *lower* bound
(Ω(log log n) randomized / Ω(log n) deterministic on Δ-regular graphs);
experiment E10 complements that with the upper-bound side, so the
measured sandwich  lower-bound <= measured rounds  is visible:

- :class:`RandomSinkFixing` — RandLOCAL: orient every edge toward the
  endpoint with the larger random rank; then, each round, every sink
  grabs a uniformly random incident edge (two adjacent vertices are
  never both sinks, so grabs never collide).  On regular graphs with
  Δ >= 3 the sink population decays rapidly; the driver measures rounds
  until sink-free.
- :func:`deterministic_sinkless_orientation` — DetLOCAL: every vertex
  collects the entire ID-labeled graph (Θ(diameter) = Θ(log_Δ n) rounds
  on regular graphs) and evaluates one shared canonical orientation rule
  (:func:`canonical_sinkless_orientation`): hanging trees point toward
  the 2-core, each core component is DFS-oriented from a canonical root
  chosen on a cycle (tree edges child→parent, back edges
  ancestor→descendant).  Matches the deterministic Ω(log n) lower bound
  up to constants — the gap theorem (Corollary 3) says nothing faster
  than O(log* n) exists unless the problem is trivial, and it is not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ball import BallCollection
from .drivers import AlgorithmReport, PhaseLog
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..core.errors import AlgorithmFailure
from ..graphs.graph import Graph, GraphError


class RandomSinkFixing(SyncAlgorithm):
    """RandLOCAL sink-fixing heuristic.

    Globals:
        ``budget``: number of fixing rounds to run before stopping
        (RandLOCAL algorithms run a prescribed number of rounds).

    Output per vertex: ``(orientation, last_sink_round)`` where
    ``orientation`` is the out-direction tuple (True = outgoing) and
    ``last_sink_round`` is the last round the vertex was a sink
    (-1 if never) — the driver turns the maximum into the effective
    stabilization time.
    """

    name = "random-sink-fixing"

    def setup(self, ctx: NodeContext) -> None:
        rank = ctx.random.getrandbits(64)
        ctx.state["rank"] = rank
        ctx.state["out"] = [False] * ctx.degree
        ctx.state["last_sink_round"] = -1
        ctx.state["initialized"] = False
        ctx.publish(("rank", rank))

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        out: List[bool] = ctx.state["out"]
        if not ctx.state["initialized"]:
            my_rank = ctx.state["rank"]
            for p in ctx.ports:
                msg = inbox[p]
                their_rank = msg[1]
                if their_rank == my_rank:
                    ctx.fail("rank collision (probability ~2^-64)")
                    return
                out[p] = my_rank < their_rank
            ctx.state["initialized"] = True
        else:
            # Apply neighbors' grabs from last round: a neighbor that
            # grabbed the edge on our port p now owns its direction.
            reverse_ports: List[int] = ctx.input["reverse_ports"]
            for p in ctx.ports:
                msg = inbox[p]
                if (
                    isinstance(msg, tuple)
                    and msg[0] == "grab"
                    and reverse_ports[p] in msg[1]
                ):
                    out[p] = False
        is_sink = ctx.degree > 0 and not any(out)
        if is_sink:
            ctx.state["last_sink_round"] = ctx.now
        if ctx.now + 1 >= ctx.globals["budget"]:
            # Final round: apply-only.  Grabbing now would be lost on
            # neighbors (everyone halts simultaneously), leaving the
            # two endpoints disagreeing about the edge's direction.
            ctx.halt((tuple(out), ctx.state["last_sink_round"]))
            return
        grabbed: Set[int] = set()
        if is_sink:
            p = ctx.random.randrange(ctx.degree)
            out[p] = True
            grabbed = {p}
        ctx.publish(("grab", grabbed))


def random_sinkless_orientation(
    graph: Graph,
    seed: Optional[int] = None,
    budget: Optional[int] = None,
    max_rounds: int = 100_000,
) -> Tuple[AlgorithmReport, int]:
    """Run :class:`RandomSinkFixing`; returns the report (labeling =
    orientation tuples) and the stabilization round (last round any
    vertex was a sink, +1; equals the budget if sinks survived).

    Raises
    ------
    AlgorithmFailure
        If sinks remain after the budget (caller may retry with more).
    """
    n = graph.num_vertices
    if budget is None:
        budget = max(8, 4 * max(1, n.bit_length()))
    log = PhaseLog()
    run = log.add(
        "sink-fixing",
        run_local(
            graph,
            RandomSinkFixing(),
            Model.RAND,
            seed=seed,
            global_params={"budget": budget},
            max_rounds=max_rounds,
        ),
    )
    if run.failures:
        first = min(run.failures)
        raise AlgorithmFailure(
            "rank collision during initialization "
            f"(first: vertex {first}: {run.failures[first]})",
            node=first,
            round=run.rounds,
        )
    orientations = [out for out, _ in run.outputs]
    last_sink = max(last for _, last in run.outputs)
    remaining = [
        v
        for v in graph.vertices()
        if graph.degree(v) > 0 and not any(orientations[v])
    ]
    if remaining:
        raise AlgorithmFailure(
            f"sinks remain after {budget} fixing rounds "
            f"(first: vertex {remaining[0]})",
            node=remaining[0],
            round=run.rounds,
        )
    report = AlgorithmReport(orientations, log.total_rounds, log)
    return report, last_sink + 1


# ----------------------------------------------------------------------
# Deterministic: full knowledge + canonical rule
# ----------------------------------------------------------------------
def canonical_sinkless_orientation(
    n: int, edges: Sequence[Tuple[int, int]]
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """A canonical sinkless orientation of the graph ``(n, edges)``.

    Returns ``{(a, b): (tail, head)}`` for every edge key ``a < b``.
    Deterministic in the vertex numbering (which, in the distributed
    algorithm, is the shared ID space — every vertex evaluates the same
    function on the same collected graph).

    Raises
    ------
    GraphError
        If some component is acyclic (no sinkless orientation exists).
    """
    graph = Graph(n, edges)
    orientation: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for component in graph.connected_components():
        if len(component) >= 2:
            sub, _ = graph.induced_subgraph(component)
            if sub.is_forest():
                raise GraphError(
                    "an acyclic component has no sinkless orientation"
                )

    # Peel the 1-shell: repeatedly remove degree-<=1 vertices; removed
    # vertices orient their remaining edge toward the survivors.
    degree = {v: graph.degree(v) for v in graph.vertices()}
    removed: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for v in sorted(degree):
            if v in removed or degree[v] > 1:
                continue
            for u in graph.neighbors(v):
                if u in removed:
                    continue
                key = (v, u) if v < u else (u, v)
                if key not in orientation:
                    orientation[key] = (v, u)  # point toward the core
                    degree[u] -= 1
                    changed = True
            degree[v] = 0
            removed.add(v)
    core = [v for v in graph.vertices() if v not in removed]
    if not core:
        return orientation  # forest components were rejected above

    core_set = set(core)
    seen: Set[int] = set()
    for root_candidate in core:
        if root_candidate in seen:
            continue
        component = _core_component(graph, root_candidate, core_set)
        seen |= component
        root = _canonical_cyclic_root(graph, component)
        if root is None:
            raise GraphError(
                "a 2-core component contains no cycle — no sinkless "
                "orientation exists"
            )
        _dfs_orient(graph, root, component, orientation)
    # Self-check: the rule must leave no sinks (every vertex with an
    # incident edge has at least one outgoing edge).
    out_degree = [0] * graph.num_vertices
    for tail, _head in orientation.values():
        out_degree[tail] += 1
    for v in graph.vertices():
        if graph.degree(v) > 0 and out_degree[v] == 0:
            raise AssertionError(
                f"canonical orientation left vertex {v} a sink"
            )
    return orientation


def _core_component(graph: Graph, start: int, core: Set[int]) -> Set[int]:
    out = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for u in graph.neighbors(v):
            if u in core and u not in out:
                out.add(u)
                stack.append(u)
    return out


def _canonical_cyclic_root(
    graph: Graph, component: Set[int]
) -> Optional[int]:
    """The smallest vertex of the component that lies on a cycle
    (equivalently: has an incident non-bridge edge within the
    component)."""
    bridges = _bridges_within(graph, component)
    for v in sorted(component):
        for u in graph.neighbors(v):
            if u in component:
                key = (v, u) if v < u else (u, v)
                if key not in bridges:
                    return v
    return None


def _bridges_within(
    graph: Graph, component: Set[int]
) -> Set[Tuple[int, int]]:
    """Bridge edges of the induced subgraph (iterative Tarjan)."""
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    bridges: Set[Tuple[int, int]] = set()
    counter = [0]
    for start in sorted(component):
        if start in index:
            continue
        stack: List[Tuple[int, int, int]] = [(start, -1, 0)]
        while stack:
            v, parent, child_index = stack.pop()
            if child_index == 0:
                index[v] = low[v] = counter[0]
                counter[0] += 1
            neighbors = [u for u in graph.neighbors(v) if u in component]
            advanced = False
            while child_index < len(neighbors):
                u = neighbors[child_index]
                child_index += 1
                if u == parent:
                    continue
                if u in index:
                    low[v] = min(low[v], index[u])
                else:
                    stack.append((v, parent, child_index))
                    stack.append((u, v, 0))
                    advanced = True
                    break
            if not advanced and parent != -1:
                low[parent] = min(low.get(parent, index[parent]), low[v])
                if low[v] > index[parent]:
                    key = (v, parent) if v < parent else (parent, v)
                    bridges.add(key)
    return bridges


def _dfs_orient(
    graph: Graph,
    root: int,
    component: Set[int],
    orientation: Dict[Tuple[int, int], Tuple[int, int]],
) -> None:
    """DFS from ``root`` (neighbors in ascending order): tree edges
    child→parent, back edges ancestor→descendant."""
    parent: Dict[int, int] = {}
    order: Dict[int, int] = {}
    counter = 0
    stack2: List[Tuple[int, int]] = [(root, -1)]
    while stack2:
        v, par = stack2.pop()
        if v in order:
            continue
        order[v] = counter
        counter += 1
        parent[v] = par
        for u in sorted(
            (u for u in graph.neighbors(v) if u in component), reverse=True
        ):
            if u not in order:
                stack2.append((u, v))
    for v in component:
        for u in graph.neighbors(v):
            if u not in component or u < v:
                continue
            key = (v, u)
            if key in orientation:
                continue
            if parent.get(u) == v:
                orientation[key] = (u, v)  # child u -> parent v
            elif parent.get(v) == u:
                orientation[key] = (v, u)
            else:
                # Back edge: ancestor (smaller preorder) -> descendant.
                if order[v] < order[u]:
                    orientation[key] = (v, u)
                else:
                    orientation[key] = (u, v)


def deterministic_sinkless_orientation(
    graph: Graph,
    ids: Optional[Sequence[int]] = None,
    radius: Optional[int] = None,
    max_rounds: int = 100_000,
) -> AlgorithmReport:
    """DetLOCAL sinkless orientation by full-graph collection.

    ``radius`` defaults to diameter + 1 — the extra round ensures every
    vertex learns even the edges joining two antipodal vertices, so all
    vertices evaluate the canonical rule on the *same* graph.  On
    Δ-regular graphs this is Θ(log_Δ n), matching the Ω(log n) DetLOCAL
    lower bound for this problem up to constants.

    Output per vertex: the tuple of out-directions per port.
    """
    if radius is None:
        radius = graph.diameter() + 1
    if ids is None:
        ids = list(range(graph.num_vertices))

    def compute(ctx: NodeContext, vertices, edges) -> Tuple[bool, ...]:
        id_list = sorted(vertices)
        rank = {vid: i for i, vid in enumerate(id_list)}
        local_edges = [(rank[a], rank[b]) for a, b in edges]
        orientation = canonical_sinkless_orientation(
            len(id_list), local_edges
        )
        me = rank[ctx.id]
        out = []
        for p in ctx.ports:
            neighbor_rank = None
            # Identify the neighbor on port p by its ID, learned during
            # collection via the label channel.
            neighbor_id = ctx.input["neighbor_ids"][p]
            neighbor_rank = rank[neighbor_id]
            key = (
                (me, neighbor_rank)
                if me < neighbor_rank
                else (neighbor_rank, me)
            )
            tail, _head = orientation[key]
            out.append(tail == me)
        return tuple(out)

    # One pre-round so every vertex knows its neighbors' IDs per port.
    log = PhaseLog()
    log.add_rounds("neighbor-id-exchange", 1, messages=2 * graph.num_edges)
    neighbor_ids = [
        [ids[u] for u in graph.neighbors(v)] for v in graph.vertices()
    ]
    run = log.add(
        "ball-collection",
        run_local(
            graph,
            BallCollection(radius, compute),
            Model.DET,
            ids=ids,
            node_inputs=[
                {"neighbor_ids": neighbor_ids[v]} for v in graph.vertices()
            ],
            max_rounds=max_rounds,
        ),
    )
    return AlgorithmReport(run.outputs, log.total_rounds, log)

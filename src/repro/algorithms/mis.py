"""Maximal independent set algorithms.

Two sides of the survey table in Section I:

- :class:`LubyMIS` — the classic RandLOCAL algorithm: O(log n) rounds
  with high probability, no IDs needed.
- :class:`MISFromColoring` — the DetLOCAL workhorse: given a proper
  m-coloring, sweep the color classes; combined with Linial's coloring
  (Theorem 2) this gives deterministic MIS in O(Δ² + log* n) rounds
  (our Linial fixed point is O(Δ²); the O(Δ + log* n) of [9] trades a
  much more intricate reduction for the Δ² term — same n-dependence).

Both are exercised head-to-head in experiment E11.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .drivers import AlgorithmReport, PhaseLog
from .linial import LinialColoring
from ..core.algorithm import Inbox, SyncAlgorithm
from ..core.context import Model, NodeContext
from ..core.engine import run_local
from ..graphs.graph import Graph
from ..lcl.mis import IN, OUT


class LubyMIS(SyncAlgorithm):
    """Luby's RandLOCAL MIS.

    Iterations take two rounds each.  In the *bid* round every undecided
    vertex draws 64 random bits and publishes them; in the *decide*
    round a vertex whose bid is strictly smaller than every undecided
    neighbor's bid joins the MIS and halts (publishing ``("in",)``).
    A vertex seeing an ``("in",)`` neighbor halts with OUT at its next
    bid round.  Ties (probability ~2^-64 per edge per iteration) simply
    stall one iteration; correctness is unaffected.
    """

    name = "luby-mis"

    def setup(self, ctx: NodeContext) -> None:
        ctx.state["phase"] = "bid"
        ctx.publish(("undecided",))
        if ctx.degree == 0:
            ctx.publish(("in",))
            ctx.halt(IN)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.state["phase"] == "bid":
            if any(msg[0] == "in" for msg in inbox):
                ctx.publish(("out",))
                ctx.halt(OUT)
                return
            bid = ctx.random.getrandbits(64)
            ctx.state["bid"] = bid
            ctx.state["phase"] = "decide"
            ctx.publish(("bid", bid))
        else:
            my_bid = ctx.state["bid"]
            wins = all(
                not (msg[0] == "bid" and msg[1] <= my_bid) for msg in inbox
            )
            ctx.state["phase"] = "bid"
            if wins:
                ctx.publish(("in",))
                ctx.halt(IN)
            else:
                ctx.publish(("undecided",))


class GhaffariMIS(SyncAlgorithm):
    """Ghaffari's RandLOCAL MIS ([11] in the paper's survey),
    simplified: the *desire level* dynamics.

    Every vertex keeps a desire ``p_v`` (initially 1/2).  Each
    iteration (two rounds), vertices mark themselves with probability
    ``p_v``; a marked vertex with no marked neighbor joins the MIS.
    Desires adapt to the *effective degree* ``d_v = Σ_{u ∈ N(v)} p_u``:
    halve when ``d_v >= 2``, else double (capped at 1/2).  Per-vertex
    settling time is O(log Δ) + shattering tail — the survey's
    O(log Δ + 2^O(√log log n)) headline, whose second term Theorem 3
    proves necessary.
    """

    name = "ghaffari-mis"

    def setup(self, ctx: NodeContext) -> None:
        ctx.state["p"] = 0.5
        ctx.state["phase"] = "mark"
        ctx.publish(("undecided", 0.5, False))
        if ctx.degree == 0:
            ctx.publish(("in",))
            ctx.halt(IN)

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        if ctx.state["phase"] == "mark":
            if any(msg[0] == "in" for msg in inbox):
                ctx.publish(("out",))
                ctx.halt(OUT)
                return
            # Adapt the desire to the neighbors' last-published levels.
            effective = sum(
                msg[1] for msg in inbox if msg[0] in ("undecided", "bid")
            )
            p = ctx.state["p"]
            p = p / 2.0 if effective >= 2.0 else min(0.5, 2.0 * p)
            ctx.state["p"] = p
            marked = ctx.random.random() < p
            ctx.state["marked"] = marked
            ctx.state["phase"] = "decide"
            ctx.publish(("bid", p, marked))
        else:
            ctx.state["phase"] = "mark"
            if ctx.state["marked"] and not any(
                msg[0] == "bid" and msg[2] for msg in inbox
            ):
                ctx.publish(("in",))
                ctx.halt(IN)
            else:
                ctx.publish(("undecided", ctx.state["p"], False))


def ghaffari_mis(
    graph: Graph, seed: Optional[int] = None, max_rounds: int = 100_000
) -> AlgorithmReport:
    """Run Ghaffari's MIS; returns IN/OUT labels and exact rounds."""
    log = PhaseLog()
    result = log.add(
        "ghaffari",
        run_local(
            graph, GhaffariMIS(), Model.RAND, seed=seed, max_rounds=max_rounds
        ),
    )
    return AlgorithmReport(result.outputs, log.total_rounds, log)


class MISFromColoring(SyncAlgorithm):
    """DetLOCAL: MIS by sweeping the classes of a proper coloring.

    Node input:
        ``color``: this vertex's color in a proper ``m``-coloring.
    Globals:
        ``palette``: m.

    Round ``j`` decides color class ``j``: a class-``j`` vertex joins
    the MIS unless a neighbor already joined.  ``m`` rounds total.
    """

    name = "mis-from-coloring"

    def setup(self, ctx: NodeContext) -> None:
        ctx.publish(("wait",))
        ctx.sleep_until(ctx.input["color"])

    def step(self, ctx: NodeContext, inbox: Inbox) -> None:
        if any(
            isinstance(msg, tuple) and msg[0] == "in" for msg in inbox
        ):
            ctx.publish(("out",))
            ctx.halt(OUT)
        else:
            ctx.publish(("in",))
            ctx.halt(IN)


def luby_mis(
    graph: Graph, seed: Optional[int] = None, max_rounds: int = 100_000
) -> AlgorithmReport:
    """Run Luby's MIS; returns IN/OUT labels and the exact round count."""
    log = PhaseLog()
    result = log.add(
        "luby",
        run_local(
            graph, LubyMIS(), Model.RAND, seed=seed, max_rounds=max_rounds
        ),
    )
    return AlgorithmReport(result.outputs, log.total_rounds, log)


def deterministic_mis(
    graph: Graph,
    ids: Optional[Sequence[int]] = None,
    id_space: Optional[int] = None,
) -> AlgorithmReport:
    """DetLOCAL MIS: Linial O(Δ²)-coloring, then a class sweep."""
    log = PhaseLog()
    globals_params = {}
    if id_space is not None:
        globals_params["id_space"] = id_space
    coloring_run = log.add(
        "linial-coloring",
        run_local(
            graph,
            LinialColoring(),
            Model.DET,
            ids=ids,
            global_params=globals_params,
        ),
    )
    colors: List[int] = coloring_run.outputs
    palette = max(colors) + 1 if colors else 1
    mis_run = log.add(
        "class-sweep",
        run_local(
            graph,
            MISFromColoring(),
            Model.DET,
            ids=ids,
            node_inputs=[{"color": c} for c in colors],
            global_params={"palette": palette},
        ),
    )
    return AlgorithmReport(mis_run.outputs, log.total_rounds, log)

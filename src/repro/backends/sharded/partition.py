"""Deterministic vertex partitioning for the sharded backend.

A :class:`Partition` assigns every vertex of a port-numbered graph to
exactly one of ``n_shards`` shards and precomputes the boundary
structure the round barrier needs: for each vertex whose neighborhood
crosses a shard boundary, the set of *foreign* shards that must receive
its published value (its ghost consumers).

Both placement modes are pure functions of ``(graph, n_shards, seed)``:

- ``"contiguous"`` — shard ``s`` owns the index block
  ``[floor(s*n/N), floor((s+1)*n/N))``.  Matches the CSR layout, so
  boundary edges are exactly the block-crossing edges.
- ``"random"`` — shard membership is hash-derived per vertex with the
  same splitmix64 mix the fault adversary uses
  (:func:`repro.faults.runtime.mix64`), never a sequential RNG draw.
  Placement therefore cannot depend on construction order, and two
  processes computing the partition independently (the coordinator and
  a resumed successor) agree bit-for-bit.

Placement is invisible to the algorithm by the locality of the LOCAL
model — a round step reads only the previous round's neighbor
publishes, so any partition yields the same execution.  The
``PartitionInvariance`` relation in :mod:`repro.verify` pins this
mechanically instead of assuming it.

Empty shards are legal (``n_shards > n`` simply leaves the tail shards
with no vertices) and so are singleton shards; the coordinator treats
both uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ...core.errors import ReproError
from ...faults.runtime import mix64
from ...graphs.graph import Graph

#: Placement modes accepted by :func:`partition_graph`.
CONTIGUOUS = "contiguous"
RANDOM = "random"
PARTITION_MODES = (CONTIGUOUS, RANDOM)

#: Domain tag separating the placement hash from the fault-decision
#: streams (which use small stream ids on the same mixer).
_STREAM_PLACEMENT = 0x5A4D


@dataclass(frozen=True)
class Partition:
    """An immutable shard assignment plus its boundary structure."""

    #: Number of shards (some possibly empty).
    n_shards: int
    #: Placement mode (``"contiguous"`` or ``"random"``).
    mode: str
    #: Placement seed (only the random mode consults it).
    seed: int
    #: ``owner[v]`` -> shard id owning vertex ``v``.
    owner: Tuple[int, ...]
    #: ``shards[s]`` -> ascending vertex ids owned by shard ``s``.
    shards: Tuple[Tuple[int, ...], ...]
    #: Ghost-consumer map: boundary vertex -> sorted foreign shards
    #: containing at least one of its neighbors.  Vertices whose whole
    #: neighborhood is shard-local do not appear.
    consumers: Dict[int, Tuple[int, ...]]

    @property
    def boundary_vertices(self) -> Tuple[int, ...]:
        """Vertices with at least one cross-shard neighbor, ascending."""
        return tuple(sorted(self.consumers))


def partition_graph(
    graph: Graph,
    n_shards: int,
    *,
    mode: str = CONTIGUOUS,
    seed: int = 0,
) -> Partition:
    """Partition ``graph`` into ``n_shards`` shards deterministically.

    A pure function: no RNG state is consumed, so repeated calls with
    the same arguments — in any process, in any order — return equal
    partitions (the property tests in ``tests/test_sharded.py`` pin
    this).
    """
    if n_shards < 1:
        raise ReproError(
            f"shard count must be a positive integer, got {n_shards}"
        )
    if mode not in PARTITION_MODES:
        raise ReproError(
            f"unknown partition mode {mode!r}; "
            f"expected one of {', '.join(PARTITION_MODES)}"
        )
    n = graph.num_vertices
    if mode == CONTIGUOUS:
        owner = tuple(v * n_shards // n for v in range(n)) if n else ()
    else:
        owner = tuple(
            mix64(seed, _STREAM_PLACEMENT, v) % n_shards for v in range(n)
        )
    shard_lists: List[List[int]] = [[] for _ in range(n_shards)]
    for v in range(n):
        shard_lists[owner[v]].append(v)
    consumers: Dict[int, Tuple[int, ...]] = {}
    for v in range(n):
        home = owner[v]
        foreign = {owner[u] for u in graph.neighbors(v)}
        foreign.discard(home)
        if foreign:
            consumers[v] = tuple(sorted(foreign))
    return Partition(
        n_shards=n_shards,
        mode=mode,
        seed=seed,
        owner=owner,
        shards=tuple(tuple(block) for block in shard_lists),
        consumers=consumers,
    )


def boundary_edges(
    graph: Graph, part: Partition, shard_a: int, shard_b: int
) -> FrozenSet[Tuple[int, int]]:
    """Edges with one endpoint owned by ``shard_a`` and the other by
    ``shard_b``, as canonical ``(min, max)`` pairs.

    Computed by scanning ``shard_a``'s vertices only, so
    ``boundary_edges(g, p, a, b) == boundary_edges(g, p, b, a)`` is a
    real symmetry property (two independent scans), not a tautology —
    exactly what the partitioner test suite asserts across all shard
    pairs.
    """
    if shard_a == shard_b:
        return frozenset()
    edges = set()
    for v in part.shards[shard_a]:
        for u in graph.neighbors(v):
            if part.owner[u] == shard_b:
                edges.add((min(u, v), max(u, v)))
    return frozenset(edges)

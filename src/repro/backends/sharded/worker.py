"""The shard worker loop — the child side of the barrier protocol.

Each worker is forked by the coordinator *after* the parent has built
every :class:`~repro.core.context.NodeContext` and completed the setup
pass (or restored a checkpoint), so the worker inherits the contexts,
the CSR adjacency, the algorithm, and the activated
:class:`~repro.faults.runtime.FaultRuntime` through the copied address
space — nothing is pickled at startup (the shared read-only
``ctx.globals`` mapping could not be).

From then on the worker owns its shard's slice of the run exclusively:

- it steps only its owned vertices, reading inboxes from its private
  ``visible`` list (kept current for owned vertices by its own
  dirty-commit pass, and for foreign *neighbor* vertices by the ghost
  updates the coordinator routes in with each ``step`` command);
- fault decisions are recomputed shard-locally: crash selection was
  precomputed in the inherited runtime, and drop/duplicate/corrupt
  decisions are pure splitmix64 hashes of ``(seed, round, vertex,
  port, stream)`` — placement-independent by construction.  The stale
  duplicate buffer is keyed by the *receiving* vertex and port, so it
  too is owned entirely by one shard;
- wake-bucket bulk-skip state stays local: each barrier reply reports
  the shard's next wake round so the coordinator can compute the
  global skip as the minimum over shards.

Protocol (pickled tuples over a duplex pipe; one request, one reply):

- ``("step", round, ghosts)`` -> ``("ok", reply_dict)``
- ``("capture",)`` -> ``("ok", (node_snapshots, fault_last))``
- ``("finish",)`` -> ``("ok", [(output, failure), ...])``
- ``("exit",)`` -> no reply; the worker leaves its loop.

Any exception escaping a command handler is sent back as
``("error", exc)`` (falling back to a picklable
:class:`~repro.core.errors.ReproError` summary when the original
exception cannot cross the pipe) and the worker exits; the coordinator
re-raises it in the parent so the run fails exactly as the serial
engines would.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...core.errors import ReproError

#: Batch-segment faults column marker for a crash-stop vertex; the
#: coordinator substitutes the parent-side CrashStopFault (whose
#: ``run_meta`` carries the graph handle — never shipped over a pipe).
CRASH_MARKER = None


def shard_worker(
    conn: Any,
    sibling_conns: List[Any],
    shard_id: int,
    owned: Tuple[int, ...],
    consumers: Dict[int, Tuple[int, ...]],
    contexts: List[Any],
    visible: List[Any],
    offsets: List[int],
    targets: List[int],
    algorithm: Any,
    clock: Any,
    faults: Optional[Any],
    observing: bool,
    start_round: int,
) -> None:
    """Run one shard until ``exit`` (or the parent's death)."""
    # Close every inherited pipe end that is not ours: once each fd has
    # exactly one owner, a SIGKILLed worker's death surfaces to the
    # coordinator as a clean EOF instead of a silent hang.
    for other in sibling_conns:
        other.close()

    step = algorithm.step
    deliver = (
        faults.deliver
        if faults is not None and faults.touches_messages
        else None
    )

    # Rebuild the shard-local scheduling state from the inherited
    # contexts, with the same rule the serial engines use at (re)start:
    # strictly-later wake rounds park, everything else is runnable.
    buckets: Dict[int, List[int]] = {}
    parked = 0
    runnable: List[int] = []
    for v in owned:
        ctx = contexts[v]
        if ctx.halted:
            continue
        wake = ctx._wake_round
        if wake is not None and wake > start_round:
            buckets.setdefault(wake, []).append(v)
            parked += 1
        else:
            runnable.append(v)

    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "step":
                rounds = message[1]
                for v, value in message[2]:
                    visible[v] = value
                clock.now = rounds
                due = buckets.pop(rounds, None)
                if due:
                    parked -= len(due)
                    runnable.extend(due)
                if observing:
                    # Canonical vertex order, as the serial engines
                    # schedule when observed; the merged batch columns
                    # stay ascending per shard segment.
                    runnable.sort()
                active = len(runnable) + parked
                awake = len(runnable)
                halted_this_round = 0
                dirty: List[int] = []
                next_runnable: List[int] = []
                stepped: List[int] = []
                publishes: List[Tuple[int, Any]] = []
                halts: List[Tuple[int, Any]] = []
                failures: List[Tuple[int, str]] = []
                fault_entries: List[Tuple[int, Any]] = []
                for v in runnable:
                    ctx = contexts[v]
                    ctx._wake_round = None
                    if faults is not None and faults.crashed(rounds, v):
                        # Crash-stop, exactly as in the fast engine:
                        # counts as awake + halted, never steps, and
                        # its last published value stays visible.
                        reason = faults.crash_reason(rounds)
                        ctx.fail(reason)
                        halted_this_round += 1
                        if observing:
                            fault_entries.append((v, CRASH_MARKER))
                            failures.append((v, reason))
                        continue
                    lo = offsets[v]
                    hi = offsets[v + 1]
                    inbox = [visible[u] for u in targets[lo:hi]]
                    if deliver is not None:
                        events = deliver(rounds, v, inbox, observing)
                        if events:
                            fault_entries.extend(
                                (v, event) for event in events
                            )
                    step(ctx, inbox)
                    if ctx._pub_dirty:
                        dirty.append(v)
                    if ctx.halted:
                        halted_this_round += 1
                    else:
                        wake = ctx._wake_round
                        if wake is not None and wake > rounds + 1:
                            buckets.setdefault(wake, []).append(v)
                            parked += 1
                        else:
                            next_runnable.append(v)
                    if observing:
                        stepped.append(v)
                        if ctx._pub_dirty:
                            publishes.append((v, ctx._next_pub))
                        if ctx.failure is not None:
                            failures.append((v, ctx.failure))
                        elif ctx.halted:
                            halts.append((v, ctx.output))
                # Shard-local dirty-commit pass (double buffering: no
                # publish became visible before every step of this
                # round, on any shard, returned — the barrier enforces
                # the cross-shard half of that invariant).
                boundary: List[Tuple[int, Any]] = []
                for v in dirty:
                    ctx = contexts[v]
                    ctx._pub = ctx._next_pub
                    ctx._pub_dirty = False
                    visible[v] = ctx._pub
                    if v in consumers:
                        boundary.append((v, ctx._pub))
                runnable = next_runnable
                reply: Dict[str, Any] = {
                    "active": active,
                    "awake": awake,
                    "halted": halted_this_round,
                    "parked": parked,
                    "runnable": len(runnable),
                    "next_wake": min(buckets) if buckets else None,
                    "boundary": boundary,
                }
                if observing:
                    reply["batch"] = (
                        stepped,
                        publishes,
                        halts,
                        failures,
                        fault_entries,
                    )
                conn.send(("ok", reply))
            elif command == "capture":
                nodes = []
                for v in owned:
                    ctx = contexts[v]
                    nodes.append(
                        (
                            ctx.state,
                            ctx.input,
                            ctx._pub,
                            ctx._wake_round,
                            ctx.halted,
                            ctx.output,
                            ctx.failure,
                            ctx.failure_round,
                            ctx._rng.getstate()
                            if ctx._rng is not None
                            else None,
                        )
                    )
                fault_last = (
                    dict(faults._last)
                    if faults is not None and faults._last is not None
                    else None
                )
                conn.send(("ok", (nodes, fault_last)))
            elif command == "finish":
                conn.send(
                    (
                        "ok",
                        [
                            (contexts[v].output, contexts[v].failure)
                            for v in owned
                        ],
                    )
                )
            elif command == "exit":
                break
            else:  # pragma: no cover - protocol misuse
                raise ReproError(
                    f"shard worker {shard_id} received unknown "
                    f"command {command!r}"
                )
    except EOFError:  # pragma: no cover - parent died first
        pass
    except BaseException as exc:
        try:
            conn.send(("error", exc))
        except Exception:
            try:
                conn.send(
                    (
                        "error",
                        ReproError(
                            f"shard worker {shard_id} failed with an "
                            f"unpicklable exception: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )
                )
            except Exception:  # pragma: no cover - pipe already gone
                pass
    finally:
        conn.close()

"""The sharded backend's parent side: fork, route, barrier, merge.

:func:`run_local_sharded` is the entry point registered as the
``"sharded"`` backend (same signature and same :class:`RunResult` as
every other backend).  It mirrors the fast engine's round loop exactly
— same checkpoint/budget/max-rounds guard order, same wake-bucket
bulk-skip accounting, same trace entries — but delegates the per-vertex
stepping of each round to N forked shard workers and exchanges only
boundary messages at the round barrier:

1. the parent builds contexts and runs setup (or restores a
   checkpoint) exactly as the serial engines do, then forks one worker
   per shard — the workers inherit everything through the copied
   address space;
2. each round, the parent broadcasts ``("step", r, ghosts)`` where
   ``ghosts`` are the boundary publishes committed at the previous
   barrier, routed through the partition's ghost-consumer map;
3. each worker steps its owned vertices (crash/drop/duplicate/corrupt
   decisions recomputed shard-locally from the placement-independent
   splitmix64 hashes), runs its local dirty-commit pass, and replies
   with its activity counts, its next wake round, its boundary
   publishes, and (when observing) its batch segment;
4. the parent sums the counts, takes the global bulk-skip as the
   minimum over shard wake rounds, merges the per-shard batch segments
   into one :class:`~repro.obs.RoundBatch` in canonical vertex order,
   and routes the boundary values for the next barrier.

Determinism contract: the RunResult *and* the JSONL trace bytes equal
the serial fast engine's for every driver, every shard count, and
every fault plan — pinned by the ``PartitionInvariance`` relation in
:mod:`repro.verify` and the sharded equivalence suite.

Checkpoint snapshots are written in the ``"scalar"`` format (the
parent gathers each worker's owned-vertex state and merges it in
vertex order), so a snapshot taken at one shard count resumes at any
other — or on the fast engine — byte-identically.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ...core.engine import (
    DEFAULT_MAX_ROUNDS,
    RoundTrace,
    RunMeta,
    RunResult,
    SETUP_ROUND,
    _attached_observers,
    _Clock,
    _run_local_fast,
    _run_setup,
    active_fault_plan,
    build_contexts,
    flat_adjacency,
)
from ...core.errors import ReproError, SimulationError
from ...graphs.graph import Graph
from ...obs.observer import RoundBatch
from .partition import (
    CONTIGUOUS,
    PARTITION_MODES,
    Partition,
    partition_graph,
)
from .worker import CRASH_MARKER, shard_worker

#: Environment knobs (the CLI's ``--shards`` writes the first one).
SHARDS_ENV_VAR = "REPRO_SHARDS"
SHARD_MODE_ENV_VAR = "REPRO_SHARD_MODE"
SHARD_SEED_ENV_VAR = "REPRO_SHARD_SEED"

#: Shard count used when neither :func:`use_shards` nor the
#: environment says otherwise.
DEFAULT_SHARD_COUNT = 2


class WorkerCrashError(ReproError):
    """A shard worker died mid-run (SIGKILL, OOM, hard crash).

    The run fails loudly instead of returning partial results; with
    in-run checkpointing enabled, resuming from the latest snapshot
    reproduces the uninterrupted execution byte-for-byte (the recovery
    path ``repro.supervise`` drives automatically).
    """


@dataclass(frozen=True)
class ShardConfig:
    """Resolved sharding parameters for one run."""

    n_shards: int
    mode: str
    seed: int


_AMBIENT_CONFIG: Optional[ShardConfig] = None


@contextmanager
def use_shards(
    n_shards: int, *, mode: str = CONTIGUOUS, seed: int = 0
) -> Iterator[None]:
    """Pin the sharded backend's partition for every run in scope.

    Takes precedence over the ``REPRO_SHARDS`` family of environment
    variables; scopes nest (innermost wins) and the previous
    configuration is restored on exit even when the run raises.
    """
    config = ShardConfig(n_shards=n_shards, mode=mode, seed=seed)
    _validate_config(config)
    global _AMBIENT_CONFIG
    previous = _AMBIENT_CONFIG
    _AMBIENT_CONFIG = config
    try:
        yield
    finally:
        _AMBIENT_CONFIG = previous


def _validate_config(config: ShardConfig) -> None:
    if config.n_shards < 1:
        raise ReproError(
            f"shard count must be a positive integer, "
            f"got {config.n_shards}"
        )
    if config.mode not in PARTITION_MODES:
        raise ReproError(
            f"unknown partition mode {config.mode!r}; "
            f"expected one of {', '.join(PARTITION_MODES)}"
        )


def current_shard_config() -> ShardConfig:
    """The sharding parameters the next sharded run will use.

    Precedence: the innermost :func:`use_shards` scope, then the
    ``REPRO_SHARDS`` / ``REPRO_SHARD_MODE`` / ``REPRO_SHARD_SEED``
    environment variables, then ``DEFAULT_SHARD_COUNT`` contiguous.
    """
    if _AMBIENT_CONFIG is not None:
        return _AMBIENT_CONFIG
    raw = os.environ.get(SHARDS_ENV_VAR)
    if raw is None:
        n_shards = DEFAULT_SHARD_COUNT
    else:
        try:
            n_shards = int(raw)
        except ValueError:
            raise ReproError(
                f"{SHARDS_ENV_VAR} must be a positive integer, "
                f"got {raw!r}"
            ) from None
    mode = os.environ.get(SHARD_MODE_ENV_VAR, CONTIGUOUS)
    raw_seed = os.environ.get(SHARD_SEED_ENV_VAR)
    try:
        seed = int(raw_seed) if raw_seed is not None else 0
    except ValueError:
        raise ReproError(
            f"{SHARD_SEED_ENV_VAR} must be an integer, got {raw_seed!r}"
        ) from None
    config = ShardConfig(n_shards=n_shards, mode=mode, seed=seed)
    _validate_config(config)
    return config


#: Live worker pids of the most recently started coordinator — the
#: hook the worker-death tests use to SIGKILL a real worker mid-run.
_ACTIVE_PIDS: Tuple[int, ...] = ()


def active_worker_pids() -> Tuple[int, ...]:
    """Pids of the shard workers of the currently running sharded
    execution (empty outside one)."""
    return _ACTIVE_PIDS


class _ShardedState:
    """Checkpoint handle for the sharded backend.

    Deliberately *not* a subclass of the engine's ``_ScalarState``:
    the registered capture/restore capability dispatches on that type
    to route fallback runs, so the sharded handle must stay distinct.
    It carries the same attribute shape (``contexts`` / ``faults`` /
    ``rounds`` / ``messages`` / ``traces``) plus the live coordinator,
    which gathers the authoritative per-vertex state from the workers
    at capture time.
    """

    __slots__ = (
        "contexts",
        "faults",
        "rounds",
        "messages",
        "traces",
        "coordinator",
    )

    def __init__(
        self, contexts: List[Any], faults: Optional[Any]
    ) -> None:
        self.contexts = contexts
        self.faults = faults
        self.rounds = 0
        self.messages = 0
        self.traces: List[RoundTrace] = []
        self.coordinator: Optional[_ShardCoordinator] = None


class _ShardCoordinator:
    """Owns the worker processes and the barrier protocol."""

    def __init__(
        self,
        part: Partition,
        contexts: List[Any],
        visible: List[Any],
        offsets: List[int],
        targets: List[int],
        algorithm: Any,
        clock: _Clock,
        faults: Optional[Any],
        observing: bool,
        start_round: int,
    ) -> None:
        self.part = part
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ReproError(
                "the sharded backend requires the 'fork' start method"
            )
        mp = multiprocessing.get_context("fork")
        # All pipes are created before any worker starts, so every
        # worker can close every inherited end that is not its own —
        # the fd hygiene that turns a SIGKILLed sibling into a clean
        # EOF at the parent instead of a hang.
        pairs = [mp.Pipe(duplex=True) for _ in range(part.n_shards)]
        self.conns = [parent_end for parent_end, _ in pairs]
        child_ends = [child_end for _, child_end in pairs]
        self.procs = []
        for s in range(part.n_shards):
            siblings = [
                end for t, end in enumerate(child_ends) if t != s
            ] + list(self.conns)
            proc = mp.Process(
                target=shard_worker,
                args=(
                    child_ends[s],
                    siblings,
                    s,
                    part.shards[s],
                    part.consumers,
                    contexts,
                    visible,
                    offsets,
                    targets,
                    algorithm,
                    clock,
                    faults,
                    observing,
                    start_round,
                ),
                daemon=True,
                name=f"repro-shard-{s}",
            )
            proc.start()
            self.procs.append(proc)
        for child_end in child_ends:
            child_end.close()
        global _ACTIVE_PIDS
        _ACTIVE_PIDS = tuple(
            proc.pid for proc in self.procs if proc.pid is not None
        )

    # -- the barrier ---------------------------------------------------
    def step(
        self,
        rounds: int,
        ghosts: List[List[Tuple[int, Any]]],
    ) -> List[Dict[str, Any]]:
        """One synchronized round: broadcast, then gather every reply."""
        for s, conn in enumerate(self.conns):
            try:
                conn.send(("step", rounds, ghosts[s]))
            except (BrokenPipeError, OSError) as exc:
                self._death(s, rounds, exc)
        return [self._recv(s, rounds) for s in range(len(self.conns))]

    def _recv(self, s: int, rounds: int) -> Any:
        try:
            message = self.conns[s].recv()
        except (EOFError, OSError) as exc:
            self._death(s, rounds, exc)
        if message[0] == "error":
            raise message[1]
        return message[1]

    def _death(self, s: int, rounds: int, exc: BaseException) -> None:
        proc = self.procs[s]
        proc.join(timeout=1.0)
        raise WorkerCrashError(
            f"shard worker {s} (pid {proc.pid}) died mid-run at round "
            f"{rounds} (exit code {proc.exitcode}); the run cannot "
            f"continue — resume from the latest checkpoint to recover"
        ) from exc

    # -- checkpoint capture -------------------------------------------
    def capture(self, state: _ShardedState) -> Dict[str, Any]:
        """Gather a ``"scalar"``-format snapshot from the workers.

        Each worker owns its vertices' authoritative contexts (and the
        receiver-keyed slice of the duplicate-delivery buffer), so the
        merge in vertex order reproduces exactly what the serial
        engines' ``_capture_scalar_state`` would record — which is why
        a sharded snapshot resumes at any shard count, or on any other
        backend.
        """
        for s, conn in enumerate(self.conns):
            try:
                conn.send(("capture",))
            except (BrokenPipeError, OSError) as exc:
                self._death(s, state.rounds, exc)
        n = len(state.contexts)
        nodes: List[Any] = [None] * n
        merged_last: Dict[Tuple[int, int], Any] = {}
        have_last = False
        owner = self.part.owner
        for s in range(len(self.conns)):
            shard_nodes, fault_last = self._recv(s, state.rounds)
            for v, snap in zip(self.part.shards[s], shard_nodes):
                nodes[v] = snap
            if fault_last is not None:
                # Every worker inherited the full (restored) buffer;
                # only the entries keyed by a vertex this shard owns
                # are authoritative.
                have_last = True
                for key, value in fault_last.items():
                    if owner[key[0]] == s:
                        merged_last[key] = value
        return {
            "format": "scalar",
            "rounds": state.rounds,
            "messages": state.messages,
            "traces": list(state.traces),
            "nodes": nodes,
            "fault_last": merged_last if have_last else None,
        }

    # -- run completion ------------------------------------------------
    def finish(
        self, n: int, rounds: int
    ) -> Tuple[List[Any], Dict[int, str]]:
        """Collect every shard's outputs and failures, vertex-ordered."""
        for s, conn in enumerate(self.conns):
            try:
                conn.send(("finish",))
            except (BrokenPipeError, OSError) as exc:
                self._death(s, rounds, exc)
        outputs: List[Any] = [None] * n
        failure_by_vertex: List[Optional[str]] = [None] * n
        for s in range(len(self.conns)):
            pairs = self._recv(s, rounds)
            for v, (output, failure) in zip(self.part.shards[s], pairs):
                outputs[v] = output
                failure_by_vertex[v] = failure
        failures = {
            v: reason
            for v, reason in enumerate(failure_by_vertex)
            if reason
        }
        return outputs, failures

    def shutdown(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("exit",))
            except Exception:
                pass
        for proc in self.procs:
            proc.join(timeout=2.0)
        for proc in self.procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self.conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover
                pass
        global _ACTIVE_PIDS
        _ACTIVE_PIDS = ()


class _SetupRecorder:
    """Captures the setup pass's observable events (publish / failure /
    halt, per vertex ascending) so the parent can synthesize the same
    setup batch the scalar shim assembles — ``_run_setup`` only ever
    calls these three hub methods."""

    __slots__ = ("publishes", "halts", "failures")

    def __init__(self) -> None:
        self.publishes: List[Tuple[int, Any]] = []
        self.halts: List[Tuple[int, Any]] = []
        self.failures: List[Tuple[int, str]] = []

    def publish(self, round_index: int, vertex: int, value: Any) -> None:
        self.publishes.append((vertex, value))

    def failure(
        self, round_index: int, vertex: int, reason: str
    ) -> None:
        self.failures.append((vertex, reason))

    def halt(self, round_index: int, vertex: int, output: Any) -> None:
        self.halts.append((vertex, output))

    def setup_batch(self) -> RoundBatch:
        return RoundBatch(
            SETUP_ROUND,
            published=[v for v, _ in self.publishes],
            publish_values=[value for _, value in self.publishes],
            halted_verts=[v for v, _ in self.halts],
            halt_values=[value for _, value in self.halts],
            failed=[v for v, _ in self.failures],
            fail_reasons=[reason for _, reason in self.failures],
        )


def _merge_round_batch(
    rounds: int,
    active: int,
    awake: int,
    halted: int,
    messages: int,
    segments: Sequence[Tuple[Any, ...]],
    faults: Optional[Any],
) -> RoundBatch:
    """Merge per-shard batch segments in canonical vertex order.

    Each segment's columns are ascending over a disjoint vertex set, so
    a stable sort by vertex both interleaves the shards and preserves
    every vertex's intra-column event order (a vertex's delivery
    faults, in port order, all live in one segment).  Crash markers are
    materialized here into the parent's own
    :class:`~repro.core.errors.CrashStopFault` events — the parent
    activated the identical plan, and the event's ``run_meta`` carries
    the graph handle, which never crosses a pipe.
    """
    stepped: List[int] = []
    publishes: List[Tuple[int, Any]] = []
    halts: List[Tuple[int, Any]] = []
    failures: List[Tuple[int, str]] = []
    fault_entries: List[Tuple[int, Any]] = []
    for segment in segments:
        seg_stepped, seg_pub, seg_halt, seg_fail, seg_fault = segment
        stepped.extend(seg_stepped)
        publishes.extend(seg_pub)
        halts.extend(seg_halt)
        failures.extend(seg_fail)
        fault_entries.extend(seg_fault)
    stepped.sort()
    publishes.sort(key=lambda pair: pair[0])
    halts.sort(key=lambda pair: pair[0])
    failures.sort(key=lambda pair: pair[0])
    fault_entries.sort(key=lambda pair: pair[0])
    fault_column: List[Tuple[int, Any]] = []
    for v, event in fault_entries:
        if event is CRASH_MARKER:
            assert faults is not None
            event = faults.crash_event(rounds, v)
        fault_column.append((v, event))
    return RoundBatch(
        rounds,
        active=active,
        awake=awake,
        halted=halted,
        messages=messages,
        stepped=stepped,
        published=[v for v, _ in publishes],
        publish_values=[value for _, value in publishes],
        halted_verts=[v for v, _ in halts],
        halt_values=[value for _, value in halts],
        failed=[v for v, _ in failures],
        fail_reasons=[reason for _, reason in failures],
        faults=fault_column,
    )


def run_local_sharded(
    graph: Graph,
    algorithm: Any,
    model: Any,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
    trace: bool = False,
    observers: Optional[Sequence[Any]] = None,
    fault_plan: Optional[Any] = None,
    checkpoint: Optional[Any] = None,
) -> RunResult:
    """Entry point of the ``"sharded"`` backend (same signature and
    same RunResult as every other backend)."""
    config = current_shard_config()

    def fall_back() -> RunResult:
        # The checkpoint session rides along: the fallback decision is
        # deterministic for a fixed configuration, so a resumed run
        # falls back exactly when the interrupted run did and the
        # per-node engine consumes the (scalar-format) snapshot.
        return _run_local_fast(
            graph,
            algorithm,
            model,
            ids=ids,
            seed=seed,
            node_inputs=node_inputs,
            global_params=global_params,
            max_rounds=max_rounds,
            rng_factory=rng_factory,
            allow_duplicate_ids=allow_duplicate_ids,
            trace=trace,
            observers=observers,
            fault_plan=fault_plan,
            checkpoint=checkpoint,
        )

    attached = _attached_observers(observers)
    if attached and not all(
        getattr(obs, "batch_capable", False) for obs in attached
    ):
        # Legacy per-event observers need per-node stepping in one
        # process; batch-capable ones consume the merged
        # ``on_round_batch`` deliveries and keep the run sharded.
        return fall_back()
    if "fork" not in multiprocessing.get_all_start_methods():
        return fall_back()
    if multiprocessing.current_process().daemon:
        # Daemonic pool workers (resilient sweeps) may not fork
        # children of their own; the per-node engine is bit-identical.
        return fall_back()
    observing = bool(attached)

    contexts = build_contexts(
        graph,
        model,
        ids=ids,
        seed=seed,
        node_inputs=node_inputs,
        global_params=global_params,
        rng_factory=rng_factory,
        allow_duplicate_ids=allow_duplicate_ids,
    )
    n = graph.num_vertices
    meta = RunMeta(
        algorithm=algorithm.name,
        model=model,
        n=n,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        max_rounds=max_rounds,
        seed=seed,
        graph=graph,
    )
    plan = fault_plan if fault_plan is not None else active_fault_plan()
    faults = plan.activate(meta) if plan is not None else None
    clock = _Clock()
    state = _ShardedState(contexts, faults)
    part = partition_graph(
        graph, config.n_shards, mode=config.mode, seed=config.seed
    )
    resumed = (
        checkpoint.engine_payload("scalar")
        if checkpoint is not None
        else None
    )
    coordinator: Optional[_ShardCoordinator] = None
    rounds = 0
    messages = 0
    try:
        if resumed is not None:
            # Resume: the snapshot replaces run_start + setup — the
            # restored observers already emitted those events in the
            # interrupted process, and restored contexts already carry
            # their post-setup state.
            checkpoint.restore_engine(state, resumed)
            for ctx in contexts:
                ctx._clock = clock
            clock.now = state.rounds
        else:
            recorder = _SetupRecorder() if observing else None
            _run_setup(contexts, algorithm, clock, recorder)
            if observing:
                # Observable events start only after setup succeeded,
                # in the vectorized backend's order: run_start, the
                # backend announcement, then the setup batch.
                for obs in attached:
                    obs.on_run_start(meta)
                for obs in attached:
                    obs.on_backend_info("sharded", None)
                assert recorder is not None
                setup_batch = recorder.setup_batch()
                for obs in attached:
                    obs.on_round_batch(setup_batch)

        visible: List[Any] = [ctx._pub for ctx in contexts]
        offsets, targets = flat_adjacency(graph)

        rounds = state.rounds
        messages = state.messages
        messages_per_round = 2 * graph.num_edges
        traces: List[RoundTrace] = state.traces

        # Global scheduling counts; the per-shard wake buckets live in
        # the workers, the parent only tracks their aggregates.
        runnable_total = 0
        parked_total = 0
        wakes: List[int] = []
        for ctx in contexts:
            if ctx.halted:
                continue
            wake = ctx._wake_round
            if wake is not None and wake > rounds:
                parked_total += 1
                wakes.append(wake)
            else:
                runnable_total += 1
        next_wake: Optional[int] = min(wakes) if wakes else None

        budget = faults.budget if faults is not None else None

        if runnable_total or parked_total:
            coordinator = _ShardCoordinator(
                part,
                contexts,
                visible,
                offsets,
                targets,
                algorithm,
                clock,
                faults,
                observing,
                rounds,
            )
            state.coordinator = coordinator

        pending: List[List[Tuple[int, Any]]] = [
            [] for _ in range(part.n_shards)
        ]
        while runnable_total or parked_total:
            if checkpoint is not None and checkpoint.due(rounds):
                state.rounds = rounds
                state.messages = messages
                checkpoint.save(state, rounds)
            if budget is not None and rounds >= budget:
                budget_error = faults.budget_error(rounds)
                if observing:
                    # Run-level fault: delivered immediately (never
                    # part of a batch), exactly like the scalar
                    # engines' vertex-None ``on_fault`` before the
                    # raise.
                    for obs in attached:
                        obs.on_run_fault(rounds, budget_error)
                raise budget_error
            if rounds >= max_rounds:
                raise SimulationError(
                    f"{algorithm.name!r} exceeded {max_rounds} rounds "
                    f"on n={n} (likely non-terminating)",
                    round=rounds,
                    run_meta=meta,
                )
            if (
                runnable_total == 0
                and next_wake is not None
                and next_wake > rounds
            ):
                # Every live vertex sleeps on every shard: the global
                # bulk-skip is the minimum over shard wake rounds
                # (clamped by max_rounds and any injected budget),
                # with the same synthesized trace entries and empty
                # round batches the serial engines emit.
                skip_to = min(next_wake, max_rounds)
                if budget is not None and budget < skip_to:
                    skip_to = budget
                skip = skip_to - rounds
                if trace:
                    traces.extend(
                        RoundTrace(active=parked_total, awake=0, halted=0)
                        for _ in range(skip)
                    )
                if observing:
                    for r in range(rounds, rounds + skip):
                        empty = RoundBatch(
                            r,
                            active=parked_total,
                            messages=messages_per_round,
                        )
                        for obs in attached:
                            obs.on_round_batch(empty)
                rounds += skip
                messages += skip * messages_per_round
                continue
            assert coordinator is not None
            replies = coordinator.step(rounds, pending)
            pending = [[] for _ in range(part.n_shards)]
            active_now = 0
            awake_now = 0
            halted_this_round = 0
            runnable_total = 0
            parked_total = 0
            shard_wakes: List[int] = []
            for reply in replies:
                active_now += reply["active"]
                awake_now += reply["awake"]
                halted_this_round += reply["halted"]
                runnable_total += reply["runnable"]
                parked_total += reply["parked"]
                if reply["next_wake"] is not None:
                    shard_wakes.append(reply["next_wake"])
                for v, value in reply["boundary"]:
                    for s in part.consumers[v]:
                        pending[s].append((v, value))
            next_wake = min(shard_wakes) if shard_wakes else None
            if trace:
                traces.append(
                    RoundTrace(
                        active=active_now,
                        awake=awake_now,
                        halted=halted_this_round,
                    )
                )
            if observing:
                batch = _merge_round_batch(
                    rounds,
                    active_now,
                    awake_now,
                    halted_this_round,
                    messages_per_round,
                    [reply["batch"] for reply in replies],
                    faults,
                )
                for obs in attached:
                    obs.on_round_batch(batch)
            rounds += 1
            messages += messages_per_round

        if coordinator is not None:
            outputs, failures = coordinator.finish(n, rounds)
        else:
            # Zero live vertices after setup/restore: nothing was ever
            # forked; the parent contexts are authoritative.
            outputs = [ctx.output for ctx in contexts]
            failures = {
                v: ctx.failure
                for v, ctx in enumerate(contexts)
                if ctx.failure
            }
    except BaseException as exc:
        # The run died mid-flight (algorithm exception surfaced from a
        # worker, injected budget, a killed worker): give buffering
        # observers one flush so partial runs keep their telemetry,
        # then keep propagating.
        if observing:
            for obs in attached:
                obs.on_run_abort(rounds, exc)
        raise
    finally:
        if coordinator is not None:
            state.coordinator = None
            coordinator.shutdown()

    result = RunResult(
        outputs=outputs,
        rounds=rounds,
        messages=messages,
        failures=failures,
        trace=traces,
    )
    if observing:
        for obs in attached:
            obs.on_run_end(result)
    return result


def capture_sharded_state(handle: _ShardedState) -> Dict[str, Any]:
    """The ``"sharded"`` backend's checkpoint capture capability.

    Snapshots are written in the ``"scalar"`` format: resumable at any
    shard count and on any scalar-compatible backend.
    """
    coordinator = handle.coordinator
    if coordinator is not None:
        return coordinator.capture(handle)
    # Pre-fork (or post-shutdown) capture: the parent contexts are
    # authoritative — identical merge, no pipes involved.
    from ...core.engine import _capture_scalar_state

    result: Dict[str, Any] = _capture_scalar_state(handle)  # type: ignore[arg-type]
    return result


def restore_sharded_state(
    handle: _ShardedState, payload: Dict[str, Any]
) -> None:
    """The ``"sharded"`` backend's checkpoint restore capability.

    Restores happen in the parent before the workers are forked, so
    the engine's scalar restore applies verbatim (the handle carries
    the same attribute shape).
    """
    from ...core.engine import _restore_scalar_state

    _restore_scalar_state(handle, payload)  # type: ignore[arg-type]

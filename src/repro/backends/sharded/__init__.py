"""``repro.backends.sharded`` — the multi-process sharded round engine.

The fourth registered engine backend: partitions the CSR graph across
N forked worker processes (contiguous or seeded-random vertex
partition), steps each shard locally, and exchanges only boundary
messages at round barriers over ``multiprocessing`` pipes.  Registered
as ``"sharded"`` in :mod:`repro.core.backend`; select it with
``run_local(..., backend="sharded")``, ``use_backend("sharded")``,
``REPRO_BACKEND=sharded``, or the CLI's ``--backend sharded
--shards N``.

The determinism contract (RunResult and JSONL trace bytes identical to
the serial fast engine for every driver, shard count, and fault plan)
and the barrier protocol are documented in ``docs/sharding.md``; the
``PartitionInvariance`` relation in :mod:`repro.verify` enforces the
contract mechanically.
"""

from .coordinator import (
    DEFAULT_SHARD_COUNT,
    SHARD_MODE_ENV_VAR,
    SHARD_SEED_ENV_VAR,
    SHARDS_ENV_VAR,
    ShardConfig,
    WorkerCrashError,
    active_worker_pids,
    capture_sharded_state,
    current_shard_config,
    restore_sharded_state,
    run_local_sharded,
    use_shards,
)
from .partition import (
    CONTIGUOUS,
    PARTITION_MODES,
    RANDOM,
    Partition,
    boundary_edges,
    partition_graph,
)

__all__ = [
    "CONTIGUOUS",
    "DEFAULT_SHARD_COUNT",
    "PARTITION_MODES",
    "RANDOM",
    "Partition",
    "SHARDS_ENV_VAR",
    "SHARD_MODE_ENV_VAR",
    "SHARD_SEED_ENV_VAR",
    "ShardConfig",
    "WorkerCrashError",
    "active_worker_pids",
    "boundary_edges",
    "capture_sharded_state",
    "current_shard_config",
    "partition_graph",
    "restore_sharded_state",
    "run_local_sharded",
    "use_shards",
]

"""Bit-exact vectorized Mersenne Twister: n CPython ``Random`` streams
as one numpy output buffer.

Why this exists: ``make_node_rngs`` materializes one ``random.Random``
object per vertex, and at n = 10⁶ the object construction alone costs
tens of seconds — dwarfing the vectorized engine's actual round work.
This module reproduces CPython's MT19937 *exactly* (same
``init_by_array`` seeding, same tempering, same ``random()`` /
``getrandbits`` / ``randrange`` word consumption, including the
rejection loop), so a RandLOCAL kernel can replay the scalar engines'
per-vertex draw sequences out of plain numpy arrays.

The bit-identity contract (checked by ``tests/test_backends.py``
against ``random.Random`` itself): for every vertex ``v``,

    VectorMT(seeds).randrange(...) / .random_runs(...)

consumes ``v``'s stream word-for-word like ``random.Random(seeds[v])``
— so interleaving vectorized rounds with scalar ones can never
desynchronize.

**Memory layout.**  A full MT state matrix would be ``(624, n)``
uint32 — 2.5 GB at n = 10⁶, and merely first-touching that many pages
costs tens of seconds.  The engine workloads consume only a few dozen
words per vertex, so the class instead keeps a ``(W, n)`` buffer of
*tempered output words* (W starts small), produced chunk-by-chunk
through one small reusable ``(624, chunk)`` scratch state.  If any
stream exhausts its W words, the buffer is regenerated from the seeds
at double the depth — positions are preserved, so a grow is invisible
to callers (just slower; sized hints avoid it).

CPython's integer seeding derives the ``init_by_array`` key from the
seed's 32-bit limbs, and the *key length* depends on the seed's bit
length.  The vectorized path handles the common two-limb case
(seed ≥ 2³²); the rare short seeds (probability 2⁻³² each under
``make_node_rngs``) are seeded through an actual ``random.Random`` and
copied in — exactness without a second vector code path.
"""

from __future__ import annotations

import random
from typing import List, Optional

import numpy as np

_N = 624
_M = 397
_MATRIX_A = np.uint32(0x9908B0DF)
_UPPER = np.uint32(0x80000000)
_LOWER = np.uint32(0x7FFFFFFF)

#: Columns processed per scratch pass (caps scratch at ~320 MB).
_CHUNK = 1 << 17

#: ``bit_length`` lookup for the randrange rejection loop (bounds the
#: supported range; plenty for palette-sized draws).
MAX_RANDRANGE = 1 << 16
_BITLEN = np.array(
    [0] + [int(v).bit_length() for v in range(1, MAX_RANDRANGE + 1)],
    dtype=np.uint32,
)

_init_genrand_base: Optional[np.ndarray] = None


def _base_state() -> np.ndarray:
    """``init_genrand(19650218)`` — the seed-independent starting state
    of ``init_by_array`` (computed once, shared by every vertex)."""
    global _init_genrand_base
    if _init_genrand_base is None:
        mt: List[int] = [19650218]
        for i in range(1, _N):
            prev = mt[i - 1]
            mt.append(
                (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
            )
        _init_genrand_base = np.array(mt, dtype=np.uint32)
    return _init_genrand_base


def _init_by_array_into(
    mt: np.ndarray, key0: np.ndarray, key1: np.ndarray
) -> None:
    """Vectorized two-limb ``init_by_array`` into the ``(624, k)``
    scratch ``mt`` (every column keyed by ``[key0, key1]``)."""
    mt[:] = _base_state()[:, None]
    terms = [key0, key1 + np.uint32(1)]  # key[j] + j, per j
    i, j = 1, 0
    for _ in range(_N):
        prev = mt[i - 1]
        mt[i] = (
            mt[i] ^ ((prev ^ (prev >> np.uint32(30))) * np.uint32(1664525))
        ) + terms[j]
        i += 1
        j ^= 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    for _ in range(_N - 1):
        prev = mt[i - 1]
        mt[i] = (
            mt[i]
            ^ ((prev ^ (prev >> np.uint32(30))) * np.uint32(1566083941))
        ) - np.uint32(i)
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    mt[0] = np.uint32(0x80000000)


def _twist(y: np.ndarray, src: np.ndarray) -> np.ndarray:
    return src ^ (y >> np.uint32(1)) ^ ((y & np.uint32(1)) * _MATRIX_A)


def _regenerate_prefix(mt: np.ndarray, depth: int) -> None:
    """Twist only the first ``depth`` rows of the next MT19937 block,
    in place, along axis 0 (rows past ``depth`` keep the old block —
    callers that stop at this block never read them).

    The C loop's source ``mt[kk + M - N]`` re-reads rows the loop has
    already rewritten, so the vectorized middle section must be split
    where the data dependency wraps: rows [227, 454) read chunk-1
    output, rows [454, 623) read the previous split's output.
    """
    d = min(depth, _N - _M)
    y = (mt[0:d] & _UPPER) | (mt[1:d + 1] & _LOWER)
    mt[0:d] = _twist(y, mt[_M:_M + d])
    if depth <= _N - _M:
        return
    split = 2 * (_N - _M)  # 454: where sources re-enter rewritten rows
    d = min(depth, split)
    y = (mt[_N - _M:d] & _UPPER) | (mt[_N - _M + 1:d + 1] & _LOWER)
    mt[_N - _M:d] = _twist(y, mt[0:d - (_N - _M)])
    if depth <= split:
        return
    d = min(depth, _N - 1)
    y = (mt[split:d] & _UPPER) | (mt[split + 1:d + 1] & _LOWER)
    mt[split:d] = _twist(y, mt[_N - _M:d - (_N - _M)])
    if depth < _N:
        return
    y = (mt[_N - 1] & _UPPER) | (mt[0] & _LOWER)
    mt[_N - 1] = _twist(y, mt[_M - 1])


def _regenerate(mt: np.ndarray) -> None:
    """One full MT19937 block twist, in place, along axis 0."""
    _regenerate_prefix(mt, _N)


def _temper(y: np.ndarray) -> np.ndarray:
    y = y ^ (y >> np.uint32(11))
    y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
    y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
    return y ^ (y >> np.uint32(18))


class VectorMT:
    """n independent MT19937 streams, bit-identical to
    ``[random.Random(s) for s in seeds]``.

    ``min_words`` sizes the initial per-vertex output buffer; streams
    that outrun it trigger a transparent (but costly at large n)
    regenerate-and-replay, so callers with a known draw budget should
    pass a generous bound.
    """

    def __init__(self, seeds: np.ndarray, min_words: int = 64) -> None:
        seeds = np.asarray(seeds, dtype=np.uint64)
        self.n = seeds.shape[0]
        self._seeds = seeds
        self._key0 = (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        self._key1 = (seeds >> np.uint64(32)).astype(np.uint32)
        self.words = max(1, min_words)
        self.pos = np.zeros(self.n, dtype=np.int64)
        self._refill()

    def _refill(self) -> None:
        """(Re)generate the first ``self.words`` tempered output words
        of every stream, chunk-by-chunk through one scratch state."""
        n, depth = self.n, self.words
        self.buf = np.empty((depth, n), dtype=np.uint32)
        nblocks = -(-depth // _N)
        scratch = np.empty((_N, min(_CHUNK, n)), dtype=np.uint32)
        for lo in range(0, n, _CHUNK):
            hi = min(lo + _CHUNK, n)
            mt = scratch[:, : hi - lo]
            _init_by_array_into(mt, self._key0[lo:hi], self._key1[lo:hi])
            short = np.flatnonzero(self._key1[lo:hi] == 0)
            # Seeds below 2³² have a one-limb init_by_array key (and
            # seed 0 a zero limb): rare under 64-bit derivation, so the
            # stdlib itself seeds them — exact by construction.
            for v in short.tolist():
                state = random.Random(int(self._seeds[lo + v])).getstate()
                mt[:, v] = np.array(state[1][:_N], dtype=np.uint32)
            # CPython seeding leaves the word index at 624: the first
            # draw twists a fresh block, and so does ours.  The last
            # block only twists the rows the buffer will keep.
            for b in range(nblocks):
                take = min(_N, depth - b * _N)
                if b + 1 == nblocks:
                    _regenerate_prefix(mt, take)
                else:
                    _regenerate(mt)
                self.buf[b * _N:b * _N + take, lo:hi] = _temper(mt[:take])

    def _grow(self, needed: int) -> None:
        while self.words < needed:
            self.words *= 2
        self._refill()

    def restore_positions(self, pos: np.ndarray) -> None:
        """Restore per-vertex draw cursors from a checkpoint snapshot.

        The output buffer itself needs no restoring: it is a pure
        function of the seeds and the current depth, and any cursor
        past the depth triggers the usual transparent grow-and-replay
        on that vertex's next draw.  This is what keeps checkpoints
        O(n) — ``(words, pos)`` fully determines every future draw.
        """
        self.pos[:] = np.asarray(pos, dtype=np.int64)

    def _next_words(self, verts: np.ndarray) -> np.ndarray:
        """One tempered 32-bit word from each of ``verts``' streams."""
        pos = self.pos[verts]
        if pos.size and int(pos.max()) >= self.words:
            self._grow(int(pos.max()) + 1)
        words = self.buf[pos, verts]
        self.pos[verts] = pos + 1
        return words

    def random(self, verts: np.ndarray) -> np.ndarray:
        """``random.random()`` for each vertex: two words, 53 bits."""
        a = self._next_words(verts) >> np.uint32(5)
        b = self._next_words(verts) >> np.uint32(6)
        return (
            a.astype(np.float64) * 67108864.0 + b.astype(np.float64)
        ) * (1.0 / 9007199254740992.0)

    def getrandbits(self, verts: np.ndarray, nbits: np.ndarray) -> np.ndarray:
        """``getrandbits(k)`` per vertex, ``1 <= k <= 32`` (one word)."""
        return self._next_words(verts) >> (
            np.uint32(32) - nbits.astype(np.uint32)
        )

    def randrange(self, verts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """``randrange(size)`` per vertex — CPython's
        ``_randbelow_with_getrandbits`` rejection loop, word-exact."""
        sizes = np.asarray(sizes, dtype=np.int64)
        if (sizes <= 0).any():
            raise ValueError("empty range for randrange()")
        if (sizes > MAX_RANDRANGE).any():
            raise ValueError(
                f"VectorMT.randrange supports sizes up to "
                f"{MAX_RANDRANGE}, got {int(sizes.max())}"
            )
        nbits = _BITLEN[sizes]
        result = self.getrandbits(verts, nbits).astype(np.int64)
        rejected = result >= sizes
        while rejected.any():
            idx = np.flatnonzero(rejected)
            redraw = self.getrandbits(verts[idx], nbits[idx])
            result[idx] = redraw.astype(np.int64)
            rejected[idx] = result[idx] >= sizes[idx]
        return result

    def random_runs(self, verts: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """``counts[i]`` consecutive ``random()`` draws per vertex,
        flattened vertex-major (each vertex's draws contiguous and in
        stream order — the scalar engines' iteration order)."""
        counts = np.asarray(counts, dtype=np.int64)
        offsets = np.zeros(verts.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        out = np.empty(int(offsets[-1]), dtype=np.float64)
        depth = int(counts.max()) if counts.size else 0
        for d in range(depth):
            sel = counts > d
            out[offsets[:-1][sel] + d] = self.random(verts[sel])
        return out

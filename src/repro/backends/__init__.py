"""Optional engine backends (see :mod:`repro.core.backend`).

Modules here may have environment requirements (``repro[perf]`` numpy
for :mod:`.vectorized`, the ``fork`` start method for :mod:`.sharded`);
nothing in the core import path imports them eagerly — the backend
registry resolves them lazily when selected.
"""

"""Optional engine backends (see :mod:`repro.core.backend`).

Modules here may depend on extras (``repro[perf]`` for numpy); nothing
in the core import path imports them eagerly — the backend registry
resolves them lazily when selected.
"""

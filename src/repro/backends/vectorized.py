"""The ``"vectorized"`` backend: whole rounds as numpy kernels.

Instead of stepping vertices one Python call at a time, this backend
executes each communication round as a handful of array operations over
the CSR adjacency from :func:`repro.core.engine.flat_adjacency`:
inbox *gathers* become fancy indexing on ``targets``, per-vertex
aggregation becomes segment reductions over the CSR offsets, and the
dirty-commit pass becomes a masked scatter.  That is what makes the
paper's asymptotic regime (n = 10^6–10^7, experiment E5) reachable —
see ``docs/performance.md`` for the design and measured speedups.

**Bit-identity contract.**  A registered :class:`RoundKernel` is a
vectorized *reimplementation* of one algorithm's ``setup``/``step``;
the parameterized equivalence relation (``repro.verify``) pins its
RunResult — outputs, rounds, messages, failures, trace — to the scalar
engines.  RandLOCAL kernels consume the exact same per-vertex
``random.Random`` streams in the exact same per-vertex draw order, so
even sampled executions match draw-for-draw.

**Fallback rules.**  The harness silently delegates to the fast
per-node engine whenever vectorized execution could not be
bit-identical or is impossible:

- no kernel is registered for the algorithm's type;
- a *legacy* (non batch-capable) observer is attached — per-event
  callbacks require per-node stepping.  Batch-capable observers
  (:class:`repro.obs.BatchRunObserver` subclasses, which includes
  ``MetricsObserver`` and ``JsonlTraceObserver``) stay on the
  vectorized path: the harness delivers whole rounds columnar-ly via
  ``on_round_batch``, with kernels reporting their published values
  through :meth:`VectorRun.record_publish`, and the resulting
  telemetry (metrics summaries, trace bytes) is identical to the
  scalar engines' per-event stream;
- the active fault plan touches messages (drop/duplicate/corrupt need
  materialized per-port inboxes) — round budgets stay on the
  vectorized path, and so do crash-stop faults when the kernel
  declares :attr:`RoundKernel.handles_crashes` (all shipped kernels
  do: their published-state arrays are scattered only for ``awake``
  vertices, so a crashed vertex's last published value stays frozen);
- the kernel's ``supports()`` veto — unusual configurations (oversized
  palettes, missing inputs) where the scalar path is the spec.

The fallback is an implementation detail: callers always observe
engine-identical behavior, including error behavior.  One documented
exception on *raising* observed runs: the batched stream stops at the
last completed round boundary, whereas the scalar stream may include a
prefix of the partial round (both satisfy the observer contract's
"the stream simply stops").
"""

from __future__ import annotations

import os
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..core.algorithm import SyncAlgorithm
from ..core.checkpoint import CheckpointSession
from ..core.context import Model
from ..core.engine import (
    DEFAULT_MAX_ROUNDS,
    SETUP_ROUND,
    RoundTrace,
    RunMeta,
    RunResult,
    _attached_observers,
    _run_local_fast,
    active_fault_plan,
    flat_adjacency,
)
from ..core.errors import DuplicateIDError, FaultEvent, ReproError, SimulationError
from ..core.ids import check_unique_ids, sequential_ids
from ..graphs.graph import Graph
from ..obs.observer import RoundBatch
from .mt19937 import VectorMT

#: Sentinel distinguishing "no constant value" in record_publish.
_NO_VALUE = object()

#: Kernel registry: algorithm class -> RoundKernel subclass.
_KERNELS: Dict[type, Type["RoundKernel"]] = {}

_kernels_imported = False


def register_kernel(
    algorithm_cls: type,
) -> Callable[[Type["RoundKernel"]], Type["RoundKernel"]]:
    """Class decorator registering a kernel for one algorithm type."""

    def decorate(kernel_cls: Type["RoundKernel"]) -> Type["RoundKernel"]:
        _KERNELS[algorithm_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_for(algorithm: SyncAlgorithm) -> Optional[Type["RoundKernel"]]:
    """The registered kernel class for ``algorithm`` (exact type match)."""
    _ensure_kernels()
    return _KERNELS.get(type(algorithm))


def _ensure_kernels() -> None:
    """Import the shipped kernel definitions exactly once."""
    global _kernels_imported
    if not _kernels_imported:
        from ..algorithms import kernels  # noqa: F401  (registration side effect)

        _kernels_imported = True


# ---------------------------------------------------------------------------
# Segment helpers over CSR slices
# ---------------------------------------------------------------------------


def edge_slices(
    offsets: np.ndarray, verts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR edge slots owned by ``verts``, segment-shaped.

    Returns ``(e, seg_off, ptr)``: ``e`` lists the CSR slot index of
    every edge of every vertex in ``verts`` (port order preserved),
    ``seg_off`` are the per-vertex segment offsets into ``e`` (length
    ``len(verts) + 1``), and ``ptr[j]`` is the position in ``verts`` of
    the vertex owning ``e[j]``.
    """
    starts = offsets[verts]
    counts = offsets[verts + 1] - starts
    seg_off = np.zeros(verts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_off[1:])
    total = int(seg_off[-1])
    ptr = np.repeat(
        np.arange(verts.size, dtype=np.int64), counts
    )
    within = np.arange(total, dtype=np.int64) - seg_off[ptr]
    e = starts[ptr] + within
    return e, seg_off, ptr


def segment_or(values: np.ndarray, seg_off: np.ndarray) -> np.ndarray:
    """Per-segment bitwise OR (identity 0) of ``values`` partitioned by
    ``seg_off``; safe for empty segments (degree-0 vertices)."""
    nseg = seg_off.size - 1
    if values.size == 0:
        return np.zeros(nseg, dtype=np.int64)
    padded = np.append(values, values.dtype.type(0))
    out = np.bitwise_or.reduceat(padded, seg_off[:-1])
    out[seg_off[:-1] == seg_off[1:]] = 0
    return out


_SWAR_M1 = np.uint64(0x5555555555555555)
_SWAR_M2 = np.uint64(0x3333333333333333)
_SWAR_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_SWAR_H01 = np.uint64(0x0101010101010101)


def _popcount_swar(masks: np.ndarray) -> np.ndarray:
    """Branch-free SWAR popcount for numpy < 2.0 (no
    ``np.bitwise_count``).  Inputs are non-negative int64 masks."""
    x = masks.astype(np.uint64)
    x = x - ((x >> np.uint64(1)) & _SWAR_M1)
    x = (x & _SWAR_M2) + ((x >> np.uint64(2)) & _SWAR_M2)
    x = (x + (x >> np.uint64(4))) & _SWAR_M4
    return ((x * _SWAR_H01) >> np.uint64(56)).astype(np.int64)


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def popcount(masks: np.ndarray) -> np.ndarray:
        """Per-element set-bit count of non-negative int64 masks."""
        return np.bitwise_count(masks).astype(np.int64)

else:  # pragma: no cover — exercised directly by the test suite
    popcount = _popcount_swar


# ---------------------------------------------------------------------------
# The run handle kernels execute against
# ---------------------------------------------------------------------------


class VectorRun:
    """Shared state of one vectorized run, handed to the kernel.

    The harness owns scheduling (wake buckets, bulk skip, crashes,
    budgets, trace); the kernel owns the algorithm state and publishes.
    Kernels report lifecycle changes through :meth:`halt` and
    :meth:`sleep` — the exact analogues of ``ctx.halt`` and
    ``ctx.sleep_until``.
    """

    def __init__(
        self,
        graph: Graph,
        model: Model,
        *,
        ids: Optional[Sequence[int]],
        seed: Optional[int],
        node_inputs: Optional[Sequence[Dict[str, Any]]],
        global_params: Optional[Dict[str, Any]],
        rng_factory: Optional[Any],
        allow_duplicate_ids: bool,
    ) -> None:
        n = graph.num_vertices
        # Mirror build_contexts' model validation verbatim, so
        # configuration errors are backend-identical.
        if model is Model.DET:
            if ids is None:
                ids = sequential_ids(n)
            if len(ids) != n:
                raise DuplicateIDError(f"need {n} IDs, got {len(ids)}")
            if not allow_duplicate_ids:
                check_unique_ids(ids)
            try:
                self.ids: Optional[np.ndarray] = np.asarray(
                    [int(x) for x in ids], dtype=np.int64
                )
            except OverflowError:
                self.ids = None  # kernels needing IDs must veto
        else:
            if ids is not None:
                raise SimulationError(
                    "RandLOCAL vertices are undifferentiated; "
                    "do not pass IDs"
                )
            self.ids = None
        self.seed = seed
        #: Custom per-vertex stream factories cannot be vectorized;
        #: RandLOCAL kernels must veto when this is set.
        self.rng_factory = rng_factory
        self._vector_rng: Optional[VectorMT] = None
        self.graph = graph
        self.model = model
        self.n = n
        self.num_edges = graph.num_edges
        self.max_degree = graph.max_degree
        offsets_list, targets_list = flat_adjacency(graph)
        self.offsets = np.asarray(offsets_list, dtype=np.int64)
        self.targets = np.asarray(targets_list, dtype=np.int64)
        self.node_inputs = node_inputs
        self.globals: Dict[str, Any] = dict(global_params or {})
        self.halted = np.zeros(n, dtype=bool)
        self.wake = np.full(n, -1, dtype=np.int64)
        self.outputs: List[Any] = [None] * n
        self.failures: Dict[int, str] = {}
        #: Vertices halted in the round being executed (harness-reset).
        self.halted_this_round = 0
        #: True when batch-capable observers are attached; kernels must
        #: then report publishes via :meth:`record_publish` (a no-op
        #: otherwise, so the unobserved hot path pays one bool test).
        self.observing = False
        self._pub_segments: List[Tuple[np.ndarray, Any, Any, Any, Any]] = []
        self._halt_segments: List[Tuple[np.ndarray, List[Any]]] = []

    def vector_rng(self, min_words: int = 64) -> VectorMT:
        """The run's per-vertex random streams as one :class:`VectorMT`.

        Built lazily (DET runs and vetoed kernels never pay for it)
        from the same master-seed derivation as ``make_node_rngs``, so
        vertex ``v``'s stream is bit-identical to the scalar engines'
        ``ctx.random``.  ``min_words`` is the kernel's per-vertex draw
        budget hint (only the first call sizes the buffer; outrunning
        it stays correct, just slower).
        """
        if self._vector_rng is None:
            if self.rng_factory is not None:
                raise SimulationError(
                    "custom rng_factory streams cannot be vectorized"
                )
            cap = os.environ.get("REPRO_VECTOR_WORD_CAP")
            if cap:
                # Supervisor degradation ladder, stage 1: clamp the
                # initial buffer *hint* to shrink peak RSS.  Streams
                # that outrun the cap still grow on demand, so results
                # stay bit-identical — just slower.
                try:
                    min_words = min(min_words, max(1, int(cap)))
                except ValueError:
                    pass
            master = random.Random(self.seed)
            seeds = np.fromiter(
                (master.getrandbits(64) for _ in range(self.n)),
                dtype=np.uint64,
                count=self.n,
            )
            self._vector_rng = VectorMT(seeds, min_words=min_words)
        return self._vector_rng

    def halt(self, verts: np.ndarray, outputs: Any) -> None:
        """Halt ``verts`` with per-vertex ``outputs`` (array or list).

        Output values are converted to plain Python objects so the
        RunResult (and anything serialized from it) is byte-identical
        to the scalar engines'.
        """
        if verts.size == 0:
            return
        self.halted[verts] = True
        self.halted_this_round += int(verts.size)
        values = (
            outputs.tolist()
            if isinstance(outputs, np.ndarray)
            else outputs
        )
        out = self.outputs
        for v, value in zip(verts.tolist(), values):
            out[v] = value
        if self.observing:
            self._halt_segments.append(
                (
                    verts,
                    values if isinstance(outputs, np.ndarray) else list(values),
                )
            )

    def record_publish(
        self,
        verts: np.ndarray,
        values: Any = None,
        *,
        value_const: Any = _NO_VALUE,
        values_fn: Optional[Callable[[], Sequence[Any]]] = None,
        payload_bytes: Any = None,
    ) -> None:
        """Report this round's published values for ``verts``.

        A no-op unless the run is observed (:attr:`observing`), so
        kernels call it unconditionally at every scatter site.  The
        reported values must be *exactly* what the scalar algorithm
        passes to ``ctx.publish`` for those vertices — the
        observer-neutrality relation pins trace bytes across backends.

        Exactly one of three value forms must be given: ``values`` (a
        sequence/array aligned with ``verts``), ``value_const`` (one
        shared value for every vertex), or ``values_fn`` (a thunk
        returning the aligned sequence, called only if an observer
        actually needs materialized values — payload-value traces).
        ``payload_bytes`` optionally pre-computes
        :func:`repro.obs.estimate_payload_bytes` per vertex (an aligned
        int array, or one int for all) so byte accounting never has to
        materialize values; omit it to let observers derive sizes from
        the values themselves.
        """
        if not self.observing or verts.size == 0:
            return
        if values is None and value_const is _NO_VALUE and values_fn is None:
            raise TypeError(
                "record_publish needs values, value_const, or values_fn"
            )
        self._pub_segments.append(
            (verts, payload_bytes, values, value_const, values_fn)
        )

    def sleep(self, verts: np.ndarray, wake_rounds: np.ndarray) -> None:
        """Park ``verts`` until their ``wake_rounds`` (absolute)."""
        self.wake[verts] = wake_rounds


class RoundKernel:
    """Vectorized implementation of one algorithm's rounds.

    Subclasses implement:

    - ``supports(algorithm, run)`` — veto configurations the kernel
      cannot reproduce bit-identically (the harness then falls back to
      the per-node engine, which is the spec);
    - ``setup()`` — mirror ``algorithm.setup`` for all ``run.n``
      vertices (initial publishes, setup halts via ``run.halt``,
      sleeps via ``run.sleep``);
    - ``step(awake, round_index)`` — mirror one synchronous round for
      the scheduled vertex set ``awake``.  Reads must use pre-round
      published state only (gather before scatter — the vectorized
      double buffering).

    A kernel that opts into :attr:`handles_crashes` additionally
    guarantees crash-stop fidelity: published state it gathers from
    must be scattered only for vertices in ``awake``, so a crashed
    vertex's last published value stays frozen exactly as in the
    scalar engines (which simply stop stepping it).  Kernels that keep
    the default ``False`` make the harness fall back to the per-node
    engine whenever the active plan crashes anybody.
    """

    #: Whether this kernel freezes non-awake published state correctly
    #: under crash-stop fault plans (see class docstring).
    handles_crashes = False

    def __init__(self, run: VectorRun, algorithm: SyncAlgorithm) -> None:
        self.run = run
        self.algorithm = algorithm

    @classmethod
    def supports(cls, algorithm: SyncAlgorithm, run: VectorRun) -> bool:
        return True

    def setup(self) -> None:
        raise NotImplementedError

    def step(self, awake: np.ndarray, round_index: int) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Checkpoint capability (see repro.core.backend / repro.core.checkpoint)
# ---------------------------------------------------------------------------


class _VectorState:
    """Checkpoint handle for one vectorized run: the kernel (which owns
    the :class:`VectorRun`) plus the harness counters the engine copies
    in at each round boundary before :meth:`CheckpointSession.save`."""

    __slots__ = ("kernel", "rounds", "messages", "traces")

    def __init__(self, kernel: RoundKernel) -> None:
        self.kernel = kernel
        self.rounds = 0
        self.messages = 0
        self.traces: List[RoundTrace] = []


def capture_vector_state(state: _VectorState) -> Dict[str, Any]:
    """``Backend.capture_state`` for the vectorized engine.

    The snapshot holds the kernel's columnar algorithm state (its
    ``__dict__`` minus the ``run``/``algorithm`` back-references), the
    run's lifecycle arrays (halt flags, wake rounds, outputs,
    failures), and the :class:`~repro.backends.mt19937.VectorMT` depth
    and draw cursors.  The MT output buffer itself is *not* stored — it
    regenerates bit-exactly from the seeds at restore, keeping
    snapshots O(n) instead of O(words × n).  Values are referenced,
    not copied: the caller pickles the payload synchronously at the
    round boundary, before any further mutation.
    """
    kernel = state.kernel
    run = kernel.run
    rng = run._vector_rng
    return {
        "format": "vector",
        "rounds": state.rounds,
        "messages": state.messages,
        "traces": list(state.traces),
        "kernel": {
            key: value
            for key, value in kernel.__dict__.items()
            if key not in ("run", "algorithm")
        },
        "halted": run.halted,
        "wake": run.wake,
        "outputs": run.outputs,
        "failures": run.failures,
        "rng": (
            None
            if rng is None
            else {"words": rng.words, "pos": rng.pos}
        ),
    }


def restore_vector_state(state: _VectorState, payload: Dict[str, Any]) -> None:
    """``Backend.restore_state`` for the vectorized engine: applied to
    a freshly constructed kernel *in place of* ``setup()``."""
    kernel = state.kernel
    run = kernel.run
    state.rounds = int(payload["rounds"])
    state.messages = int(payload["messages"])
    state.traces[:] = payload["traces"]
    for key, value in payload["kernel"].items():
        setattr(kernel, key, value)
    run.halted[:] = payload["halted"]
    run.wake[:] = payload["wake"]
    run.outputs[:] = payload["outputs"]
    run.failures.clear()
    run.failures.update(payload["failures"])
    rng_state = payload["rng"]
    if rng_state is not None:
        # min_words sizes the regenerated buffer to the snapshot's depth
        # up front (one refill instead of grow-and-replay); a smaller
        # REPRO_VECTOR_WORD_CAP may clamp it, which stays correct —
        # outrun cursors regrow transparently on the next draw.
        rng = run.vector_rng(min_words=int(rng_state["words"]))
        rng.restore_positions(rng_state["pos"])


# ---------------------------------------------------------------------------
# Batch assembly: kernel-recorded segments -> one RoundBatch per round
# ---------------------------------------------------------------------------


def _merged_values_fn(
    pubs: List[Tuple[np.ndarray, Any, Any, Any, Any]],
    order: Optional[np.ndarray],
) -> Callable[[], List[Any]]:
    """Thunk materializing the round's published values in vertex
    order, deferring per-vertex Python object construction until an
    observer actually asks (payload-value traces, generic replay)."""

    def materialize() -> List[Any]:
        parts: List[Any] = []
        for verts, _pb, values, const, fn in pubs:
            if values is not None:
                parts.extend(
                    values.tolist()
                    if isinstance(values, np.ndarray)
                    else values
                )
            elif fn is not None:
                parts.extend(fn())
            else:
                parts.extend([const] * int(verts.size))
        if order is not None:
            return [parts[i] for i in order.tolist()]
        return parts

    return materialize


def _build_round_batch(
    run: VectorRun,
    round_index: int,
    *,
    active: int = 0,
    awake: int = 0,
    halted: int = 0,
    messages: int = 0,
    stepped: Any = (),
    failed: Any = (),
    fail_reasons: Sequence[str] = (),
    faults: Sequence[Tuple[int, FaultEvent]] = (),
) -> RoundBatch:
    """Drain the run's recorded publish/halt segments into one
    :class:`RoundBatch` with ascending vertex columns."""
    pubs = run._pub_segments
    halts = run._halt_segments
    run._pub_segments = []
    run._halt_segments = []

    published: Any = ()
    publish_bytes: Optional[np.ndarray] = None
    values_fn: Optional[Callable[[], List[Any]]] = None
    if pubs:
        if len(pubs) == 1:
            published = pubs[0][0]
            order = None
        else:
            published = np.concatenate([seg[0] for seg in pubs])
            order = np.argsort(published, kind="stable")
            published = published[order]
        byte_parts: Optional[List[np.ndarray]] = []
        for verts, pb, _values, _const, _fn in pubs:
            if pb is None:
                byte_parts = None
                break
            if isinstance(pb, (int, np.integer)):
                byte_parts.append(
                    np.full(verts.size, int(pb), dtype=np.int64)
                )
            else:
                byte_parts.append(np.asarray(pb, dtype=np.int64))
        if byte_parts is not None:
            publish_bytes = (
                byte_parts[0]
                if len(byte_parts) == 1
                else np.concatenate(byte_parts)
            )
            if order is not None:
                publish_bytes = publish_bytes[order]
        values_fn = _merged_values_fn(pubs, order)

    halted_verts: Any = ()
    halt_values: Sequence[Any] = ()
    if halts:
        if len(halts) == 1:
            halted_verts, halt_values = halts[0]
        else:
            halted_verts = np.concatenate([seg[0] for seg in halts])
            horder = np.argsort(halted_verts, kind="stable")
            halted_verts = halted_verts[horder]
            merged: List[Any] = []
            for _verts, vals in halts:
                merged.extend(vals)
            halt_values = [merged[i] for i in horder.tolist()]

    return RoundBatch(
        round_index,
        active=active,
        awake=awake,
        halted=halted,
        messages=messages,
        stepped=stepped,
        published=published,
        publish_values_fn=values_fn,
        publish_bytes=publish_bytes,
        halted_verts=halted_verts,
        halt_values=halt_values,
        failed=failed,
        fail_reasons=fail_reasons,
        faults=faults,
    )


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def run_local_vectorized(
    graph: Graph,
    algorithm: SyncAlgorithm,
    model: Model,
    *,
    ids: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    node_inputs: Optional[Sequence[Dict[str, Any]]] = None,
    global_params: Optional[Dict[str, Any]] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    rng_factory: Optional[Any] = None,
    allow_duplicate_ids: bool = False,
    trace: bool = False,
    observers: Optional[Sequence[Any]] = None,
    fault_plan: Optional[Any] = None,
    checkpoint: Optional[CheckpointSession] = None,
) -> RunResult:
    """Entry point of the ``"vectorized"`` backend (same signature and
    same RunResult as every other backend)."""
    _ensure_kernels()

    def fall_back() -> RunResult:
        # The checkpoint session rides along: the fallback decision is
        # deterministic for a fixed configuration, so a resumed run
        # falls back exactly when the interrupted run did and the
        # per-node engine consumes the (scalar-format) snapshot.
        return _run_local_fast(
            graph,
            algorithm,
            model,
            ids=ids,
            seed=seed,
            node_inputs=node_inputs,
            global_params=global_params,
            max_rounds=max_rounds,
            rng_factory=rng_factory,
            allow_duplicate_ids=allow_duplicate_ids,
            trace=trace,
            observers=observers,
            fault_plan=fault_plan,
            checkpoint=checkpoint,
        )

    kernel_cls = _KERNELS.get(type(algorithm))
    if kernel_cls is None:
        return fall_back()
    attached = _attached_observers(observers)
    if attached and not all(
        getattr(obs, "batch_capable", False) for obs in attached
    ):
        # Legacy per-event observers need per-node stepping; batch
        # capable ones consume columnar ``on_round_batch`` deliveries
        # and keep the run on the vectorized kernels.
        return fall_back()
    observing = bool(attached)
    meta = RunMeta(
        algorithm=algorithm.name,
        model=model,
        n=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        max_rounds=max_rounds,
        seed=seed,
        graph=graph,
    )
    plan = fault_plan if fault_plan is not None else active_fault_plan()
    faults = plan.activate(meta) if plan is not None else None
    if faults is not None and faults.touches_messages:
        # Message perturbation happens per materialized inbox slot;
        # the per-node engine is the spec for that path.
        return fall_back()
    if (
        faults is not None
        and faults.crashes
        and not kernel_cls.handles_crashes
    ):
        # Crash-stop freezes published state; only kernels declaring
        # that guarantee (scatter restricted to ``awake``) may stay on
        # the vectorized path.
        return fall_back()
    try:
        run = VectorRun(
            graph,
            model,
            ids=ids,
            seed=seed,
            node_inputs=node_inputs,
            global_params=global_params,
            rng_factory=rng_factory,
            allow_duplicate_ids=allow_duplicate_ids,
        )
        run.observing = observing
        if not kernel_cls.supports(algorithm, run):
            return fall_back()
        kernel = kernel_cls(run, algorithm)
    except ReproError:
        raise
    except Exception:
        # Construction chokes on ill-typed inputs (e.g. a composite
        # driver feeding forward the None outputs of a crash-faulted
        # upstream phase) before anything observable happened; the
        # scalar engine re-raises its own — contractual — error.
        return fall_back()

    state = _VectorState(kernel)
    resumed = (
        checkpoint.engine_payload("vector") if checkpoint is not None else None
    )
    if resumed is not None:
        # Mid-run snapshot: restoring replaces setup(), and the
        # observer streams continue from their restored positions — no
        # run_start, no backend_info, no setup batch (all of those
        # happened before the snapshot was taken).
        checkpoint.restore_engine(state, resumed)
    else:
        try:
            kernel.setup()
        except ReproError:
            raise
        except Exception:
            # Same contract as the construction fallback above.
            return fall_back()
        if observing:
            # Observable events start only after setup succeeded: had
            # the harness fallen back above, the per-node engine would
            # have emitted the whole stream itself (no double
            # run_start).
            for obs in attached:
                obs.on_run_start(meta)
            kernel_name = type(kernel).__name__
            for obs in attached:
                obs.on_backend_info("vectorized", kernel_name)
            setup_batch = _build_round_batch(run, SETUP_ROUND)
            for obs in attached:
                obs.on_round_batch(setup_batch)

    n = run.n
    rounds = state.rounds
    messages = state.messages
    traces = state.traces
    alive = ~run.halted
    # At a round-``rounds`` boundary a non-halted vertex is runnable iff
    # its wake round is unset (-1) or has arrived (<= rounds); only
    # strictly later wake rounds park it.  Fresh runs start at rounds=0,
    # where this is the original post-setup scan.
    parked_mask = alive & (run.wake > rounds)
    runnable = np.flatnonzero(alive & ~parked_mask)
    #: wake round -> vertices parked until that round (index arrays).
    buckets: Dict[int, np.ndarray] = {}
    parked = int(parked_mask.sum())
    if parked:
        parked_verts = np.flatnonzero(parked_mask)
        for wake_round, group in _group_by_wake(
            run.wake[parked_verts], parked_verts
        ):
            buckets[wake_round] = group

    crash_round: Optional[np.ndarray] = None
    if faults is not None and faults.crashes:
        crash_round = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        for v, at in faults.crashes.items():
            crash_round[v] = at

    messages_per_round = 2 * run.num_edges
    budget = faults.budget if faults is not None else None

    try:
        while runnable.size or parked:
            if checkpoint is not None and checkpoint.due(rounds):
                state.rounds = rounds
                state.messages = messages
                checkpoint.save(state, rounds)
            if budget is not None and rounds >= budget:
                budget_error = faults.budget_error(rounds)
                if observing:
                    # Run-level fault: delivered immediately (never part of
                    # a batch), exactly like the scalar engines' vertex-None
                    # ``on_fault`` right before the raise.
                    for obs in attached:
                        obs.on_run_fault(rounds, budget_error)
                raise budget_error
            if rounds >= max_rounds:
                raise SimulationError(
                    f"{algorithm.name!r} exceeded {max_rounds} rounds on "
                    f"n={n} (likely non-terminating)",
                    round=rounds,
                    run_meta=meta,
                )
            if parked:
                due = buckets.pop(rounds, None)
                if due is not None and due.size:
                    parked -= int(due.size)
                    runnable = (
                        np.concatenate([runnable, due])
                        if runnable.size
                        else due
                    )
                if not runnable.size:
                    # Bulk-accounted sleeping span, exactly as in the fast
                    # engine: advance round/message counters to the next
                    # wake (clamped by max_rounds and any injected budget)
                    # and synthesize the same trace entries.
                    skip_to = min(min(buckets), max_rounds)
                    if budget is not None and budget < skip_to:
                        skip_to = budget
                    skip = skip_to - rounds
                    if trace:
                        traces.extend(
                            RoundTrace(active=parked, awake=0, halted=0)
                            for _ in range(skip)
                        )
                    if observing:
                        # The scalar engines emit round boundaries for
                        # bulk-accounted sleeping rounds too: one empty
                        # batch per skipped round keeps the streams equal.
                        for r in range(rounds, rounds + skip):
                            empty = RoundBatch(
                                r,
                                active=parked,
                                messages=messages_per_round,
                            )
                            for obs in attached:
                                obs.on_round_batch(empty)
                    rounds += skip
                    messages += skip * messages_per_round
                    continue
            if observing and runnable.size:
                # Ascending vertex order, as the scalar engines schedule
                # when observed; kernels are order-insensitive so this only
                # normalizes the batch columns.
                runnable = np.sort(runnable)
            active_now = int(runnable.size) + parked
            awake_now = int(runnable.size)
            run.halted_this_round = 0
            crashed_verts: Any = ()
            crash_reasons: List[str] = []
            crash_faults: List[Tuple[int, FaultEvent]] = []
            if crash_round is not None:
                crashed_sel = crash_round[runnable] <= rounds
                if crashed_sel.any():
                    # Crash-stop semantics mirror the scalar engines: the
                    # vertex counts as awake (it was scheduled) and halted,
                    # never steps again, and its last published value stays
                    # visible.  Output stays None; the failure is recorded.
                    crashed = runnable[crashed_sel]
                    reason = faults.crash_reason(rounds)
                    for v in crashed.tolist():
                        run.failures[v] = reason
                        if observing:
                            crash_faults.append(
                                (v, faults.crash_event(rounds, v))
                            )
                            crash_reasons.append(reason)
                    run.halted[crashed] = True
                    run.halted_this_round += int(crashed.size)
                    runnable = runnable[~crashed_sel]
                    if observing:
                        crashed_verts = crashed
            run.wake[runnable] = -1
            if runnable.size:
                kernel.step(runnable, rounds)
            survivors = runnable[~run.halted[runnable]]
            wake = run.wake[survivors]
            park_sel = wake > rounds + 1
            if park_sel.any():
                parking = survivors[park_sel]
                for wake_round, group in _group_by_wake(
                    wake[park_sel], parking
                ):
                    previous = buckets.get(wake_round)
                    buckets[wake_round] = (
                        group
                        if previous is None
                        else np.concatenate([previous, group])
                    )
                parked += int(parking.size)
                survivors = survivors[~park_sel]
            if trace:
                traces.append(
                    RoundTrace(
                        active=active_now,
                        awake=awake_now,
                        halted=run.halted_this_round,
                    )
                )
            if observing:
                batch = _build_round_batch(
                    run,
                    rounds,
                    active=active_now,
                    awake=awake_now,
                    halted=run.halted_this_round,
                    messages=messages_per_round,
                    stepped=runnable,
                    failed=crashed_verts,
                    fail_reasons=crash_reasons,
                    faults=crash_faults,
                )
                for obs in attached:
                    obs.on_round_batch(batch)
            runnable = survivors
            rounds += 1
            messages += messages_per_round
    except BaseException as exc:
        # The run died mid-flight (algorithm exception, injected
        # budget, kill signal surfacing as KeyboardInterrupt):
        # give buffering observers one flush so partial runs keep
        # their telemetry, then keep propagating.
        if observing:
            for obs in attached:
                obs.on_run_abort(rounds, exc)
        raise

    result = RunResult(
        outputs=run.outputs,
        rounds=rounds,
        messages=messages,
        failures=run.failures,
        trace=traces,
    )
    if observing:
        for obs in attached:
            obs.on_run_end(result)
    return result


def _group_by_wake(
    wake_rounds: np.ndarray, verts: np.ndarray
) -> List[Tuple[int, np.ndarray]]:
    """Group ``verts`` by their wake round (few distinct values)."""
    groups: List[Tuple[int, np.ndarray]] = []
    for wake_round in np.unique(wake_rounds).tolist():
        groups.append(
            (int(wake_round), verts[wake_rounds == wake_round])
        )
    return groups

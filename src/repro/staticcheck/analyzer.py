"""Analyzer front end: load sources, run the LM rules, apply
suppressions, and package the result for the CLI and tests."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .callgraph import CallGraph
from .diagnostics import (
    Diagnostic,
    Severity,
    max_severity,
    render_text,
)
from .modules import ModuleInfo, discover_files, load_module
from .rules import RULES, RuleEngine

PathLike = Union[str, Path]

#: Output-schema version stamped into JSON reports.
JSON_VERSION = 1


@dataclass
class AnalysisResult:
    """Findings of one analyzer run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def ok(self) -> bool:
        """True when no *error*-severity finding survived suppression."""
        return max_severity(self.diagnostics) is not Severity.ERROR

    @property
    def clean(self) -> bool:
        """True when nothing at all survived suppression."""
        return not self.diagnostics

    def errors(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def to_dict(self) -> dict:
        return {
            "version": JSON_VERSION,
            "files_analyzed": self.files_analyzed,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "rules": {
                rule_id: spec.to_dict()
                for rule_id, spec in sorted(RULES.items())
            },
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.diagnostics) - len(self.errors()),
                "suppressed": len(self.suppressed),
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        return render_text(self.diagnostics, len(self.suppressed))


def load_corpus(paths: Iterable[PathLike]) -> List[ModuleInfo]:
    """Parse every ``.py`` file under ``paths`` (directories recurse)."""
    modules = []
    for file in discover_files(Path(p) for p in paths):
        modules.append(load_module(file))
    return modules


#: Rule ids that may legitimately appear in ``# repro: ignore[...]``
#: comments: the LM table plus the parse-failure pseudo-rule.
_KNOWN_SUPPRESSIBLE = frozenset(RULES) | {"PARSE"}


def _unknown_suppression_warnings(
    modules: Sequence[ModuleInfo],
) -> List[Diagnostic]:
    """A suppression naming a rule id the analyzer does not know is a
    typo waiting to un-suppress itself — warn instead of silently
    accepting it (rule id ``SUPPRESS``, same pseudo-rule convention as
    ``PARSE``)."""
    warnings: List[Diagnostic] = []
    for module in modules:
        for line in sorted(module.suppressions):
            unknown = sorted(
                code
                for code in module.suppressions[line]
                if code != "*" and code not in _KNOWN_SUPPRESSIBLE
            )
            for code in unknown:
                warnings.append(
                    Diagnostic(
                        rule_id="SUPPRESS",
                        severity=Severity.WARNING,
                        path=str(module.path),
                        line=line,
                        message=(
                            f"suppression names unknown rule id "
                            f"{code!r}; it suppresses nothing"
                        ),
                        hint=(
                            "known rule ids: "
                            + ", ".join(sorted(_KNOWN_SUPPRESSIBLE))
                        ),
                    )
                )
    return warnings


def analyze_modules(modules: Sequence[ModuleInfo]) -> AnalysisResult:
    graph = CallGraph(modules)
    engine = RuleEngine(graph)
    by_path = {str(m.path): m for m in modules}
    result = AnalysisResult(files_analyzed=len(modules))
    raw = engine.run()
    # One defect, one rule: the dataflow effect pass skips findings
    # whose root cause the pattern rules already reported.
    flagged = {
        (d.path, d.line)
        for d in raw
        if d.rule_id in ("LM001", "LM005")
    }
    from .dataflow import run_dataflow

    raw = raw + run_dataflow(graph, engine.bindings, flagged)
    unique: dict = {}
    for diag in raw:
        unique.setdefault((diag.rule_id, diag.path, diag.line), diag)
    ordered = sorted(
        unique.values(), key=lambda d: (d.path, d.line, d.rule_id)
    ) + _unknown_suppression_warnings(modules)
    for diag in ordered:
        module = by_path.get(diag.path)
        if module is not None and module.is_suppressed(
            diag.line, diag.rule_id
        ):
            result.suppressed.append(diag)
        else:
            result.diagnostics.append(diag)
    return result


def analyze_paths(paths: Iterable[PathLike]) -> AnalysisResult:
    """Analyze files/directories and return structured findings.

    The whole corpus is loaded before any rule runs so that call-graph
    edges and ``run_local`` model bindings resolve across modules.
    Unparsable files are reported as error-severity ``PARSE``
    diagnostics rather than aborting the run — a gate that crashes on
    bad input is a gate that gets disabled.
    """
    files = discover_files(Path(p) for p in paths)
    modules = []
    parse_failures: List[Diagnostic] = []
    for file in files:
        try:
            modules.append(load_module(file))
        except SyntaxError as exc:
            parse_failures.append(
                Diagnostic(
                    rule_id="PARSE",
                    severity=Severity.ERROR,
                    path=str(file),
                    line=exc.lineno or 1,
                    message=f"file could not be parsed: {exc.msg}",
                    hint="fix the syntax error; the file was skipped "
                    "by every LM rule",
                )
            )
    result = analyze_modules(modules)
    result.files_analyzed = len(files)
    result.diagnostics = sorted(
        parse_failures + result.diagnostics,
        key=lambda d: (d.path, d.line, d.rule_id),
    )
    return result


def default_target() -> Path:
    """The installed ``repro`` package directory — what ``repro lint``
    checks when no path is given."""
    return Path(__file__).resolve().parent.parent

"""Structured diagnostics for the LOCAL-model conformance analyzer.

A :class:`Diagnostic` is one finding: a rule id, a location, a severity,
a human message, and a fix hint.  Findings are plain data — the CLI
renders them as text or JSON, the test suite round-trips them, and CI
keys its exit status off :func:`max_severity`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence


class Severity(enum.Enum):
    """How strongly a finding gates the build."""

    ERROR = "error"
    WARNING = "warning"

    @classmethod
    def from_str(cls, text: str) -> "Severity":
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(f"unknown severity: {text!r}")


@dataclass(frozen=True)
class RuleSpec:
    """Static metadata of one LM rule."""

    rule_id: str
    severity: Severity
    summary: str
    rationale: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "summary": self.summary,
            "rationale": self.rationale,
        }


@dataclass(frozen=True)
class Diagnostic:
    """One conformance finding at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    hint: str = ""
    #: Reachability chain from the algorithm entry point to the
    #: offending code, e.g. ``("LubyMIS.step", "_helper")``.
    chain: Sequence[str] = field(default_factory=tuple)

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "chain": list(self.chain),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            rule_id=str(data["rule_id"]),
            severity=Severity.from_str(str(data["severity"])),
            path=str(data["path"]),
            line=int(data["line"]),
            message=str(data["message"]),
            hint=str(data.get("hint", "")),
            chain=tuple(data.get("chain", ())),
        )

    def render(self) -> str:
        parts = [
            f"{self.location()}: {self.severity.value} "
            f"[{self.rule_id}] {self.message}"
        ]
        if self.chain:
            parts.append(f"    reachable via: {' -> '.join(self.chain)}")
        if self.hint:
            parts.append(f"    hint: {self.hint}")
        return "\n".join(parts)


#: Keys every serialized diagnostic carries (the JSON output contract,
#: asserted by the round-trip tests).
DIAGNOSTIC_JSON_KEYS = (
    "rule_id",
    "severity",
    "path",
    "line",
    "message",
    "hint",
    "chain",
)


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """The gravest severity present, or ``None`` for a clean run."""
    if any(d.severity is Severity.ERROR for d in diagnostics):
        return Severity.ERROR
    if diagnostics:
        return Severity.WARNING
    return None


def render_text(
    diagnostics: Sequence[Diagnostic], suppressed: int = 0
) -> str:
    """Human-readable report (one block per finding plus a summary)."""
    lines: List[str] = [d.render() for d in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = len(diagnostics) - errors
    summary = f"{errors} error(s), {warnings} warning(s)"
    if suppressed:
        summary += f", {suppressed} suppressed"
    lines.append(summary)
    return "\n".join(lines)

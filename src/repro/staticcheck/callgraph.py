"""Call-graph construction and reachability.

The LM rules are *reachability* rules: ``ctx.random`` in a helper is a
violation exactly when that helper is reachable from a DetLOCAL
algorithm's entry points.  This module builds a conservative static
call graph over every analyzed module:

- module-level functions, resolved through ``from``-imports across the
  analyzed corpus;
- methods, resolved through ``self.``/``cls.`` calls along the class's
  base-class chain (within the corpus);
- direct ``Class().method`` / ``module.function`` attribute calls.

Unresolvable calls (builtins, stdlib, dynamic dispatch) simply add no
edge — the analysis over-approximates nothing it cannot see, keeping
the rules free of false positives from phantom edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .modules import ModuleInfo

FunctionNode = ast.FunctionDef


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the corpus."""

    #: ``module:Class.method`` or ``module:function``.
    key: str
    module_name: str
    class_name: Optional[str]
    name: str

    @property
    def display(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One class definition plus resolved base names."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    #: textual base-class names (attribute bases use their last segment).
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionNode] = field(default_factory=dict)


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


class CallGraph:
    """Function index + call edges + BFS reachability with parent links."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self.by_key: Dict[str, Tuple[FunctionInfo, FunctionNode, ModuleInfo]] = {}
        #: bare function name -> keys (module-level defs only).
        self._by_name: Dict[str, List[str]] = {}
        #: class name -> ClassInfo (last definition wins on collision).
        self.classes: Dict[str, ClassInfo] = {}
        self._edges: Dict[str, List[str]] = {}
        self._index()
        for key, (_, node, module) in list(self.by_key.items()):
            self._edges[key] = self._callees(key, node, module)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _add(
        self,
        module: ModuleInfo,
        node: FunctionNode,
        class_name: Optional[str],
    ) -> None:
        qual = f"{class_name}.{node.name}" if class_name else node.name
        key = f"{module.name}:{qual}"
        info = FunctionInfo(
            key=key,
            module_name=module.name,
            class_name=class_name,
            name=node.name,
        )
        self.by_key[key] = (info, node, module)
        if class_name is None:
            self._by_name.setdefault(node.name, []).append(key)

    def _index(self) -> None:
        for module in self.modules:
            for fn in module.functions.values():
                self._add(module, fn, None)
            for cls in module.classes.values():
                cinfo = ClassInfo(
                    name=cls.name,
                    module=module,
                    node=cls,
                    bases=_base_names(cls),
                )
                for item in cls.body:
                    if isinstance(item, ast.FunctionDef):
                        cinfo.methods[item.name] = item
                        self._add(module, item, cls.name)
                self.classes[cls.name] = cinfo

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_method(
        self, class_name: str, method: str
    ) -> Optional[str]:
        """Key of ``method`` looked up along ``class_name``'s bases."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cinfo = self.classes.get(current)
            if cinfo is None:
                continue
            if method in cinfo.methods:
                return f"{cinfo.module.name}:{current}.{method}"
            queue.extend(cinfo.bases)
        return None

    def _resolve_name_call(
        self, name: str, module: ModuleInfo
    ) -> Optional[str]:
        """Resolve a bare-name call to a function key or a class
        (classes resolve to no edge here; constructors carry no node
        code we analyze beyond ``__init__``, handled via methods)."""
        if name in module.functions:
            return f"{module.name}:{name}"
        origin = module.import_origin(name)
        if origin:
            # ``from .linial import cover_free_set`` — match the origin
            # module by dotted suffix, then the function by name.
            target_module, _, target_name = origin.rpartition(".")
            for other in self.modules:
                if other.name == target_module or other.name.endswith(
                    "." + target_module.rpartition(".")[2]
                ):
                    if target_name in other.functions:
                        return f"{other.name}:{target_name}"
        # Unique bare-name match across the corpus (fixture-friendly).
        candidates = self._by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_class(
        self, name: str, module: ModuleInfo
    ) -> Optional[ClassInfo]:
        """Resolve a name (local or imported) to an analyzed class."""
        if name in module.classes:
            return self.classes.get(name)
        origin = module.import_origin(name)
        if origin:
            leaf = origin.rpartition(".")[2]
            if leaf in self.classes:
                return self.classes[leaf]
        return self.classes.get(name)

    def _callees(
        self, key: str, node: FunctionNode, module: ModuleInfo
    ) -> List[str]:
        info = self.by_key[key][0]
        callees: List[str] = []
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if isinstance(func, ast.Name):
                target = self._resolve_name_call(func.id, module)
                if target:
                    callees.append(target)
                else:
                    cinfo = self.resolve_class(func.id, module)
                    if cinfo is not None:
                        init = self.resolve_method(cinfo.name, "__init__")
                        if init:
                            callees.append(init)
            elif isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name):
                    if base.id in ("self", "cls") and info.class_name:
                        target = self.resolve_method(
                            info.class_name, func.attr
                        )
                        if target:
                            callees.append(target)
                        continue
                    cinfo = self.resolve_class(base.id, module)
                    if cinfo is not None:
                        target = self.resolve_method(cinfo.name, func.attr)
                        if target:
                            callees.append(target)
                        continue
                    origin = module.import_origin(base.id)
                    if origin:
                        for other in self.modules:
                            if other.name == origin or other.name.endswith(
                                "." + origin.rpartition(".")[2]
                            ):
                                if func.attr in other.functions:
                                    callees.append(
                                        f"{other.name}:{func.attr}"
                                    )
                                    break
                elif isinstance(base, ast.Call) and isinstance(
                    base.func, ast.Name
                ):
                    cinfo = self.resolve_class(base.func.id, module)
                    if cinfo is not None:
                        target = self.resolve_method(cinfo.name, func.attr)
                        if target:
                            callees.append(target)
        return callees

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(
        self, entry_keys: Iterable[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS closure: key -> call chain (display names) from an entry.

        The chain is the shortest discovery path, used to explain *why*
        a helper is considered node-level code in diagnostics.
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for key in entry_keys:
            if key in self.by_key and key not in chains:
                chains[key] = (self.by_key[key][0].display,)
                queue.append(key)
        while queue:
            current = queue.pop(0)
            for callee in self._edges.get(current, ()):
                if callee in chains or callee not in self.by_key:
                    continue
                chains[callee] = chains[current] + (
                    self.by_key[callee][0].display,
                )
                queue.append(callee)
        return chains

    def function(
        self, key: str
    ) -> Tuple[FunctionInfo, FunctionNode, ModuleInfo]:
        return self.by_key[key]

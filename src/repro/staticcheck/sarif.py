"""SARIF 2.1.0 output for the LOCAL-model conformance analyzer.

SARIF (Static Analysis Results Interchange Format) is what code-review
surfaces ingest — GitHub code scanning renders each result as an inline
annotation on the offending line.  One :func:`to_sarif` call turns an
:class:`~repro.staticcheck.analyzer.AnalysisResult` into a single-run
SARIF log:

- every LM rule (plus the ``PARSE``/``SUPPRESS`` pseudo-rules that can
  appear in results) becomes a ``reportingDescriptor`` with its summary,
  rationale, and default severity level;
- every surviving diagnostic becomes a ``result`` with a physical
  location, the reachability chain folded into the message, and a
  **partial fingerprint** that is stable under unrelated edits (it hashes
  the rule id, the repo-relative path, and the offending *source line
  text* rather than the line number), so baseline matching on the
  code-scanning side survives code motion.

Paths are emitted repo-relative (POSIX separators) when ``base_dir`` is
given, which is what ``upload-sarif`` expects.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .analyzer import AnalysisResult
from .diagnostics import Diagnostic, RuleSpec, Severity
from .rules import RULES

#: The schema/version pair stamped into every log.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Pseudo-rules that can appear in results but live outside the LM
#: table.  SARIF requires every result's ruleId to be declared.
_PSEUDO_RULES = (
    RuleSpec(
        rule_id="PARSE",
        severity=Severity.ERROR,
        summary="file could not be parsed",
        rationale=(
            "an unparsable file is skipped by every LM rule; a gate "
            "that crashes on bad input is a gate that gets disabled"
        ),
    ),
    RuleSpec(
        rule_id="SUPPRESS",
        severity=Severity.WARNING,
        summary="suppression names an unknown rule id",
        rationale=(
            "a typo'd '# repro: ignore[...]' code suppresses nothing "
            "and silently un-suppresses itself on the next rename"
        ),
    ),
    RuleSpec(
        rule_id="BASELINE",
        severity=Severity.WARNING,
        summary="stale baseline entry for a finding that no longer occurs",
        rationale=(
            "fixed debt must be deleted from the committed baseline so "
            "the accepted-findings inventory only ever shrinks"
        ),
    ),
)


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _relative_uri(path: str, base_dir: Optional[Path]) -> str:
    p = Path(path)
    if base_dir is not None:
        try:
            p = p.resolve().relative_to(Path(base_dir).resolve())
        except ValueError:
            pass
    return p.as_posix()


def _snippet(path: str, line: int) -> str:
    """The offending source line's text, or '' when unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for number, text in enumerate(fh, start=1):
                if number == line:
                    return text.rstrip("\n")
    except OSError:
        pass
    return ""


def fingerprint(diag: Diagnostic, base_dir: Optional[Path]) -> str:
    """Stable identity of a finding: rule id + repo-relative path +
    the source text of the flagged line.  Deliberately excludes the
    line *number* so pure code motion does not churn baselines."""
    payload = "\x1f".join(
        (
            diag.rule_id,
            _relative_uri(diag.path, base_dir),
            _snippet(diag.path, diag.line).strip(),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


def _rule_descriptor(spec: RuleSpec) -> Dict[str, Any]:
    return {
        "id": spec.rule_id,
        "name": spec.rule_id,
        "shortDescription": {"text": spec.summary},
        "fullDescription": {"text": spec.rationale},
        "defaultConfiguration": {"level": _level(spec.severity)},
        "helpUri": (
            "https://github.com/local-model-repro/docs/blob/main/"
            "static_analysis.md"
        ),
    }


def _result(
    diag: Diagnostic,
    rule_index: Dict[str, int],
    base_dir: Optional[Path],
) -> Dict[str, Any]:
    message = diag.message
    if diag.chain:
        message += f" (reachable via: {' -> '.join(diag.chain)})"
    if diag.hint:
        message += f"; hint: {diag.hint}"
    return {
        "ruleId": diag.rule_id,
        "ruleIndex": rule_index[diag.rule_id],
        "level": _level(diag.severity),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _relative_uri(diag.path, base_dir),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, diag.line)},
                }
            }
        ],
        "partialFingerprints": {
            "reproLint/v1": fingerprint(diag, base_dir)
        },
    }


def to_sarif(
    result: AnalysisResult, base_dir: Optional[Path] = None
) -> Dict[str, Any]:
    """One SARIF 2.1.0 log for one analyzer run."""
    specs: List[RuleSpec] = [
        RULES[rule_id] for rule_id in sorted(RULES)
    ] + list(_PSEUDO_RULES)
    rule_index = {spec.rule_id: i for i, spec in enumerate(specs)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/local-model-repro"
                        ),
                        "rules": [
                            _rule_descriptor(spec) for spec in specs
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "uri": (
                            Path(base_dir).resolve().as_uri() + "/"
                            if base_dir is not None
                            else "file:///"
                        )
                    }
                },
                "results": [
                    _result(diag, rule_index, base_dir)
                    for diag in result.diagnostics
                ],
            }
        ],
    }


def render_sarif(
    result: AnalysisResult, base_dir: Optional[Path] = None
) -> str:
    return json.dumps(
        to_sarif(result, base_dir), indent=2, sort_keys=True
    )

"""Source loading for the analyzer: parse trees, symbol tables,
suppression comments.

The analyzer never imports the code it checks — everything is derived
from the AST and the token stream, so a module with seeded violations
(or unresolvable imports, as in the test fixtures) is still analyzable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

#: ``# repro: ignore[LM001, LM004]`` or bare ``# repro: ignore``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed on that line.

    The wildcard entry ``{"*"}`` (bare ``# repro: ignore``) suppresses
    every rule on its line.  Comment-only lines suppress the line below
    as well (handled at match time, see :func:`is_suppressed`).
    """
    suppressions: Dict[int, Set[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            ids = {"*"}
        else:
            ids = {c.strip().upper() for c in codes.split(",") if c.strip()}
        suppressions.setdefault(tok.start[0], set()).update(ids)
    return suppressions


@dataclass
class ModuleInfo:
    """One parsed source module plus the lookup tables rules need."""

    path: Path
    name: str
    tree: ast.Module
    source: str
    #: line -> suppressed rule ids ("*" = all).
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: local name -> dotted origin ("random", "repro.core.context.Model").
    imports: Dict[str, str] = field(default_factory=dict)
    #: comment-only source lines (their suppressions cover the next line).
    comment_lines: Set[int] = field(default_factory=set)
    #: module-level function defs by name.
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: module-level class defs by name.
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: module-level variable assignments: name -> assigned value node.
    module_vars: Dict[str, ast.expr] = field(default_factory=dict)

    def import_origin(self, local_name: str) -> Optional[str]:
        return self.imports.get(local_name)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is suppressed at ``line`` — by a trailing
        comment on the line itself, or by a comment-only line above."""
        for candidate in (line, line - 1):
            codes = self.suppressions.get(candidate)
            if codes is None:
                continue
            if candidate == line - 1 and candidate not in self.comment_lines:
                continue
            if "*" in codes or rule_id.upper() in codes:
                return True
        return False


def _module_name_for(path: Path) -> str:
    """Dotted module name derived from the package layout on disk
    (walk up while ``__init__.py`` exists).  Standalone files — like the
    test fixtures — get their bare stem."""
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def _resolve_relative(module_name: str, node: ast.ImportFrom) -> str:
    """Absolute dotted origin of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    base = module_name.split(".")
    # level=1 strips the module's own leaf, deeper levels strip packages.
    anchor = base[: -node.level] if node.level <= len(base) else []
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor)


def _collect_imports(module_name: str, tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            origin = _resolve_relative(module_name, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = (
                    f"{origin}.{alias.name}" if origin else alias.name
                )
    return imports


def _comment_only_lines(source: str) -> Set[int]:
    lines: Set[int] = set()
    for i, text in enumerate(source.splitlines(), start=1):
        if text.lstrip().startswith("#"):
            lines.add(i)
    return lines


def load_module(path: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``
    on unparsable source — surfaced by the analyzer as a diagnostic)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    name = _module_name_for(path)
    info = ModuleInfo(
        path=path,
        name=name,
        tree=tree,
        source=source,
        suppressions=parse_suppressions(source),
        imports=_collect_imports(name, tree),
        comment_lines=_comment_only_lines(source),
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = node  # type: ignore[assignment]
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.module_vars[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                info.module_vars[node.target.id] = node.value
    return info


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)

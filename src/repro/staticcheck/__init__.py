"""Static LOCAL-model conformance analysis (the ``repro lint`` engine).

The runtime gate (:class:`~repro.core.errors.ModelViolationError`)
catches a model violation only on executed paths; this package proves
conformance over *all* paths.  It walks the algorithm packages, binds
every :class:`~repro.core.algorithm.SyncAlgorithm` subclass to the
model(s) it is executed under (via ``run_local`` call sites), computes
the call-graph closure of each algorithm's entry points, and checks the
LM rule set (LM001-LM006) over that node-level code.

Typical use::

    from repro.staticcheck import analyze_paths
    result = analyze_paths(["src/repro"])
    assert result.clean, result.render_text()

Findings can be suppressed per line with ``# repro: ignore[LM006]``
(trailing, or on a comment-only line directly above).
"""

from .analyzer import (
    JSON_VERSION,
    AnalysisResult,
    analyze_modules,
    analyze_paths,
    default_target,
    load_corpus,
)
from .bindings import ENTRY_POINTS, Binding, algorithm_classes, bind_models
from .callgraph import CallGraph
from .diagnostics import (
    DIAGNOSTIC_JSON_KEYS,
    Diagnostic,
    RuleSpec,
    Severity,
    max_severity,
    render_text,
)
from .modules import ModuleInfo, load_module, parse_suppressions
from .rules import RULES, RuleEngine

__all__ = [
    "AnalysisResult",
    "Binding",
    "CallGraph",
    "DIAGNOSTIC_JSON_KEYS",
    "Diagnostic",
    "ENTRY_POINTS",
    "JSON_VERSION",
    "ModuleInfo",
    "RULES",
    "RuleEngine",
    "RuleSpec",
    "Severity",
    "algorithm_classes",
    "analyze_modules",
    "analyze_paths",
    "bind_models",
    "default_target",
    "load_corpus",
    "load_module",
    "max_severity",
    "parse_suppressions",
    "render_text",
]

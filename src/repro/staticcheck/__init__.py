"""Static LOCAL-model conformance analysis (the ``repro lint`` engine).

The runtime gate (:class:`~repro.core.errors.ModelViolationError`)
catches a model violation only on executed paths; this package proves
conformance over *all* paths.  It walks the algorithm packages, binds
every :class:`~repro.core.algorithm.SyncAlgorithm` subclass to the
model(s) it is executed under (via ``run_local`` call sites), computes
the call-graph closure of each algorithm's entry points, and checks the
pattern LM rule set (LM001-LM009) over that node-level code.  On top of
the pattern rules, the :mod:`.dataflow` subpackage lowers the same code
to an IR and proves two semantic contracts by abstract interpretation:
the information radius of every published value against the declared
:class:`~repro.algorithms.drivers.DriverSpec` radius (rule LM010), and
seed/iteration-order freedom of DetLOCAL outputs (rule LM011).
Supporting modules: :mod:`.sarif` (SARIF 2.1.0 logs for code-scanning),
:mod:`.baseline` (accepted-findings inventories with stale-entry
expiry), and :mod:`.cache` (corpus-fingerprint incremental result
cache).

Typical use::

    from repro.staticcheck import analyze_paths
    result = analyze_paths(["src/repro"])
    assert result.clean, result.render_text()

Findings can be suppressed per line with ``# repro: ignore[LM006]``
(trailing, or on a comment-only line directly above).
"""

from .analyzer import (
    JSON_VERSION,
    AnalysisResult,
    analyze_modules,
    analyze_paths,
    default_target,
    load_corpus,
)
from .bindings import ENTRY_POINTS, Binding, algorithm_classes, bind_models
from .callgraph import CallGraph
from .diagnostics import (
    DIAGNOSTIC_JSON_KEYS,
    Diagnostic,
    RuleSpec,
    Severity,
    max_severity,
    render_text,
)
from .modules import ModuleInfo, load_module, parse_suppressions
from .rules import RULES, RuleEngine

# Heavier optional layers (.dataflow, .sarif, .baseline, .cache) are
# imported lazily by their consumers; they re-export their own APIs.

__all__ = [
    "AnalysisResult",
    "Binding",
    "CallGraph",
    "DIAGNOSTIC_JSON_KEYS",
    "Diagnostic",
    "ENTRY_POINTS",
    "JSON_VERSION",
    "ModuleInfo",
    "RULES",
    "RuleEngine",
    "RuleSpec",
    "Severity",
    "algorithm_classes",
    "analyze_modules",
    "analyze_paths",
    "bind_models",
    "default_target",
    "load_corpus",
    "load_module",
    "max_severity",
    "parse_suppressions",
    "render_text",
]

"""Finding baselines: gradual adoption for new rules.

A baseline is a committed JSON inventory of *accepted* findings.  When
``repro lint --baseline FILE`` runs:

- a surviving diagnostic that matches a baseline entry is demoted to
  the suppressed list (reported in the summary, not gating) — the debt
  is acknowledged, the gate stays green;
- a baseline entry that no longer matches any diagnostic is **stale**
  and surfaces as a warning-severity ``BASELINE`` finding pointing at
  the baseline file: fixed debt must be deleted from the baseline, so
  the inventory only ever shrinks.  Under ``--strict`` a stale entry
  fails the gate — baselines cannot rot silently.

Matching uses the same content fingerprint as the SARIF output (rule id
+ repo-relative path + source text of the flagged line), so entries
survive pure code motion but expire when the offending line changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..core.atomicio import atomic_write_text
from .analyzer import AnalysisResult
from .diagnostics import Diagnostic, Severity
from .sarif import _relative_uri, fingerprint

#: Bumped when the baseline document layout changes.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule_id: str
    #: repo-relative POSIX path (portable across checkouts).
    path: str
    fingerprint: str
    #: informational only — matching ignores it (code moves).
    line: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule_id, self.path, self.fingerprint)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "line": self.line,
            "message": self.message,
        }


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file; raises ``ValueError`` on malformed input
    (a misread baseline silently accepting everything would be a hole
    in the gate, so this is *not* best-effort)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if (
        not isinstance(data, dict)
        or data.get("version") != BASELINE_VERSION
        or not isinstance(data.get("entries"), list)
    ):
        raise ValueError(
            f"not a version-{BASELINE_VERSION} lint baseline: {path}"
        )
    entries = []
    for raw in data["entries"]:
        entries.append(
            BaselineEntry(
                rule_id=str(raw["rule_id"]),
                path=str(raw["path"]),
                fingerprint=str(raw["fingerprint"]),
                line=int(raw.get("line", 0)),
                message=str(raw.get("message", "")),
            )
        )
    return entries


def write_baseline(
    path: Path,
    result: AnalysisResult,
    base_dir: Optional[Path] = None,
) -> int:
    """Write the current findings as the new accepted inventory.
    Returns the number of entries written."""
    entries = [
        BaselineEntry(
            rule_id=diag.rule_id,
            path=_relative_uri(diag.path, base_dir),
            fingerprint=fingerprint(diag, base_dir),
            line=diag.line,
            message=diag.message,
        )
        for diag in result.diagnostics
    ]
    document = {
        "version": BASELINE_VERSION,
        "entries": [e.to_dict() for e in sorted(
            entries, key=lambda e: (e.path, e.line, e.rule_id)
        )],
    }
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return len(entries)


def apply_baseline(
    result: AnalysisResult,
    entries: List[BaselineEntry],
    baseline_path: Path,
    base_dir: Optional[Path] = None,
) -> AnalysisResult:
    """Demote baselined findings and surface stale entries, in place."""
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        entry.key(): entry for entry in entries
    }
    matched: set = set()
    surviving: List[Diagnostic] = []
    for diag in result.diagnostics:
        key = (
            diag.rule_id,
            _relative_uri(diag.path, base_dir),
            fingerprint(diag, base_dir),
        )
        if key in by_key:
            matched.add(key)
            result.suppressed.append(diag)
        else:
            surviving.append(diag)
    stale = [
        entry for key, entry in sorted(by_key.items())
        if key not in matched
    ]
    for entry in stale:
        surviving.append(
            Diagnostic(
                rule_id="BASELINE",
                severity=Severity.WARNING,
                path=str(baseline_path),
                line=entry.line,
                message=(
                    f"stale baseline entry: {entry.rule_id} at "
                    f"{entry.path}:{entry.line} no longer occurs "
                    f"({entry.message or 'finding fixed'})"
                ),
                hint=(
                    "delete the entry (or regenerate with "
                    "--update-baseline); baselines only ever shrink"
                ),
            )
        )
    result.diagnostics = sorted(
        surviving, key=lambda d: (d.path, d.line, d.rule_id)
    )
    return result

"""Lowering of node-program functions into a small analysis IR.

The dataflow passes do not interpret Python ASTs statement-by-statement
— each reachable function is lowered once into a block-structured IR of
five instruction kinds:

- :class:`Bind` — one assignment to one :class:`Target` (a local name,
  a ``self`` attribute, a ``ctx.state`` slot, or a weak element write
  into a container root);
- :class:`Eval` — an expression evaluated for effect (sink calls like
  ``ctx.publish`` are discovered while evaluating);
- :class:`If` / :class:`Loop` — structured control flow; the abstract
  interpreter executes both arms on copies of the environment and joins
  them, so a kill on one branch cannot mask a fact established on the
  other (loops re-execute their body to a bounded fixpoint — the "loop
  summary" of the pass pipeline);
- :class:`Ret` — contributes to the function's return summary.

Expressions are *not* decomposed further: instructions reference the
original ``ast.expr`` nodes and the interpreter in
:mod:`repro.staticcheck.dataflow.lattice` evaluates them compositionally.
This keeps the IR honest about what it models (bindings, control joins,
loop summaries) without duplicating Python's expression grammar.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..callgraph import FunctionNode
from ..modules import ModuleInfo
from ..rules import _ctx_param_names


class TargetKind(enum.Enum):
    """Where a :class:`Bind` stores its value."""

    #: plain local name (strong update within a straight-line block).
    LOCAL = "local"
    #: ``self.<attr>`` — the shared algorithm instance (weak update,
    #: and a cross-vertex channel when written from node code).
    SELF_ATTR = "self"
    #: ``ctx.state[<key>]`` — per-vertex round-persistent state
    #: (weak update into the class-wide slot map).
    STATE_KEY = "state"
    #: subscript/attribute write into a local container
    #: (``xs[i] = v`` — weak update joined into the root local).
    ELEMENT = "element"


@dataclass(frozen=True)
class Target:
    """One lvalue."""

    kind: TargetKind
    #: local/root name for LOCAL/ELEMENT, attribute name for SELF_ATTR.
    name: str
    #: constant ``ctx.state`` key when statically known, else None
    #: (treated as the wildcard slot).
    key: Optional[str] = None


@dataclass
class Bind:
    """``target <- value`` (or element-of/augmented variants)."""

    line: int
    target: Target
    #: None binds bottom (e.g. an ``except ... as e`` name).
    value: Optional[ast.expr]
    #: AugAssign: join with the target's previous value.
    augmented: bool = False
    #: For-loop / unpacking targets bind an *element* of the value.
    element_of: bool = False


@dataclass
class Eval:
    """Expression evaluated for effect only."""

    line: int
    value: ast.expr


@dataclass
class Ret:
    """Return statement; joins into the function summary."""

    line: int
    value: Optional[ast.expr]


@dataclass
class If:
    """Two-way join point (also used for ``try`` bodies/handlers)."""

    line: int
    #: None for synthetic joins (try/except arms).
    test: Optional[ast.expr]
    body: List["Instr"] = field(default_factory=list)
    orelse: List["Instr"] = field(default_factory=list)


@dataclass
class Loop:
    """``for``/``while`` — body re-executed to a bounded fixpoint."""

    line: int
    #: the For target bind (element-of), None for while loops.
    bind: Optional[Bind]
    #: while-loop test, None for for loops.
    test: Optional[ast.expr]
    body: List["Instr"] = field(default_factory=list)
    orelse: List["Instr"] = field(default_factory=list)


Instr = Union[Bind, Eval, Ret, If, Loop]


@dataclass
class FunctionIR:
    """One lowered function plus the lookup context eval needs."""

    key: str
    node: FunctionNode
    module: ModuleInfo
    class_name: Optional[str]
    params: List[str]
    ctx_names: List[str]
    self_name: Optional[str]
    instrs: List[Instr]


def _param_names(fn: FunctionNode) -> List[str]:
    args = (
        list(fn.args.posonlyargs)
        + list(fn.args.args)
        + list(fn.args.kwonlyargs)
    )
    return [a.arg for a in args]


class _Lowerer:
    def __init__(
        self,
        node: FunctionNode,
        module: ModuleInfo,
        class_name: Optional[str],
    ) -> None:
        self.module = module
        self.class_name = class_name
        self.ctx_names = sorted(_ctx_param_names(node))
        params = _param_names(node)
        self.self_name: Optional[str] = None
        if class_name is not None and params:
            decorators = {
                d.id
                for d in node.decorator_list
                if isinstance(d, ast.Name)
            }
            if "staticmethod" not in decorators:
                self.self_name = params[0]

    # ------------------------------------------------------------------
    # Targets
    # ------------------------------------------------------------------
    def _is_ctx_state(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == "state"
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self.ctx_names
        )

    def _target(self, expr: ast.expr) -> Optional[Target]:
        if isinstance(expr, ast.Name):
            return Target(TargetKind.LOCAL, expr.id)
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if (
                isinstance(base, ast.Name)
                and base.id == self.self_name
            ):
                return Target(TargetKind.SELF_ATTR, expr.attr)
            root = _root_name(expr)
            if root is not None:
                if root == self.self_name:
                    # self.x.y = v — weak update of self.x's root attr.
                    attr = _self_attr_of(expr, self.self_name)
                    if attr is not None:
                        return Target(TargetKind.SELF_ATTR, attr)
                return Target(TargetKind.ELEMENT, root)
            return None
        if isinstance(expr, ast.Subscript):
            base = expr.value
            if self._is_ctx_state(base):
                key: Optional[str] = None
                if isinstance(expr.slice, ast.Constant) and isinstance(
                    expr.slice.value, str
                ):
                    key = expr.slice.value
                return Target(TargetKind.STATE_KEY, "state", key=key)
            if isinstance(base, ast.Attribute) and (
                isinstance(base.value, ast.Name)
                and base.value.id == self.self_name
            ):
                return Target(TargetKind.SELF_ATTR, base.attr)
            root = _root_name(expr)
            if root is not None:
                return Target(TargetKind.ELEMENT, root)
            return None
        if isinstance(expr, ast.Starred):
            return self._target(expr.value)
        return None

    def _bind_target(
        self,
        out: List[Instr],
        target_expr: ast.expr,
        value: Optional[ast.expr],
        line: int,
        augmented: bool = False,
        element_of: bool = False,
    ) -> None:
        if isinstance(target_expr, (ast.Tuple, ast.List)):
            for elt in target_expr.elts:
                self._bind_target(
                    out, elt, value, line, augmented, element_of=True
                )
            return
        target = self._target(target_expr)
        if target is None:
            if value is not None:
                out.append(Eval(line, value))
            return
        out.append(
            Bind(
                line=line,
                target=target,
                value=value,
                augmented=augmented,
                element_of=element_of,
            )
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_block(self, stmts: Sequence[ast.stmt]) -> List[Instr]:
        out: List[Instr] = []
        for stmt in stmts:
            self._stmt(out, stmt)
        return out

    def _stmt(self, out: List[Instr], stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._bind_target(
                    out, target, stmt.value, stmt.lineno
                )
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(
                    out, stmt.target, stmt.value, stmt.lineno
                )
        elif isinstance(stmt, ast.AugAssign):
            self._bind_target(
                out, stmt.target, stmt.value, stmt.lineno,
                augmented=True,
            )
        elif isinstance(stmt, ast.Expr):
            out.append(Eval(stmt.lineno, stmt.value))
        elif isinstance(stmt, ast.Return):
            out.append(Ret(stmt.lineno, stmt.value))
        elif isinstance(stmt, ast.If):
            out.append(
                If(
                    stmt.lineno,
                    stmt.test,
                    self.lower_block(stmt.body),
                    self.lower_block(stmt.orelse),
                )
            )
        elif isinstance(stmt, ast.While):
            out.append(
                Loop(
                    stmt.lineno,
                    bind=None,
                    test=stmt.test,
                    body=self.lower_block(stmt.body),
                    orelse=self.lower_block(stmt.orelse),
                )
            )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            head: List[Instr] = []
            self._bind_target(
                head, stmt.target, stmt.iter, stmt.lineno,
                element_of=True,
            )
            bind = None
            body = self.lower_block(stmt.body)
            if head and isinstance(head[0], Bind):
                bind = head[0]
                body = head[1:] + body
            else:
                body = head + body
            out.append(
                Loop(
                    stmt.lineno,
                    bind=bind,
                    test=None,
                    body=body,
                    orelse=self.lower_block(stmt.orelse),
                )
            )
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_target(
                        out,
                        item.optional_vars,
                        item.context_expr,
                        stmt.lineno,
                    )
                else:
                    out.append(Eval(stmt.lineno, item.context_expr))
            out.extend(self.lower_block(stmt.body))
        elif isinstance(stmt, ast.Try):
            arms = [self.lower_block(stmt.body + stmt.orelse)]
            for handler in stmt.handlers:
                arm: List[Instr] = []
                if handler.name:
                    arm.append(
                        Bind(
                            handler.lineno,
                            Target(TargetKind.LOCAL, handler.name),
                            None,
                        )
                    )
                arm.extend(self.lower_block(handler.body))
                arms.append(arm)
            joined = arms[0]
            for arm in arms[1:]:
                joined = [If(stmt.lineno, None, joined, arm)]
            out.extend(joined)
            out.extend(self.lower_block(stmt.finalbody))
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                out.append(Eval(stmt.lineno, stmt.exc))
        elif isinstance(stmt, ast.Assert):
            out.append(Eval(stmt.lineno, stmt.test))
            if stmt.msg is not None:
                out.append(Eval(stmt.lineno, stmt.msg))
        elif hasattr(ast, "Match") and isinstance(
            stmt, getattr(ast, "Match")
        ):
            out.append(Eval(stmt.lineno, stmt.subject))
            joined_match: List[Instr] = []
            for case in stmt.cases:
                joined_match = [
                    If(
                        stmt.lineno,
                        None,
                        joined_match,
                        self.lower_block(case.body),
                    )
                ]
            out.extend(joined_match)
        # Nested defs, imports, global/nonlocal, pass/break/continue,
        # and delete statements carry no dataflow we model.


def _root_name(expr: ast.expr) -> Optional[str]:
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _self_attr_of(
    expr: ast.expr, self_name: Optional[str]
) -> Optional[str]:
    """The first attribute hanging off ``self`` in a chained lvalue
    (``self.cache.slot = v`` -> 'cache')."""
    chain: List[str] = []
    node: ast.expr = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == self_name and chain:
        return chain[-1]
    return None


def lower_function(
    key: str,
    node: FunctionNode,
    module: ModuleInfo,
    class_name: Optional[str],
) -> FunctionIR:
    """Lower one function/method into :class:`FunctionIR`."""
    lowerer = _Lowerer(node, module, class_name)
    return FunctionIR(
        key=key,
        node=node,
        module=module,
        class_name=class_name,
        params=_param_names(node),
        ctx_names=lowerer.ctx_names,
        self_name=lowerer.self_name,
        instrs=lowerer.lower_block(node.body),
    )

"""Static recovery of declared LOCAL-model contracts.

The runtime side declares what each driver *claims* in two places:

- ``DriverSpec(...)`` registry entries in
  :mod:`repro.algorithms.drivers` — name, DET/RAND model, the LCL
  problem certified against, and the declared round bound / information
  radius labels;
- ``subject_from_algorithm(Cls, name=..., model=..., problem=...)``
  call sites in the verify harness and its tests.

This module parses both *without importing them* and maps every
contract to the algorithm classes whose node code implements it, by
following the spec's ``invoke`` closure through the call graph to the
``run_local`` sites it reaches.  The dataflow passes then check each
class's inferred information radius and determinism effects against its
declared contract (rules LM010/LM011).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bindings import (
    _algorithm_arg,
    _local_constructor_assignments,
    _model_of,
    _resolve_algorithm_expr,
)
from ..callgraph import CallGraph
from ..modules import ModuleInfo

#: LCL problems that *require* symmetry breaking: no 0-round (radius-0)
#: algorithm solves them on any graph with an edge, by Linial's lower
#: bound (PAPER.md §2) — so a driver declaring one of these whose node
#: program halts on a radius-0 function of the ID contradicts its own
#: contract.
SYMMETRY_BREAKING_LCLS = frozenset(
    {
        "KColoring",
        "ProperColoring",
        "MaximalIndependentSet",
        "MaximalMatching",
        "SinklessOrientation",
    }
)


@dataclass(frozen=True)
class Contract:
    """One declared driver/subject contract, statically recovered."""

    #: registry key / subject name.
    driver: str
    #: "driver-spec" or "subject".
    kind: str
    #: "DET" / "RAND" when statically resolvable.
    model: Optional[str]
    #: LCL class name the labeling is certified against, if declared.
    problem: Optional[str]
    bound_label: str
    radius_label: str
    #: declaration site, for diagnostics.
    module: str
    line: int
    #: algorithm classes implementing this contract.
    classes: Tuple[str, ...]


def _func_leaf(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _const_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _problem_name(node: Optional[ast.expr]) -> Optional[str]:
    """LCL class name out of ``problem=lambda g: KColoring(3)`` (or a
    bare class reference)."""
    if node is None:
        return None
    expr: ast.expr = node
    if isinstance(expr, ast.Lambda):
        expr = expr.body
    if isinstance(expr, ast.Call):
        return _func_leaf(expr.func)
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return _func_leaf(expr)
    return None


def _run_local_classes(
    scope: ast.AST, graph: CallGraph, module: ModuleInfo
) -> Set[str]:
    """Algorithm classes passed to ``run_local`` inside ``scope``."""
    classes: Set[str] = set()
    local_ctors = _local_constructor_assignments(scope, graph, module)
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        if _func_leaf(node.func) != "run_local":
            continue
        algo_expr = _algorithm_arg(node)
        if algo_expr is None:
            continue
        cls = _resolve_algorithm_expr(
            algo_expr, graph, module, local_ctors
        )
        if cls is not None:
            classes.add(cls)
    return classes


def _called_corpus_keys(
    scope: ast.AST, graph: CallGraph, module: ModuleInfo
) -> Set[str]:
    """Corpus call-graph keys of functions called inside ``scope``
    (directly by name or as ``module.function``)."""
    keys: Set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            target = graph._resolve_name_call(func.id, module)
            if target is not None:
                keys.add(target)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            origin = module.import_origin(func.value.id)
            if not origin:
                continue
            for other in graph.modules:
                if other.name == origin or other.name.endswith(
                    "." + origin.rpartition(".")[2]
                ):
                    if func.attr in other.functions:
                        keys.add(f"{other.name}:{func.attr}")
                        break
    return keys


def _classes_from_invoke(
    fn_node: ast.AST, graph: CallGraph, module: ModuleInfo
) -> Set[str]:
    """All algorithm classes an ``invoke`` closure can run: the
    ``run_local`` sites in the closure itself plus in everything the
    closure reaches through the corpus call graph (lazy in-function
    imports included — the module import table covers them)."""
    classes = _run_local_classes(fn_node, graph, module)
    seeds = _called_corpus_keys(fn_node, graph, module)
    for key, _chain in graph.reachable_from(sorted(seeds)).items():
        _info, node, owner = graph.function(key)
        classes |= _run_local_classes(node, graph, owner)
    return classes


def _local_function_defs(
    tree: ast.Module,
) -> Dict[str, List[ast.AST]]:
    """Every FunctionDef in the module (including nested closures like
    registry ``invoke`` functions), by bare name."""
    defs: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs


def _spec_contract(
    call: ast.Call, graph: CallGraph, module: ModuleInfo,
    local_defs: Dict[str, List[ast.AST]],
) -> Optional[Contract]:
    kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
    name = _const_str(kwargs.get("name"))
    if name is None:
        return None
    model_expr = kwargs.get("model")
    model = _model_of(model_expr) if model_expr is not None else None
    bound_label = _const_str(kwargs.get("bound_label")) or ""
    radius_label = (
        _const_str(kwargs.get("radius_label")) or bound_label
    )
    classes: Set[str] = set()
    invoke = kwargs.get("invoke")
    if isinstance(invoke, ast.Name):
        for fn_node in local_defs.get(invoke.id, []):
            classes |= _classes_from_invoke(fn_node, graph, module)
        target = graph._resolve_name_call(invoke.id, module)
        if target is not None:
            _info, node, owner = graph.function(target)
            classes |= _classes_from_invoke(node, graph, owner)
    return Contract(
        driver=name,
        kind="driver-spec",
        model=model,
        problem=_problem_name(kwargs.get("problem")),
        bound_label=bound_label,
        radius_label=radius_label,
        module=module.name,
        line=call.lineno,
        classes=tuple(sorted(classes)),
    )


def _subject_contract(
    call: ast.Call, graph: CallGraph, module: ModuleInfo
) -> Optional[Contract]:
    if not call.args:
        return None
    algo = call.args[0]
    cls_name: Optional[str] = None
    if isinstance(algo, (ast.Name, ast.Attribute)):
        leaf = _func_leaf(algo)
        if leaf is not None:
            cinfo = graph.resolve_class(leaf, module)
            cls_name = cinfo.name if cinfo is not None else leaf
    if cls_name is None:
        return None
    kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
    model_expr = kwargs.get("model")
    return Contract(
        driver=_const_str(kwargs.get("name")) or cls_name,
        kind="subject",
        model=_model_of(model_expr) if model_expr is not None else None,
        problem=_problem_name(kwargs.get("problem")),
        bound_label="",
        radius_label="",
        module=module.name,
        line=call.lineno,
        classes=(cls_name,),
    )


def extract_contracts(graph: CallGraph) -> List[Contract]:
    """All statically recoverable contracts in the corpus."""
    contracts: List[Contract] = []
    for module in graph.modules:
        local_defs: Optional[Dict[str, List[ast.AST]]] = None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            leaf = _func_leaf(node.func)
            if leaf == "DriverSpec":
                if local_defs is None:
                    local_defs = _local_function_defs(module.tree)
                contract = _spec_contract(
                    node, graph, module, local_defs
                )
                if contract is not None:
                    contracts.append(contract)
            elif leaf == "subject_from_algorithm":
                contract = _subject_contract(node, graph, module)
                if contract is not None:
                    contracts.append(contract)
    return contracts


def contracts_by_class(
    contracts: Sequence[Contract],
) -> Dict[str, List[Contract]]:
    """class name -> contracts whose implementation includes it."""
    out: Dict[str, List[Contract]] = {}
    for contract in contracts:
        for cls in contract.classes:
            out.setdefault(cls, []).append(contract)
    return out

"""The information-radius lattice and the abstract interpreter.

Every abstract value carries an **information radius** — how far from
the executing vertex the data it summarizes can originate:

- ``R0``: radius 0.  The vertex's own view: ``ctx.id``, ``ctx.degree``,
  per-vertex inputs, globals (common knowledge, including ``n``),
  constants, and anything computed from them.
- ``RIN``: inbox-derived.  A message arrives from a neighbor, so one
  round of communication extends the radius by exactly one hop; after
  ``t`` rounds the radius is at most ``t``, and the engine's
  ``max_rounds`` (audited against the driver's declared
  :class:`~repro.algorithms.drivers.DriverSpec` bound by the runtime
  certificate) caps ``t``.  RIN values are therefore *certified to stay
  within the declared radius*.
- ``RTOP``: out-of-band.  The value travelled through a channel the
  LOCAL model does not have — in this engine, an attribute of the
  shared algorithm instance written from node code (one instance
  serves every vertex, see ``SyncAlgorithm``).  No round bound caps
  such a value's radius, so it exceeds *any* declared bound: rule
  LM010.

Joins take the maximum radius, union the effect sets (seed/order, see
:mod:`.effects`), and OR the ID-taint bit used by the zero-round check:
a driver whose contract is a symmetry-breaking LCL (Linial's lower
bound says radius 0 cannot solve it) must not halt exclusively on
radius-0 functions of ``ctx.id``.

The :class:`Interpreter` runs one abstract interpretation per bound
algorithm class over the lowered IR (:mod:`.ir`): flow-sensitive within
a function (branch arms are joined, loop bodies iterated to a bounded
fixpoint) and context-insensitive across calls (per-callee parameter
and return summaries, iterated with the per-class ``self``/``ctx.state``
maps until the whole closure stabilizes).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..bindings import Binding, entry_keys
from ..callgraph import CallGraph
from ..diagnostics import Diagnostic, RuleSpec
from ..modules import ModuleInfo
from .ir import (
    Bind,
    Eval,
    FunctionIR,
    If,
    Instr,
    Loop,
    Ret,
    Target,
    TargetKind,
    lower_function,
)
from .specs import (
    SYMMETRY_BREAKING_LCLS,
    Contract,
    contracts_by_class,
)

# Radius levels.
R0 = 0
RIN = 1
RTOP = 2

#: Effects tracked by the determinism pass.
SEED = "seed"
ORDER = "order"

#: ctx method calls that emit a vertex's observable behavior — the
#: sinks both passes check.
SINK_METHODS = ("publish", "halt", "sleep_until", "fail")

#: RNG object constructors: assigning one to a module variable or an
#: instance attribute launders randomness past LM001's call matcher;
#: draws from the resulting object carry the SEED effect.
RNG_FACTORIES = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "secrets.SystemRandom",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.default_rng",
    }
)

#: Builtins whose result does not depend on argument iteration order.
_ORDER_NEUTRAL = frozenset(
    {
        "sorted", "min", "max", "sum", "len", "any", "all",
        "abs", "round", "int", "float", "bool", "str", "repr",
    }
)

#: Builtins that materialize their argument in iteration order: applied
#: to a set, the result depends on the set's arbitrary order.
_SEQUENCING = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate", "zip",
     "map", "filter"}
)

_SET_MAKERS = frozenset({"set", "frozenset"})

#: Set methods returning another set (content-, not order-, defined).
_SET_PRESERVING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference",
     "copy"}
)

_INBOX_PARAM_NAMES = frozenset({"inbox", "messages", "msgs"})


@dataclass(frozen=True)
class Origin:
    """Provenance of a radius/effect fact, for diagnostics."""

    kind: str
    path: str
    line: int
    note: str


@dataclass(frozen=True)
class AbsVal:
    """One point of the product lattice."""

    radius: int = R0
    id_taint: bool = False
    effects: FrozenSet[str] = frozenset()
    is_set: bool = False
    is_rng: bool = False
    #: "ctx" / "self" / "state" / "ctxrandom" handle markers.
    tag: str = ""
    origins: FrozenSet[Origin] = frozenset()


BOTTOM = AbsVal()

_MAX_ORIGINS = 6


def _cap_origins(origins: FrozenSet[Origin]) -> FrozenSet[Origin]:
    if len(origins) <= _MAX_ORIGINS:
        return origins
    kept = sorted(origins, key=lambda o: (o.kind, o.path, o.line))
    return frozenset(kept[:_MAX_ORIGINS])


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    return AbsVal(
        radius=max(a.radius, b.radius),
        id_taint=a.id_taint or b.id_taint,
        effects=a.effects | b.effects,
        is_set=a.is_set or b.is_set,
        is_rng=a.is_rng or b.is_rng,
        tag=a.tag if a.tag == b.tag else "",
        origins=_cap_origins(a.origins | b.origins),
    )


def join_all(values: Sequence[AbsVal]) -> AbsVal:
    out = BOTTOM
    for value in values:
        out = join(out, value)
    return out


def _strip(
    value: AbsVal,
    *,
    drop_set: bool = False,
    drop_order: bool = False,
    drop_rng: bool = False,
    drop_tag: bool = True,
) -> AbsVal:
    effects = value.effects
    origins = value.origins
    if drop_order and ORDER in effects:
        effects = effects - {ORDER}
        origins = frozenset(
            o for o in origins if o.kind != ORDER
        )
    return replace(
        value,
        effects=effects,
        origins=origins,
        is_set=value.is_set and not drop_set,
        is_rng=value.is_rng and not drop_rng,
        tag="" if drop_tag else value.tag,
    )


CTX = AbsVal(tag="ctx")
SELF = AbsVal(tag="self")


# ----------------------------------------------------------------------
# Facts collected for the check passes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SinkFact:
    """One publish/halt/sleep_until/fail call with its joined argument
    value."""

    kind: str
    value: AbsVal
    path: str
    line: int
    chain: Tuple[str, ...]


@dataclass(frozen=True)
class BranchFact:
    """One If/While/IfExp test value."""

    value: AbsVal
    path: str
    line: int
    chain: Tuple[str, ...]


@dataclass
class ClassAnalysis:
    """Everything the check passes need about one analyzed class."""

    binding: Binding
    #: run_local-bound models plus contract-declared ones.
    models: Set[str]
    contracts: List[Contract]
    entry_keys: List[str]
    sinks: List[SinkFact] = field(default_factory=list)
    branches: List[BranchFact] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.binding.name


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------
class _ClassState:
    """Mutable per-class fixpoint state."""

    def __init__(self) -> None:
        self.param_envs: Dict[str, Dict[str, AbsVal]] = {}
        self.returns: Dict[str, AbsVal] = {}
        self.self_attrs: Dict[str, AbsVal] = {}
        self.state_slots: Dict[str, AbsVal] = {}
        self.published: AbsVal = BOTTOM
        self.changed = False

    def state_join(self) -> AbsVal:
        return join_all(list(self.state_slots.values()))

    def bump_param(
        self, key: str, name: str, value: AbsVal
    ) -> None:
        env = self.param_envs.setdefault(key, {})
        old = env.get(name, BOTTOM)
        new = join(old, value)
        if new != old:
            env[name] = new
            self.changed = True

    def bump_return(self, key: str, value: AbsVal) -> None:
        old = self.returns.get(key, BOTTOM)
        new = join(old, value)
        if new != old:
            self.returns[key] = new
            self.changed = True

    def bump_self(self, attr: str, value: AbsVal) -> None:
        old = self.self_attrs.get(attr, BOTTOM)
        new = join(old, value)
        if new != old:
            self.self_attrs[attr] = new
            self.changed = True

    def bump_state(self, key: str, value: AbsVal) -> None:
        old = self.state_slots.get(key, BOTTOM)
        new = join(old, value)
        if new != old:
            self.state_slots[key] = new
            self.changed = True

    def bump_published(self, value: AbsVal) -> None:
        new = join(self.published, value)
        if new != self.published:
            self.published = new
            self.changed = True


class Interpreter:
    """One abstract interpretation per bound algorithm class."""

    def __init__(
        self,
        graph: CallGraph,
        bindings: Dict[str, Binding],
        contracts: Sequence[Contract],
    ) -> None:
        self.graph = graph
        self.bindings = bindings
        self.contracts = list(contracts)
        self._by_class = contracts_by_class(self.contracts)
        self._ir_cache: Dict[str, FunctionIR] = {}
        self._module_var_cache: Dict[Tuple[str, str], AbsVal] = {}
        self._module_var_stack: Set[Tuple[str, str]] = set()

    # -- IR ------------------------------------------------------------
    def _ir(self, key: str) -> FunctionIR:
        cached = self._ir_cache.get(key)
        if cached is None:
            info, node, module = self.graph.function(key)
            cached = lower_function(
                key, node, module, info.class_name
            )
            self._ir_cache[key] = cached
        return cached

    # -- public entry ----------------------------------------------------
    def run(self) -> List[ClassAnalysis]:
        analyses: List[ClassAnalysis] = []
        for name in sorted(self.bindings):
            binding = self.bindings[name]
            keys = entry_keys(binding, self.graph)
            contracts = self._by_class.get(name, [])
            models = set(binding.models)
            models.update(
                c.model for c in contracts if c.model is not None
            )
            analysis = ClassAnalysis(
                binding=binding,
                models=models,
                contracts=contracts,
                entry_keys=keys,
            )
            if keys:
                self._analyze_class(binding, keys, analysis)
            analyses.append(analysis)
        return analyses

    # -- per-class fixpoint ----------------------------------------------
    def _analyze_class(
        self,
        binding: Binding,
        keys: List[str],
        analysis: ClassAnalysis,
    ) -> None:
        chains = self.graph.reachable_from(keys)
        closure = sorted(chains)
        state = _ClassState()
        self._seed_init(binding, chains, state)
        for key in closure:
            self._seed_entry(key, key in keys, state)
        for _ in range(40):
            state.changed = False
            for key in closure:
                self._exec_function(key, chains[key], state, None)
            if not state.changed:
                break
        # Converged (or capped): one recording pass collects the facts.
        for key in closure:
            self._exec_function(key, chains[key], state, analysis)

    def _seed_entry(
        self, key: str, is_entry: bool, state: _ClassState
    ) -> None:
        ir = self._ir(key)
        env = state.param_envs.setdefault(key, {})
        if not is_entry:
            return
        for index, param in enumerate(ir.params):
            if param == ir.self_name:
                env[param] = SELF
            elif param in ir.ctx_names:
                env[param] = CTX
            elif param in _INBOX_PARAM_NAMES or (
                ir.node.name in ("step", "receive") and index == 2
            ):
                env[param] = AbsVal(
                    radius=RIN,
                    origins=frozenset(
                        {
                            Origin(
                                "inbox",
                                str(ir.module.path),
                                ir.node.lineno,
                                "message received from a neighbor",
                            )
                        }
                    ),
                )

    def _seed_init(
        self,
        binding: Binding,
        chains: Dict[str, Tuple[str, ...]],
        state: _ClassState,
    ) -> None:
        """Constructor-time ``self`` attributes are driver-side
        constants (radius 0) — unless ``__init__`` is itself reachable
        from node code, in which case the node-code write rule governs."""
        init_key = self.graph.resolve_method(binding.name, "__init__")
        if init_key is None or init_key in chains:
            return
        ir = self._ir(init_key)
        env: Dict[str, AbsVal] = {}
        if ir.params:
            env[ir.params[0]] = SELF
        fctx = _FunctionContext(
            self, ir, ("__init__",), state, None, in_init=True
        )
        for _ in range(4):
            state.changed = False
            fctx.exec_block(ir.instrs, dict(env))
            if not state.changed:
                break

    def _exec_function(
        self,
        key: str,
        chain: Tuple[str, ...],
        state: _ClassState,
        analysis: Optional[ClassAnalysis],
    ) -> None:
        ir = self._ir(key)
        fctx = _FunctionContext(self, ir, chain, state, analysis)
        env = dict(state.param_envs.get(key, {}))
        out = fctx.exec_block(ir.instrs, env)
        del out
        state.bump_return(key, fctx.ret)

    # -- module-level values ----------------------------------------------
    def module_var_value(
        self, module: ModuleInfo, name: str
    ) -> AbsVal:
        """Abstract value of a module-level assignment, e.g. the
        laundered ``_RNG = random.Random()`` pattern."""
        cache_key = (module.name, name)
        if cache_key in self._module_var_cache:
            return self._module_var_cache[cache_key]
        if cache_key in self._module_var_stack:
            return BOTTOM
        expr = module.module_vars.get(name)
        if expr is None:
            return BOTTOM
        self._module_var_stack.add(cache_key)
        try:
            ir = FunctionIR(
                key=f"{module.name}:<module>",
                node=None,  # type: ignore[arg-type]
                module=module,
                class_name=None,
                params=[],
                ctx_names=[],
                self_name=None,
                instrs=[],
            )
            fctx = _FunctionContext(
                self, ir, (), _ClassState(), None
            )
            value = fctx.eval(expr, {})
        finally:
            self._module_var_stack.discard(cache_key)
        self._module_var_cache[cache_key] = value
        return value


class _FunctionContext:
    """Evaluation context for one function body in one class pass."""

    def __init__(
        self,
        interp: Interpreter,
        ir: FunctionIR,
        chain: Tuple[str, ...],
        state: _ClassState,
        analysis: Optional[ClassAnalysis],
        in_init: bool = False,
    ) -> None:
        self.interp = interp
        self.ir = ir
        self.chain = chain
        self.state = state
        self.analysis = analysis
        self.in_init = in_init
        self.path = str(ir.module.path)
        self.ret: AbsVal = BOTTOM
        #: Stack of enclosing branch-test values: a ``return`` inside a
        #: conditional depends on the condition (implicit flow), so the
        #: tests join into the returned abstraction — the explicit
        #: ``IfExp`` evaluation already does the same.
        self._conds: List[AbsVal] = []

    # -- block execution --------------------------------------------------
    def exec_block(
        self, instrs: Sequence[Instr], env: Dict[str, AbsVal]
    ) -> Dict[str, AbsVal]:
        for instr in instrs:
            if isinstance(instr, Bind):
                self._exec_bind(instr, env)
            elif isinstance(instr, Eval):
                self.eval(instr.value, env)
            elif isinstance(instr, Ret):
                value = (
                    self.eval(instr.value, env)
                    if instr.value is not None
                    else BOTTOM
                )
                value = join(value, join_all(self._conds))
                self.ret = join(self.ret, value)
            elif isinstance(instr, If):
                cond = BOTTOM
                if instr.test is not None:
                    test = self.eval(instr.test, env)
                    self._record_branch(test, instr.line)
                    cond = _strip(test, drop_set=True)
                self._conds.append(cond)
                then_env = self.exec_block(instr.body, dict(env))
                else_env = self.exec_block(instr.orelse, dict(env))
                self._conds.pop()
                env.clear()
                env.update(_join_envs(then_env, else_env))
            elif isinstance(instr, Loop):
                self._exec_loop(instr, env)
        return env

    def _exec_loop(
        self, instr: Loop, env: Dict[str, AbsVal]
    ) -> None:
        # Loop summary: the body may run zero times, so each pass joins
        # with the pre-loop environment; iterate to a bounded fixpoint.
        for _ in range(6):
            before = dict(env)
            body_env = dict(env)
            cond = BOTTOM
            if instr.test is not None:
                test = self.eval(instr.test, body_env)
                self._record_branch(test, instr.line)
                cond = _strip(test, drop_set=True)
            self._conds.append(cond)
            if instr.bind is not None:
                self._exec_bind(instr.bind, body_env)
            body_env = self.exec_block(instr.body, body_env)
            self._conds.pop()
            env.clear()
            env.update(_join_envs(before, body_env))
            if env == before:
                break
        self.exec_block(instr.orelse, env)

    def _exec_bind(
        self, instr: Bind, env: Dict[str, AbsVal]
    ) -> None:
        value = (
            self.eval(instr.value, env)
            if instr.value is not None
            else BOTTOM
        )
        if instr.element_of:
            value = self._element_of(value, instr.line)
        target = instr.target
        if target.kind is TargetKind.LOCAL:
            if instr.augmented:
                value = join(env.get(target.name, BOTTOM), value)
            env[target.name] = value
        elif target.kind is TargetKind.SELF_ATTR:
            if not self.in_init:
                # Node code wrote the shared instance: a cross-vertex
                # channel — everything read back is out-of-band.
                value = join(
                    value,
                    AbsVal(
                        radius=RTOP,
                        origins=frozenset(
                            {
                                Origin(
                                    "self-channel",
                                    self.path,
                                    instr.line,
                                    f"instance attribute "
                                    f"'self.{target.name}' written "
                                    "from node code (one algorithm "
                                    "instance is shared by every "
                                    "vertex)",
                                )
                            }
                        ),
                    ),
                )
            self.state.bump_self(target.name, value)
        elif target.kind is TargetKind.STATE_KEY:
            self.state.bump_state(target.key or "*", value)
        elif target.kind is TargetKind.ELEMENT:
            old = env.get(target.name, BOTTOM)
            env[target.name] = join(old, _strip(value, drop_set=True))

    def _record_branch(self, value: AbsVal, line: int) -> None:
        if self.analysis is None:
            return
        if value.radius >= RTOP or value.effects:
            self.analysis.branches.append(
                BranchFact(value, self.path, line, self.chain)
            )

    def _record_sink(
        self, kind: str, value: AbsVal, line: int
    ) -> None:
        if kind == "publish":
            self.state.bump_published(value)
        if self.analysis is not None:
            self.analysis.sinks.append(
                SinkFact(kind, value, self.path, line, self.chain)
            )

    def _element_of(self, value: AbsVal, line: int) -> AbsVal:
        out = _strip(value, drop_set=True, drop_rng=True)
        if value.is_set:
            out = join(
                out,
                AbsVal(
                    effects=frozenset({ORDER}),
                    origins=frozenset(
                        {
                            Origin(
                                ORDER,
                                self.path,
                                line,
                                "iteration over an unordered set",
                            )
                        }
                    ),
                ),
            )
        return out

    # -- expression evaluation ---------------------------------------------
    def eval(
        self, expr: ast.expr, env: Dict[str, AbsVal]
    ) -> AbsVal:
        if isinstance(expr, ast.Constant):
            return BOTTOM
        if isinstance(expr, ast.Name):
            return self._eval_name(expr.id, env)
        if isinstance(expr, ast.NamedExpr):
            value = self.eval(expr.value, env)
            if isinstance(expr.target, ast.Name):
                env[expr.target.id] = value
            return value
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            keeps_set = isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
            ) and (left.is_set or right.is_set)
            out = join(
                _strip(left, drop_set=True),
                _strip(right, drop_set=True),
            )
            return replace(out, is_set=keeps_set)
        if isinstance(expr, ast.BoolOp):
            return join_all([self.eval(v, env) for v in expr.values])
        if isinstance(expr, ast.UnaryOp):
            return _strip(self.eval(expr.operand, env), drop_set=True)
        if isinstance(expr, ast.Compare):
            values = [self.eval(expr.left, env)]
            membership = all(
                isinstance(op, (ast.In, ast.NotIn)) for op in expr.ops
            )
            for comparator, _op in zip(expr.comparators, expr.ops):
                value = self.eval(comparator, env)
                if membership:
                    # Membership in a set is order-insensitive.
                    value = _strip(value, drop_order=True)
                values.append(value)
            return _strip(join_all(values), drop_set=True)
        if isinstance(expr, ast.IfExp):
            test = self.eval(expr.test, env)
            self._record_branch(test, expr.lineno)
            return join_all(
                [
                    _strip(test, drop_set=True),
                    self.eval(expr.body, env),
                    self.eval(expr.orelse, env),
                ]
            )
        if isinstance(expr, (ast.List, ast.Tuple)):
            return _strip(
                join_all([self.eval(e, env) for e in expr.elts]),
                drop_set=True,
            )
        if isinstance(expr, ast.Set):
            out = _strip(
                join_all([self.eval(e, env) for e in expr.elts]),
                drop_set=True,
            )
            return replace(out, is_set=True)
        if isinstance(expr, ast.Dict):
            parts = [
                self.eval(k, env) for k in expr.keys if k is not None
            ] + [self.eval(v, env) for v in expr.values]
            return _strip(join_all(parts), drop_set=True)
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            value = self._eval_comprehension(
                expr.generators, [expr.elt], env
            )
            if isinstance(expr, ast.SetComp):
                return replace(value, is_set=True)
            return value
        if isinstance(expr, ast.DictComp):
            return self._eval_comprehension(
                expr.generators, [expr.key, expr.value], env
            )
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.JoinedStr):
            return _strip(
                join_all([self.eval(v, env) for v in expr.values]),
                drop_set=True,
            )
        if isinstance(expr, ast.FormattedValue):
            return _strip(self.eval(expr.value, env), drop_set=True)
        if isinstance(expr, ast.Slice):
            parts = [
                self.eval(part, env)
                for part in (expr.lower, expr.upper, expr.step)
                if part is not None
            ]
            return _strip(join_all(parts), drop_set=True)
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Yield):
            if expr.value is not None:
                return self.eval(expr.value, env)
            return BOTTOM
        if isinstance(expr, ast.Lambda):
            return BOTTOM
        return BOTTOM

    def _eval_comprehension(
        self,
        generators: Sequence[ast.comprehension],
        bodies: Sequence[ast.expr],
        env: Dict[str, AbsVal],
    ) -> AbsVal:
        """Comprehensions get their own scope: generator targets bind
        the *element* abstraction of their iterable (picking up the
        ORDER effect when that iterable is a set), shadowing any outer
        name.  Filter (``if``) clauses select which elements survive,
        so their value joins into the result."""
        local = dict(env)
        extra = BOTTOM
        for gen in generators:
            iter_val = self.eval(gen.iter, local)
            element = self._element_of(iter_val, gen.iter.lineno)
            for name in _comp_target_names(gen.target):
                local[name] = element
            for if_expr in gen.ifs:
                extra = join(
                    extra,
                    _strip(self.eval(if_expr, local), drop_set=True),
                )
        body_val = join_all([self.eval(b, local) for b in bodies])
        return _strip(join(body_val, extra), drop_set=True)

    def _eval_name(
        self, name: str, env: Dict[str, AbsVal]
    ) -> AbsVal:
        if name in env:
            return env[name]
        if name in self.ir.module.module_vars:
            return self.interp.module_var_value(self.ir.module, name)
        origin = self.ir.module.import_origin(name)
        if origin in RNG_FACTORIES:
            # ``from random import Random`` — referencing the factory
            # itself; construction is handled at the call site.
            return BOTTOM
        return BOTTOM

    def _eval_attribute(
        self, expr: ast.Attribute, env: Dict[str, AbsVal]
    ) -> AbsVal:
        base = self.eval(expr.value, env)
        attr = expr.attr
        if base.tag == "ctx":
            return self._ctx_attribute(attr, expr)
        if base.tag == "self":
            return self.state.self_attrs.get(attr, BOTTOM)
        if base.tag == "state":
            return self.state.state_join()
        return _strip(base, drop_set=True)

    def _ctx_attribute(
        self, attr: str, expr: ast.Attribute
    ) -> AbsVal:
        if attr == "id":
            return AbsVal(
                id_taint=True,
                origins=frozenset(
                    {
                        Origin(
                            "id",
                            self.path,
                            expr.lineno,
                            "the vertex's unique identifier",
                        )
                    }
                ),
            )
        if attr == "state":
            return AbsVal(tag="state")
        if attr == "random":
            # ctx.random is LM001's domain (model gating), not a
            # laundered RNG — no SEED effect here, by design.
            return AbsVal(tag="ctxrandom")
        if attr in ("published", "pending_publish"):
            return self.state.published
        # id-free local view: degree, input, globals, now, n,
        # max_degree, ports, ...
        return BOTTOM

    def _eval_subscript(
        self, expr: ast.Subscript, env: Dict[str, AbsVal]
    ) -> AbsVal:
        base = self.eval(expr.value, env)
        self.eval(expr.slice, env)
        if base.tag == "state":
            key: Optional[str] = None
            if isinstance(expr.slice, ast.Constant) and isinstance(
                expr.slice.value, str
            ):
                key = expr.slice.value
            if key is not None and "*" not in self.state.state_slots:
                return self.state.state_slots.get(key, BOTTOM)
            return self.state.state_join()
        # Indexing is positional, not iteration: no order effect.
        return _strip(base, drop_set=True)

    # -- calls -------------------------------------------------------------
    def _eval_call(
        self, call: ast.Call, env: Dict[str, AbsVal]
    ) -> AbsVal:
        arg_vals = [self.eval(a, env) for a in call.args]
        kw_vals = [self.eval(kw.value, env) for kw in call.keywords]
        joined = join_all(
            [_strip(v, drop_set=True) for v in arg_vals + kw_vals]
        )
        func = call.func
        if isinstance(func, ast.Attribute):
            return self._attribute_call(
                call, func, arg_vals, kw_vals, joined, env
            )
        if isinstance(func, ast.Name):
            return self._name_call(
                call, func.id, arg_vals, kw_vals, joined, env
            )
        self.eval(func, env)
        return joined

    def _attribute_call(
        self,
        call: ast.Call,
        func: ast.Attribute,
        arg_vals: List[AbsVal],
        kw_vals: List[AbsVal],
        joined: AbsVal,
        env: Dict[str, AbsVal],
    ) -> AbsVal:
        base = self.eval(func.value, env)
        attr = func.attr
        if base.tag == "ctx":
            if attr in SINK_METHODS:
                self._record_sink(attr, joined, call.lineno)
                return BOTTOM
            return joined
        if base.tag == "ctxrandom":
            return BOTTOM
        if base.tag == "state":
            if attr in ("setdefault", "update"):
                self.state.bump_state("*", joined)
            return join(joined, self.state.state_join())
        if base.is_rng:
            return AbsVal(
                radius=base.radius,
                effects=frozenset({SEED}),
                origins=_cap_origins(
                    base.origins
                    | {
                        Origin(
                            SEED,
                            self.path,
                            call.lineno,
                            f"draw from RNG object "
                            f"('.{attr}()' on a random.Random-style "
                            "instance)",
                        )
                    }
                ),
            )
        if base.tag == "self":
            target = None
            if self.ir.class_name is not None:
                target = self.interp.graph.resolve_method(
                    self._owning_class(), attr
                )
            if target is not None:
                return self._interprocedural(
                    target, [base] + arg_vals, call, env
                )
            return join(joined, self._self_join())
        # RNG factory via module attribute: random.Random(...), etc.
        dotted = _dotted_origin(func, self.ir.module)
        if dotted in RNG_FACTORIES:
            return AbsVal(is_rng=True)
        # Corpus module-level function via module alias.
        if isinstance(func.value, ast.Name):
            origin = self.ir.module.import_origin(func.value.id)
            if origin:
                for other in self.interp.graph.modules:
                    if other.name == origin or other.name.endswith(
                        "." + origin.rpartition(".")[2]
                    ):
                        if attr in other.functions:
                            return self._interprocedural(
                                f"{other.name}:{attr}",
                                arg_vals,
                                call,
                                env,
                            )
        if base.is_set:
            if attr == "pop":
                return self._element_of(base, call.lineno)
            if attr in _SET_PRESERVING_METHODS:
                out = join(_strip(base, drop_set=True), joined)
                return replace(out, is_set=True)
        return join(_strip(base, drop_set=True), joined)

    def _name_call(
        self,
        call: ast.Call,
        name: str,
        arg_vals: List[AbsVal],
        kw_vals: List[AbsVal],
        joined: AbsVal,
        env: Dict[str, AbsVal],
    ) -> AbsVal:
        if name in _ORDER_NEUTRAL:
            return _strip(joined, drop_order=True)
        if name in _SET_MAKERS:
            out = _strip(joined, drop_order=True)
            return replace(out, is_set=True)
        if name in _SEQUENCING:
            materialized = join_all(
                [
                    self._element_of(v, call.lineno)
                    for v in arg_vals + kw_vals
                ]
            )
            return materialized
        if name == "dict":
            return joined
        origin = self.ir.module.import_origin(name)
        if origin in RNG_FACTORIES:
            return AbsVal(is_rng=True)
        target = self.interp.graph._resolve_name_call(
            name, self.ir.module
        )
        if target is not None:
            return self._interprocedural(target, arg_vals, call, env)
        return joined

    def _owning_class(self) -> str:
        return self.ir.class_name or ""

    def _self_join(self) -> AbsVal:
        return join_all(list(self.state.self_attrs.values()))

    def _interprocedural(
        self,
        key: str,
        arg_vals: List[AbsVal],
        call: ast.Call,
        env: Dict[str, AbsVal],
    ) -> AbsVal:
        graph = self.interp.graph
        if key not in graph.by_key:
            return join_all(
                [_strip(v, drop_set=True) for v in arg_vals]
            )
        callee = self.interp._ir(key)
        for index, value in enumerate(arg_vals):
            if index < len(callee.params):
                self.state.bump_param(
                    key, callee.params[index], value
                )
        for kw in call.keywords:
            if kw.arg and kw.arg in callee.params:
                self.state.bump_param(
                    key, kw.arg, self.eval(kw.value, env)
                )
        return self.state.returns.get(key, BOTTOM)


def _comp_target_names(target: ast.expr) -> List[str]:
    """Names bound by a comprehension's ``for`` target."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_comp_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _comp_target_names(target.value)
    return []


def _join_envs(
    a: Dict[str, AbsVal], b: Dict[str, AbsVal]
) -> Dict[str, AbsVal]:
    out: Dict[str, AbsVal] = {}
    for name in set(a) | set(b):
        out[name] = join(a.get(name, BOTTOM), b.get(name, BOTTOM))
    return out


def _dotted_origin(
    node: ast.expr, module: ModuleInfo
) -> Optional[str]:
    """Full dotted origin of an attribute chain through the import
    table: ``nr.default_rng`` with ``import numpy.random as nr`` ->
    'numpy.random.default_rng'."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = module.import_origin(current.id)
    root = origin if origin else current.id
    return ".".join([root] + list(reversed(parts)))


# ----------------------------------------------------------------------
# LM010: the radius check
# ----------------------------------------------------------------------
def _first_origin(
    value: AbsVal, kind: str
) -> Optional[Origin]:
    candidates = sorted(
        (o for o in value.origins if o.kind == kind),
        key=lambda o: (o.path, o.line),
    )
    return candidates[0] if candidates else None


def _declared_label(contracts: Sequence[Contract]) -> str:
    for contract in contracts:
        if contract.radius_label:
            return contract.radius_label
    for contract in contracts:
        if contract.bound_label:
            return contract.bound_label
    return "its declared round bound"


def check_radius(
    analysis: ClassAnalysis,
    rules: Optional[Dict[str, RuleSpec]] = None,
) -> Iterator[Diagnostic]:
    """Rule LM010: inferred information radius vs the declared one."""
    if rules is None:
        from ..rules import RULES as rules_table

        rules = rules_table
    spec = rules["LM010"]
    algo = analysis.name
    label = _declared_label(analysis.contracts)
    hint = (
        "keep per-vertex state in ctx.state; information may enter a "
        "vertex only through its inbox, one hop per round"
    )
    for sink in analysis.sinks:
        if sink.value.radius < RTOP:
            continue
        origin = _first_origin(sink.value, "self-channel")
        via = (
            f" via {origin.note} at line {origin.line}"
            if origin is not None
            else ""
        )
        yield Diagnostic(
            rule_id="LM010",
            severity=spec.severity,
            path=sink.path,
            line=sink.line,
            message=(
                f"algorithm {algo!r} calls ctx.{sink.kind}() on a "
                f"value of unbounded information radius{via}; the "
                f"declared radius is {label}"
            ),
            hint=hint,
            chain=sink.chain,
        )
    for branch in analysis.branches:
        if branch.value.radius < RTOP:
            continue
        origin = _first_origin(branch.value, "self-channel")
        via = (
            f" via {origin.note} at line {origin.line}"
            if origin is not None
            else ""
        )
        yield Diagnostic(
            rule_id="LM010",
            severity=spec.severity,
            path=branch.path,
            line=branch.line,
            message=(
                f"algorithm {algo!r} branches on a value of unbounded "
                f"information radius{via}; the declared radius is "
                f"{label}"
            ),
            hint=hint,
            chain=branch.chain,
        )
    yield from _check_zero_round(analysis, spec)


def _check_zero_round(
    analysis: ClassAnalysis, spec: RuleSpec
) -> Iterator[Diagnostic]:
    """A symmetry-breaking contract cannot be met at radius 0: if every
    halt the class can reach is a radius-0 function and at least one
    leaks ``ctx.id``, the output is a 0-round function of the ID
    assignment — which Linial's lower bound (PAPER.md §2) rules out for
    the declared LCL."""
    problems = {
        (c.driver, c.problem, c.bound_label)
        for c in analysis.contracts
        if c.problem in SYMMETRY_BREAKING_LCLS
    }
    if not problems:
        return
    halts = [s for s in analysis.sinks if s.kind == "halt"]
    if not halts:
        return
    if any(s.value.radius > R0 for s in halts):
        return
    leaking = [s for s in halts if s.value.id_taint]
    if not leaking:
        return
    driver, problem, bound_label = sorted(problems)[0]
    declared = f"{problem}"
    if bound_label:
        declared += f" within {bound_label}"
    for sink in leaking:
        yield Diagnostic(
            rule_id="LM010",
            severity=spec.severity,
            path=sink.path,
            line=sink.line,
            message=(
                f"algorithm {analysis.name!r} halts on a radius-0 "
                f"function of ctx.id, but driver {driver!r} declares "
                f"{declared}: no 0-round algorithm solves a "
                "symmetry-breaking LCL (Linial's lower bound)"
            ),
            hint=(
                "the output must depend on the neighborhood: read the "
                "inbox for at least one round, or certify against a "
                "problem radius 0 can solve"
            ),
            chain=sink.chain,
        )

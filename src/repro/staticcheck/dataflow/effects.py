"""The determinism effect check: rule LM011.

A DetLOCAL algorithm is a *deterministic* function of the radius-t
ball (PAPER.md §2): two runs on the same graph with the same IDs and
inputs must produce bit-identical outputs.  The abstract interpreter
(:mod:`.lattice`) tracks two effects that break that contract without
ever calling a name LM001's pattern matcher knows:

- ``SEED`` — the value was drawn from a *laundered* RNG object: a
  ``random.Random``-style instance held in a module-level variable or
  an instance attribute, so no ``random.*`` call appears in node code;
- ``ORDER`` — the value's content depends on the arbitrary iteration
  order of an unordered set (materializing a set with ``list``/
  ``tuple``/``iter`` or binding its elements in a loop), which CPython
  does not fix across hash-seed changes.

LM011 fires when either effect reaches an observable sink
(``publish``/``halt``/``sleep_until``/``fail``) or a recorded branch
in a class bound or contract-declared as DET.  Findings whose root
cause sits on a line the pattern rules (LM001/LM005) already reported
are skipped, so each defect is reported by exactly one rule.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from ..bindings import DET
from ..diagnostics import Diagnostic, RuleSpec
from .lattice import (
    ORDER,
    SEED,
    AbsVal,
    ClassAnalysis,
    _first_origin,
)

#: effect -> (what happened, how to fix it)
_EFFECT_TEXT = {
    SEED: (
        "a value drawn from a laundered RNG object",
        "DetLOCAL node code gets no random bits; delete the RNG or "
        "register the driver under Model.RAND",
    ),
    ORDER: (
        "a value that depends on unordered-set iteration order",
        "materialize sets with sorted(...) before the order can reach "
        "an output",
    ),
}


def _describe(value: AbsVal, effect: str) -> str:
    origin = _first_origin(value, effect)
    if origin is None:
        return ""
    return f" ({origin.note} at line {origin.line})"


def _root_line(
    value: AbsVal, effect: str
) -> Optional[Tuple[str, int]]:
    origin = _first_origin(value, effect)
    if origin is None:
        return None
    return (origin.path, origin.line)


def check_effects(
    analysis: ClassAnalysis,
    flagged_lines: Optional[Set[Tuple[str, int]]] = None,
    rules: Optional[Dict[str, RuleSpec]] = None,
) -> Iterator[Diagnostic]:
    """Rule LM011: seed/order effects reaching DetLOCAL outputs."""
    if rules is None:
        from ..rules import RULES as rules_table

        rules = rules_table
    if DET not in analysis.models:
        return
    spec = rules["LM011"]
    flagged = flagged_lines or set()
    algo = analysis.name
    for sink in analysis.sinks:
        for effect in (SEED, ORDER):
            if effect not in sink.value.effects:
                continue
            root = _root_line(sink.value, effect)
            if root is not None and root in flagged:
                continue
            what, hint = _EFFECT_TEXT[effect]
            yield Diagnostic(
                rule_id="LM011",
                severity=spec.severity,
                path=sink.path,
                line=sink.line,
                message=(
                    f"DetLOCAL algorithm {algo!r} calls "
                    f"ctx.{sink.kind}() on {what}"
                    f"{_describe(sink.value, effect)}; the output is "
                    "no longer a deterministic function of the "
                    "radius-t ball"
                ),
                hint=hint,
                chain=sink.chain,
            )
    for branch in analysis.branches:
        for effect in (SEED, ORDER):
            if effect not in branch.value.effects:
                continue
            root = _root_line(branch.value, effect)
            if root is not None and root in flagged:
                continue
            what, hint = _EFFECT_TEXT[effect]
            yield Diagnostic(
                rule_id="LM011",
                severity=spec.severity,
                path=branch.path,
                line=branch.line,
                message=(
                    f"DetLOCAL algorithm {algo!r} branches on {what}"
                    f"{_describe(branch.value, effect)}; control flow "
                    "is no longer a deterministic function of the "
                    "radius-t ball"
                ),
                hint=hint,
                chain=branch.chain,
            )

"""Flow- and interprocedurally-sensitive LOCAL-model dataflow analysis.

The pattern rules (LM001–LM009, :mod:`repro.staticcheck.rules`) prove
conformance *syntactically*: they match call names and attribute reads
inside the entry-point closure.  The passes in this subpackage prove
two semantic contracts by **dataflow** over a lowered IR:

- the **information-radius pass** (:mod:`.lattice`, rule LM010) infers,
  for every value a node program manipulates, the radius of the ball it
  can depend on — ``ctx.id``/``ctx.degree`` are radius 0, inbox payloads
  are one hop beyond their sender, joins take the maximum, and values
  routed through a channel the LOCAL model does not have (shared
  algorithm-instance attributes written from node code) are unbounded —
  then checks every published/halted value against the radius declared
  by the driver's :class:`~repro.algorithms.drivers.DriverSpec` bound;
- the **determinism effect pass** (:mod:`.effects`, rule LM011) proves
  DetLOCAL-bound programs seed- and iteration-order-free: an effect
  system tracks values drawn from laundered RNG objects (module-level
  or instance-held ``random.Random``) and values whose content depends
  on unordered-set iteration order, and rejects any that reach a
  publish/halt sink.

Both passes share one abstract interpretation (:class:`.lattice
.Interpreter`) over the IR of :mod:`.ir`, and both consume the declared
contracts recovered statically from ``DriverSpec(...)`` registry entries
and ``subject_from_algorithm(...)`` call sites by :mod:`.specs` — the
analyzer never imports the code it checks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..callgraph import CallGraph
from ..diagnostics import Diagnostic
from .effects import check_effects
from .lattice import ClassAnalysis, Interpreter
from .specs import Contract, SYMMETRY_BREAKING_LCLS, extract_contracts

__all__ = [
    "Contract",
    "ClassAnalysis",
    "Interpreter",
    "SYMMETRY_BREAKING_LCLS",
    "analyzed_driver_names",
    "extract_contracts",
    "run_dataflow",
]


def run_dataflow(
    graph: CallGraph,
    bindings: Optional[dict] = None,
    flagged_lines: Optional[Set[Tuple[str, int]]] = None,
) -> List[Diagnostic]:
    """Run both dataflow passes over every bound algorithm class.

    ``flagged_lines`` carries ``(path, line)`` pairs already reported by
    the pattern rules (LM001/LM005); the effect pass skips findings
    whose root cause sits on one of them so each defect is reported by
    exactly one rule.
    """
    from ..bindings import bind_models
    from .lattice import check_radius

    if bindings is None:
        bindings = bind_models(graph)
    contracts = extract_contracts(graph)
    interpreter = Interpreter(graph, bindings, contracts)
    analyses = interpreter.run()
    flagged = flagged_lines or set()
    diagnostics: List[Diagnostic] = []
    for analysis in analyses:
        diagnostics.extend(check_radius(analysis))
        diagnostics.extend(check_effects(analysis, flagged))
    return diagnostics


def analyzed_driver_names(graph: CallGraph) -> Set[str]:
    """Names of registry drivers / subjects whose entry points the
    dataflow passes actually analyzed — the meta-test's ground truth
    for "no silently-skipped registry entry"."""
    from ..bindings import bind_models

    bindings = bind_models(graph)
    contracts = extract_contracts(graph)
    interpreter = Interpreter(graph, bindings, contracts)
    names: Set[str] = set()
    for analysis in interpreter.run():
        if not analysis.entry_keys:
            continue
        for contract in analysis.contracts:
            names.add(contract.driver)
    return names


def iter_contract_names(contracts: Iterable[Contract]) -> Set[str]:
    """Distinct driver/subject names declared by ``contracts``."""
    return {c.driver for c in contracts}

"""Incremental result cache for the conformance analyzer.

The dataflow passes are whole-corpus (call-graph edges, model bindings
and DriverSpec contracts resolve across modules), so the sound cache
granularity is the *corpus*: a warm run whose inputs are byte-identical
to the cached run replays the stored result without parsing a single
file.  Inputs are fingerprinted in two tiers:

1. **per file**: an ``(mtime_ns, size)`` stat check decides whether the
   stored content hash is still valid — unchanged files are never
   re-read, so the warm path does one ``stat`` per file;
2. **corpus**: the sorted ``(path, sha256)`` pairs, hashed together
   with an analyzer salt.  The salt covers the analyzer's *own* source
   (every ``.py`` file in :mod:`repro.staticcheck`) and the JSON schema
   version, so editing a rule or a dataflow pass invalidates every
   cache — a stale-analyzer replay can never mask a new finding.

The cache file is a single JSON document; a missing, unreadable, or
version-skewed cache degrades to a cold run (never an error — a gate
that crashes on a bad cache is a gate that gets disabled).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .analyzer import (
    AnalysisResult,
    JSON_VERSION,
    analyze_paths,
)
from .diagnostics import Diagnostic
from .modules import discover_files

#: Bumped when the cache document layout changes.
CACHE_VERSION = 1


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 16), b""):
            digest.update(block)
    return digest.hexdigest()


def analyzer_salt() -> str:
    """Content hash of the analyzer itself (this package's sources)
    plus the output-schema version: any analyzer edit is a cache miss."""
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(f"json={JSON_VERSION};cache={CACHE_VERSION};".encode())
    for source in sorted(package_dir.rglob("*.py")):
        digest.update(source.relative_to(package_dir).as_posix().encode())
        digest.update(b"\x00")
        digest.update(_sha256_file(source).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _stat_key(path: Path) -> Optional[Tuple[int, int]]:
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def _file_fingerprints(
    files: Iterable[Path], stored: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """path -> {mtime_ns, size, sha} for every corpus file, reusing a
    stored sha when the stat key matches (the warm fast path)."""
    out: Dict[str, Dict[str, object]] = {}
    for file in files:
        key = _stat_key(file)
        if key is None:
            continue
        mtime_ns, size = key
        entry = stored.get(str(file))
        if (
            entry is not None
            and entry.get("mtime_ns") == mtime_ns
            and entry.get("size") == size
        ):
            sha = str(entry["sha"])
        else:
            sha = _sha256_file(file)
        out[str(file)] = {
            "mtime_ns": mtime_ns,
            "size": size,
            "sha": sha,
        }
    return out


def corpus_key(
    fingerprints: Dict[str, Dict[str, object]], salt: str
) -> str:
    digest = hashlib.sha256()
    digest.update(salt.encode())
    for path in sorted(fingerprints):
        digest.update(path.encode())
        digest.update(b"\x00")
        digest.update(str(fingerprints[path]["sha"]).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _load_cache(cache_path: Path) -> Optional[Dict[str, object]]:
    try:
        with open(cache_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("cache_version") != CACHE_VERSION:
        return None
    return data


def _result_from_cache(data: Dict[str, object]) -> AnalysisResult:
    stored = data["result"]
    assert isinstance(stored, dict)
    return AnalysisResult(
        diagnostics=[
            Diagnostic.from_dict(d) for d in stored["diagnostics"]
        ],
        suppressed=[
            Diagnostic.from_dict(d) for d in stored["suppressed"]
        ],
        files_analyzed=int(stored["files_analyzed"]),
    )


def cached_analyze(
    paths: Iterable[object],
    cache_path: Path,
) -> Tuple[AnalysisResult, bool]:
    """Analyze ``paths`` through the cache at ``cache_path``.

    Returns ``(result, hit)`` — ``hit`` is True when the stored result
    was replayed without running the analyzer.  The cache file is
    rewritten on every miss (best-effort; write failures are ignored).
    """
    files: List[Path] = discover_files(Path(str(p)) for p in paths)
    salt = analyzer_salt()
    cached = _load_cache(Path(cache_path))
    stored_files: Dict[str, Dict[str, object]] = {}
    if cached is not None and isinstance(cached.get("files"), dict):
        stored_files = cached["files"]  # type: ignore[assignment]
    fingerprints = _file_fingerprints(files, stored_files)
    key = corpus_key(fingerprints, salt)
    if cached is not None and cached.get("corpus_key") == key:
        try:
            return _result_from_cache(cached), True
        except (KeyError, TypeError, ValueError, AssertionError):
            pass  # corrupt result payload: fall through to a cold run
    result = analyze_paths(paths)
    document = {
        "cache_version": CACHE_VERSION,
        "corpus_key": key,
        "files": fingerprints,
        "result": {
            "diagnostics": [d.to_dict() for d in result.diagnostics],
            "suppressed": [d.to_dict() for d in result.suppressed],
            "files_analyzed": result.files_analyzed,
        },
    }
    try:
        Path(cache_path).parent.mkdir(parents=True, exist_ok=True)
        with open(cache_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh)
    except OSError:
        pass
    return result, False

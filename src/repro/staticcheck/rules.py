"""The LM rule set: LOCAL-model conformance checks.

Each rule inspects functions *reachable from a bound algorithm's entry
points* (the call-graph closure of ``setup``/``step``), so helpers are
covered and driver-side code — which legitimately holds the
:class:`~repro.graphs.graph.Graph`, draws seeds, and assigns IDs — is
not.  See ``docs/static_analysis.md`` for the paper-grounded rationale
of every rule.

Rule inventory:

========  ========  ====================================================
LM001     error     randomness reachable from a DetLOCAL algorithm
LM002     error     ``ctx.id`` reachable from a RandLOCAL algorithm
LM003     error     node-level code referencing global topology (Graph)
LM004     error     cross-node hidden channel (module state / mutable
                    default written from node code)
LM005     warning   wall-clock / OS entropy / unordered-set iteration in
                    DetLOCAL node code
LM006     warning   publishing values derived from ``ctx.now``
LM007     warning   per-round topology-helper calls in node code the
                    engine already precomputes (adjacency, reverse ports)
LM008     warning   observer callbacks mutating ctx/graph state
                    (observers must be read-only spectators)
LM009     warning   node code swallowing injected faults (bare
                    ``except:`` or handlers naming Exception /
                    FaultEvent-family bases)
LM010     error     inferred information radius exceeds the declared
                    one (dataflow pass, :mod:`.dataflow.lattice`)
LM011     error     DetLOCAL output depends on a laundered seed or on
                    unordered-set iteration order (dataflow pass,
                    :mod:`.dataflow.effects`)
LM012     warning   non-serializable value stored in ``ctx.state``
                    (open files, sockets, locks, generators, lambdas
                    cannot be checkpoint-pickled)
========  ========  ====================================================

LM010/LM011 are produced by the dataflow passes in
:mod:`repro.staticcheck.dataflow`, not by :class:`RuleEngine`; their
specs live in :data:`RULES` so severity, suppression, and reporting are
uniform across all rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .bindings import DET, RAND, Binding, bind_models, entry_keys
from .callgraph import CallGraph, ClassInfo, FunctionInfo, FunctionNode
from .diagnostics import Diagnostic, RuleSpec, Severity
from .modules import ModuleInfo

RULES: Dict[str, RuleSpec] = {
    spec.rule_id: spec
    for spec in (
        RuleSpec(
            "LM001",
            Severity.ERROR,
            "randomness in DetLOCAL node code",
            "DetLOCAL vertices receive no random bits (Section I); a "
            "hidden coin flip voids deterministic round-count claims "
            "(Theorems 3-5).",
        ),
        RuleSpec(
            "LM002",
            Severity.ERROR,
            "vertex ID use in RandLOCAL node code",
            "RandLOCAL vertices are undifferentiated; reading an ID "
            "smuggles in the symmetry-breaking power the separation "
            "(Theorem 5, Corollary 2) quantifies.",
        ),
        RuleSpec(
            "LM003",
            Severity.ERROR,
            "node code references global topology",
            "a t-round algorithm is a function of the radius-t view "
            "only; holding the whole Graph breaks the "
            "indistinguishability arguments (Theorem 5, E12).",
        ),
        RuleSpec(
            "LM004",
            Severity.ERROR,
            "cross-node hidden channel",
            "vertices communicate only via published values on edges; "
            "shared module state is an out-of-band channel that "
            "invalidates message/round accounting.",
        ),
        RuleSpec(
            "LM005",
            Severity.WARNING,
            "nondeterminism source in DetLOCAL node code",
            "wall-clock time, OS entropy, or unordered-set iteration "
            "can differ across runs, so the 'deterministic' round "
            "counts stop being reproducible.",
        ),
        RuleSpec(
            "LM006",
            Severity.WARNING,
            "published value derived from ctx.now",
            "ctx.now is for local scheduling; publishing round-derived "
            "values must be an explicit, documented part of the "
            "algorithm's output contract (see NodeContext.now).",
        ),
        RuleSpec(
            "LM007",
            Severity.WARNING,
            "per-round topology recomputation in node code",
            "the engine precomputes the flat adjacency (CSR) and every "
            "vertex's reverse ports once per run; node code re-deriving "
            "neighbor structure each round repeats that work "
            "O(rounds) times (see docs/performance.md).",
        ),
        RuleSpec(
            "LM008",
            Severity.WARNING,
            "observer callback mutates engine state",
            "observers are read-only spectators: a callback that "
            "mutates the live ctx (or draws from ctx.random), the "
            "graph, or a RoundBatch's payload arrays changes the run "
            "it claims to measure, voiding the telemetry determinism "
            "contract (docs/observability.md).",
        ),
        RuleSpec(
            "LM009",
            Severity.WARNING,
            "injected faults swallowed in node code",
            "fault events (repro.faults) must surface to the engine "
            "and the harness, where failure-probability accounting "
            "happens (the RandLOCAL 1/n contract, Section I); a broad "
            "except in step() silently converts an injected fault "
            "into wrong algorithm behavior (docs/robustness.md).",
        ),
        RuleSpec(
            "LM010",
            Severity.ERROR,
            "inferred information radius exceeds the declared bound",
            "a t-round LOCAL algorithm is exactly a function of the "
            "radius-t ball (PAPER.md §2); a value routed through a "
            "channel the model does not have (shared instance "
            "attributes written from node code), or a 0-round "
            "ID-dependent output for a symmetry-breaking LCL "
            "(Linial's lower bound), contradicts the DriverSpec-"
            "declared radius.",
        ),
        RuleSpec(
            "LM011",
            Severity.ERROR,
            "DetLOCAL output depends on seed or iteration order",
            "a DET-registered driver must compute a deterministic "
            "function of the radius-t ball; a draw from a laundered "
            "RNG object or unordered-set iteration order reaching an "
            "output makes two runs diverge, voiding the deterministic "
            "round-count claims (Theorems 3-5).",
        ),
        RuleSpec(
            "LM012",
            Severity.WARNING,
            "non-serializable value stored in ctx.state",
            "checkpoint snapshots pickle every node's ctx.state "
            "(repro.core.checkpoint); an open file, socket, lock, "
            "generator, or lambda stored there makes the first "
            "save() raise CheckpointError mid-run instead of "
            "snapshotting (docs/robustness.md).",
        ),
    )
}

#: The RunObserver callback protocol (see repro/obs/observer.py); a
#: class defining any of these is treated as an observer by LM008.
_OBSERVER_CALLBACKS = {
    "on_run_start",
    "on_round_start",
    "on_node_step",
    "on_publish",
    "on_halt",
    "on_failure",
    "on_fault",
    "on_round_end",
    "on_run_end",
    # Batch-plane callbacks (BatchRunObserver): the RoundBatch payload
    # arrays are engine-owned views, as read-only as ctx and the graph.
    "on_round_batch",
    "on_run_fault",
    "on_backend_info",
}

#: Exception names whose handlers (in node code) also catch the
#: injected-fault taxonomy — the LM009 pattern.  FaultEvent subclasses
#: are ReproError subclasses, so catching any base on this list
#: swallows faults.
_BROAD_FAULT_CATCHES = {
    "BaseException",
    "Exception",
    "ReproError",
    "SimulationError",
    "FaultEvent",
    "BudgetExceededError",
}

#: NodeContext lifecycle methods; calling one from an observer callback
#: steers the run instead of watching it.
_CTX_LIFECYCLE = {
    "publish",
    "halt",
    "fail",
    "sleep_until",
    "_commit",
}

#: Graph-level helpers the engine precomputes per run; calling them per
#: round from node code is the LM007 pattern.
_TOPOLOGY_HELPERS = {
    "neighbors",
    "endpoint",
    "reverse_port",
    "reverse_ports",
    "port_of",
}

#: Modules whose call results are nondeterministic across runs.
_NONDET_MODULES = {
    "time": {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
    },
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid4"},
    "datetime": {"now", "utcnow", "today"},
}

#: Constructors whose return values cannot be pickled into a
#: checkpoint snapshot (rule LM012), keyed by module; the paired string
#: names the resource class in the diagnostic.
_UNPICKLABLE_CALLS: Dict[str, Tuple[Set[str], str]] = {
    "socket": (
        {"socket", "socketpair", "create_connection", "create_server"},
        "a socket",
    ),
    "threading": (
        {
            "Lock",
            "RLock",
            "Condition",
            "Semaphore",
            "BoundedSemaphore",
            "Event",
            "Barrier",
        },
        "a lock/synchronization primitive",
    ),
    "multiprocessing": (
        {
            "Lock",
            "RLock",
            "Condition",
            "Semaphore",
            "BoundedSemaphore",
            "Event",
            "Barrier",
        },
        "a lock/synchronization primitive",
    ),
}

#: Builtin calls whose return values cannot be checkpoint-pickled.
_UNPICKLABLE_BUILTINS = {
    "open": "an open file handle",
    "iter": "an iterator",
}

#: Dotted module prefixes whose contents are randomness sources.  The
#: match is prefix-aware on the *resolved* dotted origin, so aliased
#: submodule imports (``import numpy.random as nr``) and aliased
#: from-imports (``from random import random as r``) both resolve here.
_RANDOM_MODULES = ("random", "secrets", "numpy.random")

_MUTATORS = {
    "append",
    "add",
    "update",
    "extend",
    "insert",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
}


def _ctx_param_names(fn: FunctionNode) -> Set[str]:
    """Parameters holding a NodeContext: named ``ctx`` or annotated so."""
    names: Set[str] = set()
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
        fn.args.kwonlyargs
    )
    for arg in args:
        if arg.arg == "ctx":
            names.add(arg.arg)
            continue
        ann = arg.annotation
        text = ""
        if isinstance(ann, ast.Name):
            text = ann.id
        elif isinstance(ann, ast.Attribute):
            text = ann.attr
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
        if "NodeContext" in text:
            names.add(arg.arg)
    return names


def _walk_skipping_annotations(node: ast.AST) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but does not descend into type annotations
    (annotations may legitimately mention out-of-view types)."""
    queue: List[ast.AST] = [node]
    while queue:
        current = queue.pop(0)
        yield current
        for name, value in ast.iter_fields(current):
            if name in ("annotation", "returns"):
                continue
            if isinstance(value, ast.AST):
                queue.append(value)
            elif isinstance(value, list):
                queue.extend(v for v in value if isinstance(v, ast.AST))


@dataclass
class _Site:
    """One reachable function with its context for rule matching."""

    binding: Binding
    info: FunctionInfo
    node: FunctionNode
    module: ModuleInfo
    chain: Tuple[str, ...]
    ctx_names: Set[str]


class RuleEngine:
    """Runs the LM rules over a corpus and yields raw diagnostics
    (suppressions are applied by the analyzer, not here)."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.bindings = bind_models(graph)

    # ------------------------------------------------------------------
    # Site enumeration
    # ------------------------------------------------------------------
    def _sites(self, binding: Binding) -> List[_Site]:
        chains = self.graph.reachable_from(
            entry_keys(binding, self.graph)
        )
        sites = []
        for key, chain in chains.items():
            info, node, module = self.graph.function(key)
            sites.append(
                _Site(
                    binding=binding,
                    info=info,
                    node=node,
                    module=module,
                    chain=chain,
                    ctx_names=_ctx_param_names(node),
                )
            )
        return sites

    def _emit(
        self,
        rule_id: str,
        site: _Site,
        node: ast.AST,
        message: str,
        hint: str,
    ) -> Diagnostic:
        spec = RULES[rule_id]
        return Diagnostic(
            rule_id=rule_id,
            severity=spec.severity,
            path=str(site.module.path),
            line=getattr(node, "lineno", site.node.lineno),
            message=message,
            hint=hint,
            chain=site.chain,
        )

    def run(self) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for binding in self.bindings.values():
            sites = self._sites(binding)
            for site in sites:
                if DET in binding.models:
                    diagnostics.extend(self._check_lm001(site))
                    diagnostics.extend(self._check_lm005(site))
                if RAND in binding.models:
                    diagnostics.extend(self._check_lm002(site))
                diagnostics.extend(self._check_lm003(site))
                diagnostics.extend(self._check_lm004(site))
                diagnostics.extend(self._check_lm006(site))
                diagnostics.extend(self._check_lm007(site))
                diagnostics.extend(self._check_lm009(site))
                diagnostics.extend(self._check_lm012(site))
        # LM008 ranges over observer classes, not algorithm bindings.
        diagnostics.extend(self._check_lm008())
        # One finding per (rule, path, line): a helper shared by several
        # bound classes is reported once, with the first chain found.
        unique: Dict[Tuple[str, str, int], Diagnostic] = {}
        for diag in diagnostics:
            unique.setdefault((diag.rule_id, diag.path, diag.line), diag)
        return sorted(
            unique.values(), key=lambda d: (d.path, d.line, d.rule_id)
        )

    # ------------------------------------------------------------------
    # LM001 — randomness reachable from DetLOCAL
    # ------------------------------------------------------------------
    def _check_lm001(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        for node in ast.walk(site.node):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in site.ctx_names
            ):
                yield self._emit(
                    "LM001",
                    site,
                    node,
                    f"ctx.random read in code reachable from DetLOCAL "
                    f"algorithm {algo!r}",
                    "DetLOCAL node code gets no random bits; derive "
                    "choices from ctx.id or inputs, or register the "
                    "algorithm under Model.RAND",
                )
            elif isinstance(node, ast.Name) and node.id in site.ctx_names:
                continue
            elif isinstance(node, (ast.Name, ast.Attribute)):
                dotted = _resolved_dotted(node, site.module)
                origin = (
                    _matches_module(dotted, _RANDOM_MODULES)
                    if dotted is not None
                    else None
                )
                if origin is not None:
                    yield self._emit(
                        "LM001",
                        site,
                        node,
                        f"{origin!r} module used in code reachable from "
                        f"DetLOCAL algorithm {algo!r}",
                        "remove the randomness or move it to the driver "
                        "(ID/seed assignment happens outside node code)",
                    )

    # ------------------------------------------------------------------
    # LM002 — ctx.id reachable from RandLOCAL
    # ------------------------------------------------------------------
    def _check_lm002(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        for node in ast.walk(site.node):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "id"
                and isinstance(node.value, ast.Name)
                and node.value.id in site.ctx_names
            ):
                yield self._emit(
                    "LM002",
                    site,
                    node,
                    f"ctx.id read in code reachable from RandLOCAL "
                    f"algorithm {algo!r}",
                    "RandLOCAL vertices are undifferentiated; draw a "
                    "random identifier from ctx.random instead",
                )

    # ------------------------------------------------------------------
    # LM003 — node code referencing global topology
    # ------------------------------------------------------------------
    def _check_lm003(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        hint = (
            "node code sees only ctx (degree, ports, inbox, globals); "
            "pass per-vertex inputs via node_inputs instead of topology"
        )
        args = list(site.node.args.posonlyargs) + list(
            site.node.args.args
        ) + list(site.node.args.kwonlyargs)
        for arg in args:
            ann = arg.annotation
            text = ""
            if isinstance(ann, ast.Name):
                text = ann.id
            elif isinstance(ann, ast.Attribute):
                text = ann.attr
            elif isinstance(ann, ast.Constant) and isinstance(
                ann.value, str
            ):
                text = ann.value
            if text.strip("'\"") == "Graph" or text.startswith("Graph["):
                yield self._emit(
                    "LM003",
                    site,
                    ann if ann is not None else site.node,
                    f"function {site.info.display!r}, reachable from "
                    f"algorithm {algo!r}, takes the global Graph as a "
                    "parameter",
                    hint,
                )
        for node in _walk_skipping_annotations(site.node):
            if isinstance(node, ast.Name) and node.id == "Graph":
                origin = site.module.import_origin("Graph") or "Graph"
                if origin.rpartition(".")[2] == "Graph":
                    yield self._emit(
                        "LM003",
                        site,
                        node,
                        f"Graph referenced in code reachable from "
                        f"algorithm {algo!r} (out-of-view information)",
                        hint,
                    )

    # ------------------------------------------------------------------
    # LM004 — cross-node hidden channels
    # ------------------------------------------------------------------
    def _check_lm004(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        module_vars = set(site.module.module_vars)
        for node in ast.walk(site.node):
            if isinstance(node, ast.Global):
                shared = [n for n in node.names if n in module_vars]
                for name in shared or node.names:
                    yield self._emit(
                        "LM004",
                        site,
                        node,
                        f"algorithm {algo!r} writes module-level name "
                        f"{name!r} from node code (hidden cross-node "
                        "channel)",
                        "keep per-vertex state in ctx.state; vertices "
                        "may only communicate via publish()",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in module_vars
            ):
                yield self._emit(
                    "LM004",
                    site,
                    node,
                    f"algorithm {algo!r} mutates module-level "
                    f"{node.func.value.id!r} from node code (hidden "
                    "cross-node channel)",
                    "keep per-vertex state in ctx.state; vertices may "
                    "only communicate via publish()",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_vars
                    ):
                        yield self._emit(
                            "LM004",
                            site,
                            node,
                            f"algorithm {algo!r} writes into "
                            f"module-level {target.value.id!r} from "
                            "node code (hidden cross-node channel)",
                            "keep per-vertex state in ctx.state",
                        )
        for default in list(site.node.args.defaults) + [
            d for d in site.node.args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            ):
                yield self._emit(
                    "LM004",
                    site,
                    default,
                    f"mutable default argument on {site.info.display!r} "
                    f"(reachable from algorithm {algo!r}) is shared "
                    "across every vertex's calls",
                    "default to None and create the container inside "
                    "the function",
                )

    # ------------------------------------------------------------------
    # LM005 — nondeterminism sources in DetLOCAL node code
    # ------------------------------------------------------------------
    def _check_lm005(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        set_vars = _set_valued_locals(site.node)
        for node in ast.walk(site.node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                # Resolve the full dotted receiver chain so aliased
                # from-imports (``from datetime import datetime as
                # dt; dt.now()``) and dotted chains (``import datetime
                # as d; d.datetime.now()``) land on the same origin as
                # the plain spelling.
                dotted = _resolved_dotted(node.func, site.module)
                if dotted is None and isinstance(
                    node.func.value, ast.Name
                ):
                    dotted = f"{node.func.value.id}.{node.func.attr}"
                if dotted is not None:
                    receiver, _, leaf = dotted.rpartition(".")
                    mod = _matches_module(receiver, _NONDET_MODULES)
                    if mod is not None and leaf in _NONDET_MODULES[mod]:
                        yield self._emit(
                            "LM005",
                            site,
                            node,
                            f"{dotted}() called in "
                            f"DetLOCAL node code of {algo!r} "
                            "(nondeterministic across runs)",
                            "deterministic node code may only depend "
                            "on ctx (id, inputs, globals, inbox)",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                origin = site.module.import_origin(node.func.id) or ""
                mod, _, attr = origin.rpartition(".")
                if attr and mod in _NONDET_MODULES and (
                    attr in _NONDET_MODULES[mod]
                ):
                    yield self._emit(
                        "LM005",
                        site,
                        node,
                        f"{origin}() called in DetLOCAL node code of "
                        f"{algo!r} (nondeterministic across runs)",
                        "deterministic node code may only depend on "
                        "ctx (id, inputs, globals, inbox)",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                if _is_set_expr(iter_expr, set_vars):
                    yield self._emit(
                        "LM005",
                        site,
                        iter_expr,
                        f"iteration over an unordered set in DetLOCAL "
                        f"node code of {algo!r}; the visit order can "
                        "leak into published values",
                        "iterate sorted(...) for a deterministic order",
                    )

    # ------------------------------------------------------------------
    # LM006 — publishing ctx.now-derived values
    # ------------------------------------------------------------------
    def _check_lm006(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        if not site.ctx_names:
            return
        tainted = _now_tainted_names(site.node, site.ctx_names)
        for node in ast.walk(site.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "publish"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in site.ctx_names
            ):
                continue
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                if _mentions_now(arg, site.ctx_names, tainted):
                    yield self._emit(
                        "LM006",
                        site,
                        node,
                        f"algorithm {algo!r} publishes a value derived "
                        "from ctx.now",
                        "round indices are for local scheduling; if "
                        "the round number is genuinely part of the "
                        "output contract, document it and add "
                        "'# repro: ignore[LM006]'",
                    )
                    break


    # ------------------------------------------------------------------
    # LM007 — per-round topology recomputation in node code
    # ------------------------------------------------------------------
    def _check_lm007(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        for node in ast.walk(site.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TOPOLOGY_HELPERS
            ):
                continue
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in site.ctx_names
            ):
                continue
            yield self._emit(
                "LM007",
                site,
                node,
                f"algorithm {algo!r} calls the topology helper "
                f"{node.func.attr!r} per round in node code; the "
                "engine precomputes this per run",
                "read ctx.input['reverse_ports'] / the inbox instead "
                "of rebuilding neighbor structure every step",
            )


    # ------------------------------------------------------------------
    # LM009 — injected faults swallowed in node code
    # ------------------------------------------------------------------
    def _check_lm009(self, site: _Site) -> Iterator[Diagnostic]:
        algo = site.binding.name
        hint = (
            "catch the narrowest exception the step actually expects; "
            "injected faults (FaultEvent, BudgetExceededError) must "
            "reach the engine for failure accounting"
        )
        for node in ast.walk(site.node):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self._emit(
                    "LM009",
                    site,
                    node,
                    f"bare 'except:' in code reachable from algorithm "
                    f"{algo!r} swallows injected faults",
                    hint,
                )
                continue
            broad = sorted(
                name
                for name in _handler_exception_names(node.type)
                if name in _BROAD_FAULT_CATCHES
            )
            if broad:
                yield self._emit(
                    "LM009",
                    site,
                    node,
                    f"'except {', '.join(broad)}' in code reachable "
                    f"from algorithm {algo!r} also catches injected "
                    "faults (FaultEvent/BudgetExceededError)",
                    hint,
                )

    # ------------------------------------------------------------------
    # LM012 — non-serializable values stored in ctx.state
    # ------------------------------------------------------------------
    def _check_lm012(self, site: _Site) -> Iterator[Diagnostic]:
        if not site.ctx_names:
            return
        algo = site.binding.name
        hint = (
            "ctx.state must hold plain data (numbers, strings, "
            "tuples, lists, dicts) so checkpoint snapshots can pickle "
            "it; open resources in the driver or rebuild them in "
            "step() instead of storing the handle"
        )
        tainted = _unpicklable_locals(site.node, site.module)
        for node in ast.walk(site.node):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                _is_ctx_state_target(t, site.ctx_names)
                for t in node.targets
            ):
                continue
            reason = _unpicklable_reason(node.value, site.module)
            if reason is None and isinstance(node.value, ast.Name):
                reason = tainted.get(node.value.id)
            if reason is not None:
                yield self._emit(
                    "LM012",
                    site,
                    node,
                    f"ctx.state receives {reason} in code reachable "
                    f"from algorithm {algo!r}; the first checkpoint "
                    "save() will fail to pickle it (CheckpointError)",
                    hint,
                )

    # ------------------------------------------------------------------
    # LM008 — observer callbacks must not mutate engine state
    # ------------------------------------------------------------------
    def _check_lm008(self) -> Iterator[Diagnostic]:
        for cls_name in sorted(self.graph.classes):
            cls = self.graph.classes[cls_name]
            callbacks = {
                name: node
                for name, node in cls.methods.items()
                if name in _OBSERVER_CALLBACKS
            }
            if not callbacks:
                continue
            for name in sorted(callbacks):
                method = callbacks[name]
                ctx_names = _ctx_param_names(method)
                tracked = (
                    ctx_names
                    | _graph_param_names(method)
                    | _batch_param_names(method)
                )
                if not tracked:
                    continue
                yield from self._lm008_method(
                    cls, name, method, tracked, ctx_names
                )

    def _lm008_method(
        self,
        cls: "ClassInfo",
        name: str,
        method: FunctionNode,
        tracked: Set[str],
        ctx_names: Set[str],
    ) -> Iterator[Diagnostic]:
        spec = RULES["LM008"]
        where = f"{cls.name}.{name}"

        def emit(node: ast.AST, message: str, hint: str) -> Diagnostic:
            return Diagnostic(
                rule_id="LM008",
                severity=spec.severity,
                path=str(cls.module.path),
                line=getattr(node, "lineno", method.lineno),
                message=message,
                hint=hint,
                chain=(where,),
            )

        hint = (
            "observers are read-only spectators; keep mutable state "
            "on the observer instance (self), never on ctx or the "
            "graph"
        )
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    root = _store_root_name(target)
                    if root is not None and root in tracked:
                        yield emit(
                            node,
                            f"observer callback {where!r} assigns "
                            f"into {root!r} (live engine state)",
                            hint,
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                func = node.func
                if (
                    func.attr in _CTX_LIFECYCLE
                    and isinstance(func.value, ast.Name)
                    and func.value.id in ctx_names
                ):
                    yield emit(
                        node,
                        f"observer callback {where!r} calls "
                        f"ctx.{func.attr}() — steering the run, not "
                        "watching it",
                        hint,
                    )
                elif (
                    isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ctx_names
                ):
                    yield emit(
                        node,
                        f"observer callback {where!r} draws from "
                        "ctx.random — consuming the vertex's private "
                        "random stream changes the observed run",
                        hint,
                    )
                elif func.attr in _MUTATORS:
                    root = _expr_root_name(func.value)
                    if root is not None and root in tracked:
                        yield emit(
                            node,
                            f"observer callback {where!r} mutates "
                            f"{root!r} via .{func.attr}() (live "
                            "engine state)",
                            hint,
                        )


def _handler_exception_names(node: ast.expr) -> List[str]:
    """Exception class names an ``except`` clause matches on:
    ``except Exception`` -> ['Exception']; ``except (ValueError,
    errors.FaultEvent)`` -> ['ValueError', 'FaultEvent']."""
    if isinstance(node, ast.Tuple):
        names: List[str] = []
        for element in node.elts:
            names.extend(_handler_exception_names(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _graph_param_names(fn: FunctionNode) -> Set[str]:
    """Parameters holding a Graph: named ``graph`` or annotated so."""
    names: Set[str] = set()
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
        fn.args.kwonlyargs
    )
    for arg in args:
        if arg.arg == "graph":
            names.add(arg.arg)
            continue
        ann = arg.annotation
        text = ""
        if isinstance(ann, ast.Name):
            text = ann.id
        elif isinstance(ann, ast.Attribute):
            text = ann.attr
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
        if "Graph" in text:
            names.add(arg.arg)
    return names


def _batch_param_names(fn: FunctionNode) -> Set[str]:
    """Parameters holding a RoundBatch: named ``batch`` or annotated
    so.  Batch payload arrays are engine-owned (the vectorized backend
    hands out views of its live buffers); writing into them corrupts
    the run being observed."""
    names: Set[str] = set()
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(
        fn.args.kwonlyargs
    )
    for arg in args:
        if arg.arg == "batch":
            names.add(arg.arg)
            continue
        ann = arg.annotation
        text = ""
        if isinstance(ann, ast.Name):
            text = ann.id
        elif isinstance(ann, ast.Attribute):
            text = ann.attr
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
        if "RoundBatch" in text:
            names.add(arg.arg)
    return names


def _expr_root_name(node: ast.expr) -> Optional[str]:
    """Root Name of an attribute/subscript chain (``ctx.state['x']``
    -> 'ctx'), or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _store_root_name(target: ast.expr) -> Optional[str]:
    """Root Name of an assignment *target* that writes through an
    attribute or subscript (plain ``name = ...`` rebinds a local and is
    not a mutation)."""
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return _expr_root_name(target)
    return None


def _resolved_dotted(
    node: ast.AST, module: ModuleInfo
) -> Optional[str]:
    """Full dotted path of a Name/Attribute chain with the root alias
    resolved through the module's import table: ``nr.random`` under
    ``import numpy.random as nr`` -> 'numpy.random.random'; ``r`` under
    ``from random import random as r`` -> 'random.random'.  None when
    the root is not an imported name."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    origin = module.import_origin(current.id)
    if not origin:
        return None
    return ".".join([origin] + list(reversed(parts)))


def _matches_module(
    dotted: str, modules: Iterable[str]
) -> Optional[str]:
    """The entry of ``modules`` that ``dotted`` resolves into — an
    exact match or a dotted-prefix match ('numpy.random.random' is
    inside 'numpy.random' but 'numpy.randomize' is not)."""
    for mod in modules:
        if dotted == mod or dotted.startswith(mod + "."):
            return mod
    return None


def _is_set_expr(node: ast.expr, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    return False


def _set_valued_locals(fn: FunctionNode) -> Set[str]:
    """Local names assigned a set-valued expression anywhere in ``fn``.

    Names that are *also* assigned a non-set value somewhere are dropped
    (conservative: only flag names that are unambiguously sets)."""
    set_names: Set[str] = set()
    other_names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if _is_set_expr(node.value, set()):
                    set_names.add(target.id)
                else:
                    other_names.add(target.id)
    return set_names - other_names


def _is_ctx_state_target(
    target: ast.expr, ctx_names: Set[str]
) -> bool:
    """True for ``ctx.state[...]`` subscript-assignment targets (and
    the rarer whole-dict rebind ``ctx.state = ...``)."""
    if isinstance(target, ast.Subscript):
        target = target.value
    return (
        isinstance(target, ast.Attribute)
        and target.attr == "state"
        and isinstance(target.value, ast.Name)
        and target.value.id in ctx_names
    )


def _unpicklable_reason(
    node: ast.expr, module: ModuleInfo
) -> Optional[str]:
    """Why ``node``'s value cannot be checkpoint-pickled, or None.

    Recognizes the LM012 taxonomy: lambdas, generator expressions,
    ``open()``/``iter()`` calls, and constructor calls into the socket
    and lock modules (:data:`_UNPICKLABLE_CALLS`)."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        origin = module.import_origin(func.id)
        if origin is None:
            if func.id in _UNPICKLABLE_BUILTINS:
                return _UNPICKLABLE_BUILTINS[func.id]
            return None
        dotted = origin
    else:
        dotted = _resolved_dotted(func, module)
        if dotted is None:
            return None
    mod = _matches_module(dotted, _UNPICKLABLE_CALLS)
    if mod is None:
        return None
    leaves, reason = _UNPICKLABLE_CALLS[mod]
    leaf = dotted.rpartition(".")[2]
    return reason if leaf in leaves else None


def _unpicklable_locals(
    fn: FunctionNode, module: ModuleInfo
) -> Dict[str, str]:
    """Local names unambiguously bound to an unpicklable value in
    ``fn`` (conservative: a name also assigned something innocuous
    elsewhere is dropped), mapped to the reason string."""
    reasons: Dict[str, str] = {}
    clean: Set[str] = set()
    for node in ast.walk(fn):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.With):
            # `with open(...) as fh:` binds fh to the handle too.
            for item in node.items:
                if item.optional_vars is not None:
                    reason = (
                        _unpicklable_reason(item.context_expr, module)
                        if item.context_expr is not None
                        else None
                    )
                    if reason is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        reasons.setdefault(
                            item.optional_vars.id, reason
                        )
            continue
        if value is None:
            continue
        reason = _unpicklable_reason(value, module)
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if reason is not None:
                reasons.setdefault(target.id, reason)
            else:
                clean.add(target.id)
    return {
        name: why for name, why in reasons.items() if name not in clean
    }


def _now_tainted_names(
    fn: FunctionNode, ctx_names: Set[str]
) -> Set[str]:
    """Fixed point of: a name is tainted if assigned an expression
    mentioning ``ctx.now`` or another tainted name."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            targets: Sequence[ast.expr] = ()
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.NamedExpr):
                # Walrus bindings taint like assignments: the bound
                # name escapes the expression into the enclosing scope.
                targets, value = [node.target], node.value
            if value is None:
                continue
            if not _mentions_now(value, ctx_names, tainted):
                continue
            for target in targets:
                for name in _plain_target_names(target):
                    if name not in tainted and name not in ctx_names:
                        tainted.add(name)
                        changed = True
    return tainted


def _plain_target_names(target: ast.expr) -> List[str]:
    """Names bound by a plain/unpacking assignment target.  Subscript
    and attribute stores (``ctx.state[...] = now``) bind no local name
    and are deliberately not tracked — element-level taint would smear
    onto the whole container."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_plain_target_names(element))
        return names
    return []


_COMPREHENSIONS = (
    ast.ListComp,
    ast.SetComp,
    ast.GeneratorExp,
    ast.DictComp,
)


def _mentions_now(
    node: ast.AST, ctx_names: Set[str], tainted: Set[str]
) -> bool:
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "now"
        and isinstance(node.value, ast.Name)
        and node.value.id in ctx_names
    ):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, _COMPREHENSIONS):
        # Comprehension targets are a fresh scope: a target shadowing
        # a tainted outer name is clean inside the comprehension (the
        # iterables themselves evaluate in the enclosing scope, so a
        # tainted iterable still taints the whole expression).
        for gen in node.generators:
            if _mentions_now(gen.iter, ctx_names, tainted):
                return True
        bound = {
            name
            for gen in node.generators
            for name in _plain_target_names(gen.target)
        }
        inner = tainted - bound
        body: List[ast.expr] = [
            cond for gen in node.generators for cond in gen.ifs
        ]
        if isinstance(node, ast.DictComp):
            body.extend([node.key, node.value])
        else:
            body.append(node.elt)
        return any(
            _mentions_now(part, ctx_names, inner) for part in body
        )
    return any(
        _mentions_now(child, ctx_names, tainted)
        for child in ast.iter_child_nodes(node)
    )

"""Model bindings: which algorithm classes run under which LOCAL model.

The engine binds an algorithm to DetLOCAL or RandLOCAL at the
``run_local(graph, Algorithm(), Model.DET, ...)`` call site — there is
no class-level declaration.  This pass recovers those bindings
statically:

1. find every :class:`~repro.core.algorithm.SyncAlgorithm` subclass in
   the corpus (transitively, by base-name chains);
2. find every ``run_local(...)`` call and resolve its algorithm
   argument (direct constructor call, or a local variable assigned one
   in the same function) and its model argument (``Model.DET`` /
   ``Model.RAND``);
3. map class -> set of models it is executed under.

A class bound under both models must satisfy both rule sets — exactly
the semantics of the runtime gate it mirrors
(:class:`~repro.core.errors.ModelViolationError`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph, ClassInfo
from .modules import ModuleInfo

#: Recognized node-program entry points.  ``setup``/``step`` are this
#: engine's interface; ``init``/``send``/``receive`` are accepted for
#: message-passing-style formulations.
ENTRY_POINTS = ("setup", "step", "init", "send", "receive")

#: Root base class marking a node program.
ALGORITHM_BASE = "SyncAlgorithm"

DET = "DET"
RAND = "RAND"


@dataclass
class Binding:
    """One algorithm class with every model it is executed under."""

    class_info: ClassInfo
    models: Set[str] = field(default_factory=set)
    #: (module name, line) of each binding call site, for diagnostics.
    sites: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.class_info.name


def algorithm_classes(graph: CallGraph) -> Dict[str, ClassInfo]:
    """All transitive ``SyncAlgorithm`` subclasses in the corpus."""
    result: Dict[str, ClassInfo] = {}

    def derives(name: str, seen: Set[str]) -> bool:
        if name in seen:
            return False
        seen.add(name)
        cinfo = graph.classes.get(name)
        if cinfo is None:
            return False
        for base in cinfo.bases:
            if base == ALGORITHM_BASE or derives(base, seen):
                return True
        return False

    for name, cinfo in graph.classes.items():
        if derives(name, set()):
            result[name] = cinfo
    return result


def _model_of(node: ast.expr) -> Optional[str]:
    """``Model.DET`` / ``Model.RAND`` attribute expressions."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "Model"
        and node.attr in (DET, RAND)
    ):
        return node.attr
    return None


def _algorithm_arg(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "algorithm":
            return kw.value
    return None


def _model_arg(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) >= 3:
        return call.args[2]
    for kw in call.keywords:
        if kw.arg == "model":
            return kw.value
    return None


def _local_constructor_assignments(
    scope: ast.AST, graph: CallGraph, module: ModuleInfo
) -> Dict[str, str]:
    """``v = SomeAlgorithm(...)`` assignments in a function body."""
    assigned: Dict[str, str] = {}
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
        ):
            continue
        cinfo = graph.resolve_class(value.func.id, module)
        if cinfo is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                assigned[target.id] = cinfo.name
    return assigned


def _resolve_algorithm_expr(
    expr: ast.expr,
    graph: CallGraph,
    module: ModuleInfo,
    local_ctors: Dict[str, str],
) -> Optional[str]:
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        cinfo = graph.resolve_class(expr.func.id, module)
        if cinfo is not None:
            return cinfo.name
    elif isinstance(expr, ast.Name):
        if expr.id in local_ctors:
            return local_ctors[expr.id]
        cinfo = graph.resolve_class(expr.id, module)
        if cinfo is not None:
            return cinfo.name
    return None


def bind_models(graph: CallGraph) -> Dict[str, Binding]:
    """Scan the corpus for ``run_local`` call sites and return the
    class -> models map over every discovered algorithm class.

    Classes never passed to ``run_local`` in the analyzed code get an
    empty model set — they are still checked by the model-agnostic
    rules (LM003/LM004/LM006) but not by the model-specific ones.
    """
    bindings: Dict[str, Binding] = {
        name: Binding(class_info=cinfo)
        for name, cinfo in algorithm_classes(graph).items()
    }
    for module in graph.modules:
        # Each function body gets its own local-constructor table; the
        # module body (scripts, tests) gets one too.
        scopes: List[ast.AST] = [module.tree]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            local_ctors = _local_constructor_assignments(
                scope, graph, module
            )
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name != "run_local":
                    continue
                model_expr = _model_arg(node)
                model = _model_of(model_expr) if model_expr else None
                if model is None:
                    continue
                algo_expr = _algorithm_arg(node)
                if algo_expr is None:
                    continue
                cls = _resolve_algorithm_expr(
                    algo_expr, graph, module, local_ctors
                )
                if cls is None or cls not in bindings:
                    continue
                binding = bindings[cls]
                binding.models.add(model)
                binding.sites.append((module.name, node.lineno))
    return bindings


def entry_keys(binding: Binding, graph: CallGraph) -> List[str]:
    """Call-graph keys of the binding's node-program entry points,
    resolved along the class's base chain (inherited entry points count
    — a subclass bound to a model executes its parent's ``step``)."""
    keys = []
    for entry in ENTRY_POINTS:
        key = graph.resolve_method(binding.name, entry)
        if key is not None:
            keys.append(key)
    return keys

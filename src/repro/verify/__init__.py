"""Property-based differential verification of LOCAL algorithms.

Three layers (see :doc:`docs/verification.md`):

- :mod:`repro.verify.gen` — seeded instance generation and
  halve-and-retest shrinking;
- :mod:`repro.verify.relations` — the metamorphic relation catalogue
  (ID relabeling, port permutation, vertex-order equivariance, engine
  equivalence, observer neutrality, fault-plan determinism, order
  invariance) over normalized :class:`Subject` handles;
- :mod:`repro.verify.certify` — per-ball LCL certificates with a
  round-count audit against each driver's declared complexity bound;
- :mod:`repro.verify.harness` — the driver-registry sweep behind the
  ``repro verify`` CLI subcommand.
"""

from .certify import (
    CERTIFICATE_SCHEMA,
    CERTIFICATE_VERSION,
    BallViolation,
    Certificate,
    certify,
)
from .gen import (
    Instance,
    make_instance,
    permute_ports,
    permute_vertices,
    shrink_instance,
    shuffled_ids,
    trial_seeds,
)
from .harness import (
    CellResult,
    Counterexample,
    VerifyReport,
    find_counterexample,
    run_verification,
    write_counterexamples,
)
from .relations import (
    CheckpointResume,
    EngineEquivalence,
    FaultPlanDeterminism,
    IdRelabeling,
    ObserverNeutrality,
    OrderInvariance,
    PartitionInvariance,
    PortPermutation,
    Relation,
    RelationViolation,
    Subject,
    VertexOrderInvariance,
    capture,
    run_outcome,
    standard_relations,
    subject_from_algorithm,
    subject_from_spec,
)

__all__ = [
    "BallViolation",
    "CERTIFICATE_SCHEMA",
    "CERTIFICATE_VERSION",
    "CellResult",
    "Certificate",
    "CheckpointResume",
    "Counterexample",
    "EngineEquivalence",
    "FaultPlanDeterminism",
    "IdRelabeling",
    "Instance",
    "ObserverNeutrality",
    "OrderInvariance",
    "PartitionInvariance",
    "PortPermutation",
    "Relation",
    "RelationViolation",
    "Subject",
    "VertexOrderInvariance",
    "VerifyReport",
    "capture",
    "certify",
    "find_counterexample",
    "make_instance",
    "permute_ports",
    "permute_vertices",
    "run_outcome",
    "run_verification",
    "shrink_instance",
    "shuffled_ids",
    "standard_relations",
    "subject_from_algorithm",
    "subject_from_spec",
    "trial_seeds",
    "write_counterexamples",
]

"""The verification sweep: every driver × every relation × N trials.

For each registered driver (see
:func:`repro.algorithms.drivers.driver_registry`) the harness runs:

- a **certificate** cell — each trial's labeling is certified ball by
  ball against the driver's declared LCL and its round count audited
  against the declared complexity bound (:mod:`repro.verify.certify`);
- one cell per **applicable metamorphic relation**
  (:mod:`repro.verify.relations`).

Failures are shrunk (halve-and-retest, :mod:`repro.verify.gen`) before
being reported, so a counterexample names the smallest instance the
harness could reproduce it on.  The whole sweep is a pure function of
``master_seed``; the JSONL counterexample report uses sorted keys and
fixed separators so reruns are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algorithms.drivers import (
    DriverSpec,
    driver_registry,
    validate_registry,
)
from ..faults.runtime import mix64
from .certify import certify
from .gen import GraphFamily, Instance, make_instance, shrink_instance
from .relations import (
    Relation,
    RelationViolation,
    Subject,
    run_outcome,
    standard_relations,
    subject_from_spec,
)

#: Default trial counts per cell.
DEFAULT_TRIALS = 3
QUICK_TRIALS = 1

_STREAM_DRIVER = 0x647276


def _driver_seed(master_seed: int, name: str) -> int:
    return mix64(master_seed, _STREAM_DRIVER, *name.encode("utf-8"))


@dataclass(frozen=True)
class Counterexample:
    """One shrunk failure, JSON-ready."""

    driver: str
    relation: str
    message: str
    instance: Dict[str, Any]
    shrunk_from_n: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "driver": self.driver,
            "relation": self.relation,
            "message": self.message,
            "instance": self.instance,
            "shrunk_from_n": self.shrunk_from_n,
        }


@dataclass
class CellResult:
    """One (driver, relation) cell of the sweep."""

    driver: str
    relation: str
    trials: int = 0
    failures: List[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class VerifyReport:
    """The whole sweep's outcome."""

    master_seed: int
    quick: bool
    cells: List[CellResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def counterexamples(self) -> List[Counterexample]:
        return [c for cell in self.cells for c in cell.failures]

    def summary_lines(self) -> List[str]:
        lines = []
        width = max((len(c.driver) for c in self.cells), default=10)
        rel_width = max(
            (len(c.relation) for c in self.cells), default=10
        )
        for cell in self.cells:
            status = "ok" if cell.ok else f"FAIL x{len(cell.failures)}"
            lines.append(
                f"{cell.driver:<{width}}  {cell.relation:<{rel_width}}"
                f"  trials={cell.trials}  {status}"
            )
        total = len(self.cells)
        bad = sum(1 for c in self.cells if not c.ok)
        lines.append(
            f"{total} cells, {total - bad} ok, {bad} failing, "
            f"{len(self.counterexamples())} counterexamples"
        )
        return lines


def write_counterexamples(
    report: VerifyReport, path: str
) -> int:
    """Write one canonical JSON line per counterexample (the file is
    created even when empty, so CI artifact upload always has a
    target).  Returns the number of lines written."""
    examples = report.counterexamples()
    with open(path, "w", encoding="utf-8") as handle:
        for example in examples:
            handle.write(
                json.dumps(
                    example.to_dict(),
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
    return len(examples)


def find_counterexample(
    subject: Subject,
    relation: Relation,
    family: GraphFamily,
    min_n: int,
    *,
    sizes: Sequence[int],
    seeds: Sequence[int],
    shrink: bool = True,
) -> Optional[Tuple[RelationViolation, int]]:
    """First shrunk relation violation over ``sizes × seeds``, with the
    originally-failing vertex count; ``None`` when every trial holds."""
    for size in sizes:
        for seed in seeds:
            instance = make_instance(family, size, seed)
            violation = relation.check(subject, instance)
            if violation is None:
                continue
            original_n = instance.n
            if shrink:
                shrunk = shrink_instance(
                    instance,
                    lambda inst: relation.check(subject, inst)
                    is not None,
                    family,
                    min_n,
                )
                final = relation.check(subject, shrunk)
                if final is not None:
                    violation = final
            return violation, original_n
    return None


def _certificate_failure(
    spec: DriverSpec, subject: Subject, instance: Instance
) -> Optional[str]:
    """Why ``instance`` fails certification (``None`` when it passes)."""
    outcome = run_outcome(subject, instance)
    if outcome[0] == "error":
        return f"driver raised: {outcome[1]}"
    labeling, rounds = outcome[1]
    graph = instance.graph
    cert = certify(
        spec.problem(graph),
        graph,
        list(labeling),
        driver=spec.name,
        rounds=rounds,
        bound=spec.bound(graph.num_vertices, graph.max_degree),
        bound_label=spec.bound_label,
    )
    if cert.ok:
        return None
    if not cert.valid:
        first = cert.violations[0]
        return (
            f"labeling fails LCL {cert.problem!r} at "
            f"{cert.violation_count} of {cert.checked_balls} balls; "
            f"first: vertex {first.vertex} (ball {first.ball}): "
            f"{first.message}"
        )
    return (
        f"round count {cert.rounds} exceeds declared bound "
        f"{cert.bound:.1f} ({cert.bound_label})"
    )


def _certify_cell(
    spec: DriverSpec,
    subject: Subject,
    sizes: Sequence[int],
    seeds: Sequence[int],
    shrink: bool,
) -> CellResult:
    cell = CellResult(driver=spec.name, relation="certificate")
    for size in sizes:
        for seed in seeds:
            cell.trials += 1
            instance = make_instance(spec.make_graph, size, seed)
            message = _certificate_failure(spec, subject, instance)
            if message is None:
                continue
            original_n = instance.n
            if shrink:
                instance = shrink_instance(
                    instance,
                    lambda inst: _certificate_failure(
                        spec, subject, inst
                    )
                    is not None,
                    spec.make_graph,
                    spec.min_n,
                )
                message = (
                    _certificate_failure(spec, subject, instance)
                    or message
                )
            cell.failures.append(
                Counterexample(
                    driver=spec.name,
                    relation="certificate",
                    message=message,
                    instance=instance.describe(),
                    shrunk_from_n=original_n,
                )
            )
    return cell


def _relation_cell(
    spec: DriverSpec,
    subject: Subject,
    relation: Relation,
    sizes: Sequence[int],
    seeds: Sequence[int],
    shrink: bool,
) -> CellResult:
    cell = CellResult(driver=spec.name, relation=relation.name)
    for size in sizes:
        for seed in seeds:
            cell.trials += 1
            instance = make_instance(spec.make_graph, size, seed)
            violation = relation.check(subject, instance)
            if violation is None:
                continue
            original_n = instance.n
            if shrink:
                shrunk = shrink_instance(
                    instance,
                    lambda inst: relation.check(subject, inst)
                    is not None,
                    spec.make_graph,
                    spec.min_n,
                )
                violation = (
                    relation.check(subject, shrunk) or violation
                )
            cell.failures.append(
                Counterexample(
                    driver=spec.name,
                    relation=relation.name,
                    message=violation.message,
                    instance=violation.instance,
                    shrunk_from_n=original_n,
                )
            )
    return cell


def run_verification(
    *,
    registry: Optional[Dict[str, DriverSpec]] = None,
    relations: Optional[Iterable[Relation]] = None,
    drivers: Optional[Sequence[str]] = None,
    relation_names: Optional[Sequence[str]] = None,
    trials: Optional[int] = None,
    master_seed: int = 0xC0FFEE,
    quick: bool = False,
    shrink: bool = True,
) -> VerifyReport:
    """Run the sweep and return the report (pure in ``master_seed``).

    ``quick`` is the tier-1 profile: one trial per cell at each
    driver's ``quick_n`` only.  ``drivers`` / ``relation_names``
    restrict the sweep; unknown names raise ``KeyError`` so a typo in
    CI fails loudly rather than silently verifying nothing.
    """
    registry = driver_registry() if registry is None else registry
    validate_registry(registry)
    catalogue = (
        standard_relations() if relations is None else list(relations)
    )
    if relation_names is not None:
        by_name = {r.name: r for r in catalogue}
        catalogue = [by_name[name] for name in relation_names]
    if drivers is not None:
        registry = {name: registry[name] for name in drivers}
    per_cell = trials if trials is not None else (
        QUICK_TRIALS if quick else DEFAULT_TRIALS
    )
    report = VerifyReport(master_seed=master_seed, quick=quick)
    for name, spec in registry.items():
        subject = subject_from_spec(spec)
        sizes = (spec.quick_n,) if quick else tuple(spec.sizes)
        seeds = [
            mix64(_driver_seed(master_seed, name), i)
            for i in range(per_cell)
        ]
        report.cells.append(
            _certify_cell(spec, subject, sizes, seeds, shrink)
        )
        for relation in catalogue:
            if not relation.applies_to(subject):
                continue
            report.cells.append(
                _relation_cell(
                    spec, subject, relation, sizes, seeds, shrink
                )
            )
    return report


__all__ = [
    "CellResult",
    "Counterexample",
    "DEFAULT_TRIALS",
    "QUICK_TRIALS",
    "VerifyReport",
    "find_counterexample",
    "run_verification",
    "write_counterexamples",
]

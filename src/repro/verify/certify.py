"""Locality certificates: per-ball LCL checking + round-count audit.

A labeling is a solution iff *every* radius-r ball passes the problem's
verifier — that is the Naor–Stockmeyer definition, and it is exactly
what this module checks: each ball independently, through
:meth:`~repro.lcl.problem.LCLProblem.check_ball`, which masks the
labeling down to ``N^r(v)`` so a checker peeking beyond its declared
radius fails loudly instead of passing as "local".

The result is a :class:`Certificate` with a versioned, deterministic
JSON form (sorted keys, fixed separators, no timestamps — the
:mod:`repro.obs.trace` discipline), naming the violating balls on
failure.  When the producing driver declares a round-complexity bound
(see :class:`~repro.algorithms.drivers.DriverSpec`), the certificate
also audits the observed round count against it, so a complexity
regression — not just a wrong answer — fails verification.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..graphs.graph import Graph
from ..lcl.problem import Labeling, LCLProblem

CERTIFICATE_SCHEMA = "repro.verify.certificate"
CERTIFICATE_VERSION = 1

#: Violations listed per certificate before truncation (the count is
#: always exact; the listing is capped to keep certificates small).
MAX_LISTED_VIOLATIONS = 16


@dataclass(frozen=True)
class BallViolation:
    """One ball that failed its local check."""

    vertex: int
    ball: List[int]
    message: str


@dataclass(frozen=True)
class Certificate:
    """The outcome of certifying one run against one LCL problem."""

    problem: str
    radius: int
    n: int
    m: int
    max_degree: int
    checked_balls: int
    violation_count: int
    violations: List[BallViolation] = field(default_factory=list)
    driver: Optional[str] = None
    rounds: Optional[int] = None
    bound: Optional[float] = None
    bound_label: Optional[str] = None
    rounds_within_bound: Optional[bool] = None

    @property
    def valid(self) -> bool:
        """Whether every ball passed."""
        return self.violation_count == 0

    @property
    def ok(self) -> bool:
        """Valid labeling *and* (when audited) rounds within bound."""
        return self.valid and self.rounds_within_bound is not False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CERTIFICATE_SCHEMA,
            "version": CERTIFICATE_VERSION,
            "problem": self.problem,
            "radius": self.radius,
            "driver": self.driver,
            "n": self.n,
            "m": self.m,
            "max_degree": self.max_degree,
            "checked_balls": self.checked_balls,
            "valid": self.valid,
            "violation_count": self.violation_count,
            "violations": [
                {
                    "vertex": v.vertex,
                    "ball": list(v.ball),
                    "message": v.message,
                }
                for v in self.violations
            ],
            "rounds": self.rounds,
            "bound": self.bound,
            "bound_label": self.bound_label,
            "rounds_within_bound": self.rounds_within_bound,
            "ok": self.ok,
        }

    def to_json(self) -> str:
        """Canonical serialization: byte-identical across repeats."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )


def certify(
    problem: LCLProblem,
    graph: Graph,
    labeling: Labeling,
    *,
    inputs: Optional[Dict[str, Any]] = None,
    driver: Optional[str] = None,
    rounds: Optional[int] = None,
    bound: Optional[float] = None,
    bound_label: Optional[str] = None,
    max_listed: int = MAX_LISTED_VIOLATIONS,
) -> Certificate:
    """Check every radius-r ball independently and audit the rounds.

    Unlike :meth:`LCLProblem.violations` (a convenience that hands the
    checker the whole labeling), this is the distributed verifier run
    literally: each ball is checked in isolation against a masked
    labeling, so the certificate doubles as an audit that the *checker
    itself* is r-local.
    """
    violations: List[BallViolation] = []
    count = 0
    for v in graph.vertices():
        message = problem.check_ball(graph, v, labeling, inputs)
        if message is not None:
            count += 1
            if len(violations) < max_listed:
                violations.append(
                    BallViolation(
                        vertex=v,
                        ball=problem.ball(graph, v),
                        message=message,
                    )
                )
    audited: Optional[bool] = None
    if rounds is not None and bound is not None:
        audited = rounds <= bound
    return Certificate(
        problem=problem.name,
        radius=problem.radius,
        n=graph.num_vertices,
        m=graph.num_edges,
        max_degree=graph.max_degree,
        checked_balls=graph.num_vertices,
        violation_count=count,
        violations=violations,
        driver=driver,
        rounds=rounds,
        bound=bound,
        bound_label=bound_label,
        rounds_within_bound=audited,
    )


__all__ = [
    "BallViolation",
    "CERTIFICATE_SCHEMA",
    "CERTIFICATE_VERSION",
    "Certificate",
    "MAX_LISTED_VIOLATIONS",
    "certify",
]

"""Seeded instance generation and shrinking for the verification suite.

Everything here is a pure function of a 64-bit seed: the graph drawn
from a driver's instance family, the ID assignment, and the per-run
seed all come from independent splitmix64 streams (:func:`mix64` from
:mod:`repro.faults.runtime` — the same order-independent hash the fault
adversary uses), so a counterexample is reproduced from its
``(seed, n)`` pair alone and never depends on generator call order.

Shrinking is halve-and-retest on the vertex count: given a failing
instance, repeatedly rebuild the instance at ``n // 2`` (then ``n - 1``
when halving overshoots) *from the same seed* and keep the smaller
instance whenever the failure predicate still holds.  Instance families
may round ``n`` up to their structural constraints (parity, complete
trees), so progress is measured on the *realized* vertex count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, List, Tuple

from ..faults.runtime import mix64
from ..graphs.graph import Graph

#: Independent derivation streams (never reuse a constant across
#: purposes — a graph coin flip must not correlate with an ID swap).
_STREAM_GRAPH = 0x67656E
_STREAM_IDS = 0x696473
_STREAM_RUN = 0x72756E
_STREAM_TRIAL = 0x7472_69616C

#: A graph family: seeded builder taking a *requested* size (the family
#: may round up to its structural minimum / parity).
GraphFamily = Callable[[int, random.Random], Graph]


def derive_rng(seed: int, *parts: int) -> random.Random:
    """A :class:`random.Random` keyed by ``(seed, *parts)``."""
    return random.Random(mix64(seed, *parts))


def trial_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` independent trial seeds derived from ``master_seed``."""
    return [mix64(master_seed, _STREAM_TRIAL, i) for i in range(count)]


def shuffled_ids(n: int, seed: int, *parts: int) -> List[int]:
    """A seeded permutation of ``0 .. n-1`` used as an ID assignment.

    Dense permutations (rather than sparse random IDs) keep every
    driver's internally derived ID-space assumptions valid while still
    exercising arbitrary ID placement.
    """
    ids = list(range(n))
    derive_rng(seed, _STREAM_IDS, *parts).shuffle(ids)
    return ids


@dataclass(frozen=True)
class Instance:
    """One reproducible test instance.

    ``graph``/``ids``/``run_seed`` are all derived from ``seed`` and the
    requested size; ``n`` records the *realized* vertex count (families
    may round the request up).
    """

    seed: int
    requested_n: int
    graph: Graph
    ids: Tuple[int, ...]
    run_seed: int

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    def describe(self) -> dict:
        """JSON-safe reproduction coordinates."""
        return {
            "seed": self.seed,
            "requested_n": self.requested_n,
            "n": self.n,
            "m": self.graph.num_edges,
            "max_degree": self.graph.max_degree,
            "run_seed": self.run_seed,
        }


def make_instance(
    family: GraphFamily, requested_n: int, seed: int
) -> Instance:
    """Build the instance determined by ``(family, requested_n, seed)``."""
    graph = family(requested_n, derive_rng(seed, _STREAM_GRAPH, requested_n))
    return Instance(
        seed=seed,
        requested_n=requested_n,
        graph=graph,
        ids=tuple(shuffled_ids(graph.num_vertices, seed, requested_n)),
        run_seed=mix64(seed, _STREAM_RUN, requested_n),
    )


def reshuffled(instance: Instance, salt: int) -> Instance:
    """The same instance under an independently shuffled ID assignment
    (the lever of the ID-relabeling relation)."""
    fresh = shuffled_ids(
        instance.n, instance.seed, instance.requested_n, salt
    )
    return replace(instance, ids=tuple(fresh))


def shrink_instance(
    instance: Instance,
    still_fails: Callable[[Instance], bool],
    family: GraphFamily,
    min_n: int,
    max_steps: int = 64,
) -> Instance:
    """Minimize a failing instance by halve-and-retest on vertices.

    ``still_fails`` must be the exact failure predicate that flagged
    ``instance`` (it is re-run on every candidate, so a flaky predicate
    would shrink to noise — all predicates in this package are seeded
    and deterministic).  Returns the smallest failing instance found;
    at worst the input itself.
    """
    current = instance
    for _ in range(max_steps):
        n = current.requested_n
        candidates = []
        half = max(min_n, n // 2)
        if half < n:
            candidates.append(half)
        if n - 1 >= min_n and n - 1 != half:
            candidates.append(n - 1)
        for candidate_n in candidates:
            candidate = make_instance(family, candidate_n, instance.seed)
            if candidate.n >= current.n:
                # The family rounded back up; no real progress.
                continue
            if still_fails(candidate):
                break
        else:
            return current
        current = candidate
    return current


# ----------------------------------------------------------------------
# Structure-preserving graph transforms (the metamorphic levers)
# ----------------------------------------------------------------------
def permute_ports(graph: Graph, seed: int) -> Graph:
    """The same abstract graph under a fresh port numbering.

    Per-vertex port order is exactly edge-insertion order, so shuffling
    the edge list realizes a (correlated-at-random) port renumbering at
    every vertex without touching the underlying adjacency.
    """
    rng = derive_rng(seed, 0x706F7274)
    edges = list(graph.edges())
    rng.shuffle(edges)
    return Graph(graph.num_vertices, edges)


def permute_vertices(
    graph: Graph, perm: List[int]
) -> Graph:
    """The image of ``graph`` under the vertex permutation ``perm``
    (vertex ``v`` becomes ``perm[v]``), with port structure preserved.

    Edge-insertion order is kept, so port ``p`` of ``perm[v]`` in the
    image leads to ``perm[graph.endpoint(v, p)]`` — each vertex's local
    view is bitwise identical, only the simulation handles move.
    """
    edges = [(perm[u], perm[v]) for (u, v) in graph.edges()]
    return Graph(graph.num_vertices, edges)


def random_permutation(n: int, seed: int, *parts: int) -> List[int]:
    """A seeded permutation of ``0 .. n-1`` (as a mapping list)."""
    perm = list(range(n))
    derive_rng(seed, 0x7065726D, *parts).shuffle(perm)
    return perm


def apply_inverse(perm: List[int]) -> List[int]:
    """The inverse mapping of ``perm``."""
    inverse = [0] * len(perm)
    for v, image in enumerate(perm):
        inverse[image] = v
    return inverse


__all__ = [
    "GraphFamily",
    "Instance",
    "apply_inverse",
    "derive_rng",
    "make_instance",
    "permute_ports",
    "permute_vertices",
    "random_permutation",
    "reshuffled",
    "shrink_instance",
    "shuffled_ids",
    "trial_seeds",
]
